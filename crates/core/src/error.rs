//! The agent's unified error surface.
//!
//! Every fallible operation in this crate returns [`EcaError`], one enum
//! covering the gateway, the ECA parser, the Snoop compiler, the LED and
//! the action handler. Each variant maps to a stable [`EcaErrorKind`]
//! whose [`EcaErrorKind::code`] is the machine-readable error code carried
//! by wire-protocol responses (`eca-serve` frames), so remote clients can
//! branch on failures without parsing display strings.

use std::fmt;

/// Errors surfaced by the ECA Agent to its clients.
///
/// `AgentError` remains as a deprecated alias for one release.
#[derive(Debug)]
pub enum EcaError {
    /// Syntax error in an ECA command (extended trigger syntax).
    EcaSyntax(String),
    /// Error from the Snoop parser for a composite event expression.
    Snoop(snoop::Error),
    /// Error from the Local Event Detector.
    Led(led::LedError),
    /// Error from the underlying SQL server.
    Sql(relsql::Error),
    /// Name-level problem: duplicates, unknown objects, slot conflicts.
    Naming(String),
    /// Recovery failed (corrupt or cyclic persisted state).
    Recovery(String),
    /// A saga step or compensation failed (declaration, journal, or
    /// recovery-time resumption problems). Distinct from plain `Sql` so
    /// wire clients can tell "saga compensated/parked" from "action
    /// dead-lettered".
    Saga(String),
    /// The service is draining or shut down and rejects new work.
    Unavailable(String),
}

/// Former name of [`EcaError`]; kept for one release.
pub type AgentError = EcaError;

/// Stable classification of an [`EcaError`], decoupled from the variant
/// payloads. The `code()` strings are part of the wire protocol and must
/// never change meaning once released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EcaErrorKind {
    /// ECA command syntax.
    Syntax,
    /// Snoop event-expression compilation.
    EventExpr,
    /// Local Event Detector state machine.
    Detector,
    /// Underlying SQL server.
    Sql,
    /// Naming: duplicates, unknown objects, slot conflicts.
    Naming,
    /// Persisted-state recovery.
    Recovery,
    /// Saga step/compensation execution.
    Saga,
    /// Service draining / shut down.
    Unavailable,
    /// Storage-layer failure (WAL append/fsync, snapshot I/O). The server
    /// degrades to read-only; clients can retry reads but not writes.
    Io,
}

impl EcaErrorKind {
    /// The stable wire-protocol error code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            EcaErrorKind::Syntax => "SYNTAX",
            EcaErrorKind::EventExpr => "EVENT_EXPR",
            EcaErrorKind::Detector => "DETECTOR",
            EcaErrorKind::Sql => "SQL",
            EcaErrorKind::Naming => "NAMING",
            EcaErrorKind::Recovery => "RECOVERY",
            EcaErrorKind::Saga => "SAGA",
            EcaErrorKind::Unavailable => "UNAVAILABLE",
            EcaErrorKind::Io => "IO",
        }
    }

    /// Inverse of [`EcaErrorKind::code`], for wire-protocol clients.
    pub fn from_code(code: &str) -> Option<Self> {
        Some(match code {
            "SYNTAX" => EcaErrorKind::Syntax,
            "EVENT_EXPR" => EcaErrorKind::EventExpr,
            "DETECTOR" => EcaErrorKind::Detector,
            "SQL" => EcaErrorKind::Sql,
            "NAMING" => EcaErrorKind::Naming,
            "RECOVERY" => EcaErrorKind::Recovery,
            "SAGA" => EcaErrorKind::Saga,
            "UNAVAILABLE" => EcaErrorKind::Unavailable,
            "IO" => EcaErrorKind::Io,
            _ => return None,
        })
    }
}

impl fmt::Display for EcaErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl EcaError {
    /// Stable classification of this error.
    pub fn kind(&self) -> EcaErrorKind {
        match self {
            EcaError::EcaSyntax(_) => EcaErrorKind::Syntax,
            EcaError::Snoop(_) => EcaErrorKind::EventExpr,
            EcaError::Led(_) => EcaErrorKind::Detector,
            // Storage failures get their own wire code so clients can tell
            // "the server went read-only" apart from a bad query.
            EcaError::Sql(relsql::Error::Io { .. }) => EcaErrorKind::Io,
            EcaError::Sql(_) => EcaErrorKind::Sql,
            EcaError::Naming(_) => EcaErrorKind::Naming,
            EcaError::Recovery(_) => EcaErrorKind::Recovery,
            EcaError::Saga(_) => EcaErrorKind::Saga,
            EcaError::Unavailable(_) => EcaErrorKind::Unavailable,
        }
    }

    /// The wire-protocol error code (shorthand for `kind().code()`).
    pub fn code(&self) -> &'static str {
        self.kind().code()
    }
}

impl fmt::Display for EcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcaError::EcaSyntax(m) => write!(f, "ECA syntax error: {m}"),
            EcaError::Snoop(e) => write!(f, "event expression error: {e}"),
            EcaError::Led(e) => write!(f, "event detector error: {e}"),
            EcaError::Sql(e) => write!(f, "SQL error: {e}"),
            EcaError::Naming(m) => write!(f, "naming error: {m}"),
            EcaError::Recovery(m) => write!(f, "recovery error: {m}"),
            EcaError::Saga(m) => write!(f, "saga error: {m}"),
            EcaError::Unavailable(m) => write!(f, "service unavailable: {m}"),
        }
    }
}

impl std::error::Error for EcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcaError::Snoop(e) => Some(e),
            EcaError::Led(e) => Some(e),
            EcaError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snoop::Error> for EcaError {
    fn from(e: snoop::Error) -> Self {
        EcaError::Snoop(e)
    }
}

impl From<led::LedError> for EcaError {
    fn from(e: led::LedError) -> Self {
        EcaError::Led(e)
    }
}

impl From<relsql::Error> for EcaError {
    fn from(e: relsql::Error) -> Self {
        EcaError::Sql(e)
    }
}

pub type Result<T> = std::result::Result<T, EcaError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_variants() {
        assert!(EcaError::EcaSyntax("x".into()).to_string().contains("ECA"));
        assert!(EcaError::Naming("dup".into()).to_string().contains("dup"));
        let e: EcaError = led::LedError::UnknownEvent("e".into()).into();
        assert!(e.to_string().contains("unknown event"));
        let e: EcaError = relsql::Error::exec("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: EcaError = snoop::Error {
            pos: 0,
            msg: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("bad"));
        assert!(EcaError::Recovery("r".into())
            .to_string()
            .contains("recovery"));
        assert!(EcaError::Saga("rolled back".into())
            .to_string()
            .contains("saga"));
        assert!(EcaError::Unavailable("drained".into())
            .to_string()
            .contains("unavailable"));
    }

    #[test]
    fn kinds_and_codes_are_stable() {
        let cases: Vec<(EcaError, EcaErrorKind, &str)> = vec![
            (
                EcaError::EcaSyntax("x".into()),
                EcaErrorKind::Syntax,
                "SYNTAX",
            ),
            (
                EcaError::Snoop(snoop::Error {
                    pos: 0,
                    msg: "bad".into(),
                }),
                EcaErrorKind::EventExpr,
                "EVENT_EXPR",
            ),
            (
                EcaError::Led(led::LedError::UnknownEvent("e".into())),
                EcaErrorKind::Detector,
                "DETECTOR",
            ),
            (
                EcaError::Sql(relsql::Error::exec("boom")),
                EcaErrorKind::Sql,
                "SQL",
            ),
            (
                EcaError::Naming("dup".into()),
                EcaErrorKind::Naming,
                "NAMING",
            ),
            (
                EcaError::Recovery("r".into()),
                EcaErrorKind::Recovery,
                "RECOVERY",
            ),
            (
                EcaError::Saga("comp failed".into()),
                EcaErrorKind::Saga,
                "SAGA",
            ),
            (
                EcaError::Unavailable("d".into()),
                EcaErrorKind::Unavailable,
                "UNAVAILABLE",
            ),
            (
                EcaError::Sql(relsql::Error::io("disk gone")),
                EcaErrorKind::Io,
                "IO",
            ),
        ];
        for (err, kind, code) in cases {
            assert_eq!(err.kind(), kind);
            assert_eq!(err.code(), code);
            assert_eq!(EcaErrorKind::from_code(code), Some(kind));
        }
        assert_eq!(EcaErrorKind::from_code("NOPE"), None);
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        let e: EcaError = relsql::Error::exec("boom").into();
        assert!(e.source().is_some());
        assert!(EcaError::Naming("x".into()).source().is_none());
        // The legacy alias still names the same type.
        let _aliased: AgentError = EcaError::Naming("y".into());
    }
}
