//! Agent-level errors.

use std::fmt;

/// Errors surfaced by the ECA Agent to its clients.
#[derive(Debug)]
pub enum AgentError {
    /// Syntax error in an ECA command (extended trigger syntax).
    EcaSyntax(String),
    /// Error from the Snoop parser for a composite event expression.
    Snoop(snoop::Error),
    /// Error from the Local Event Detector.
    Led(led::LedError),
    /// Error from the underlying SQL server.
    Sql(relsql::Error),
    /// Name-level problem: duplicates, unknown objects, slot conflicts.
    Naming(String),
    /// Recovery failed (corrupt or cyclic persisted state).
    Recovery(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::EcaSyntax(m) => write!(f, "ECA syntax error: {m}"),
            AgentError::Snoop(e) => write!(f, "event expression error: {e}"),
            AgentError::Led(e) => write!(f, "event detector error: {e}"),
            AgentError::Sql(e) => write!(f, "SQL error: {e}"),
            AgentError::Naming(m) => write!(f, "naming error: {m}"),
            AgentError::Recovery(m) => write!(f, "recovery error: {m}"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<snoop::Error> for AgentError {
    fn from(e: snoop::Error) -> Self {
        AgentError::Snoop(e)
    }
}

impl From<led::LedError> for AgentError {
    fn from(e: led::LedError) -> Self {
        AgentError::Led(e)
    }
}

impl From<relsql::Error> for AgentError {
    fn from(e: relsql::Error) -> Self {
        AgentError::Sql(e)
    }
}

pub type Result<T> = std::result::Result<T, AgentError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(AgentError::EcaSyntax("x".into()).to_string().contains("ECA"));
        assert!(AgentError::Naming("dup".into()).to_string().contains("dup"));
        let e: AgentError = led::LedError::UnknownEvent("e".into()).into();
        assert!(e.to_string().contains("unknown event"));
        let e: AgentError = relsql::Error::exec("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: AgentError = snoop::Error {
            pos: 0,
            msg: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("bad"));
        assert!(AgentError::Recovery("r".into()).to_string().contains("recovery"));
    }
}
