//! The ECA Parser: the extended trigger syntax of Figures 9, 10 and 12.
//!
//! ```text
//! -- Figure 9: primitive event + trigger in one command
//! create trigger [owner.]tname on [owner.]table for {insert|update|delete}
//!   event ename [coupling] [context] [priority]
//!   as SQL...
//!
//! -- Figure 10: trigger on a previously defined event
//! create trigger [owner.]tname
//!   event ename [coupling] [context] [priority]
//!   as SQL...
//!
//! -- Figure 12: composite event + trigger
//! create trigger [owner.]tname
//!   event ename = <Snoop expression> [coupling] [context] [priority]
//!   as SQL...
//! ```
//!
//! Note: Figure 9's caption says "the default coupling mode is RECENT, and
//! the default parameter context is IMMEDIATE" — the two words are clearly
//! swapped in the paper. We implement the intended defaults: coupling
//! IMMEDIATE, context RECENT. The modifier keywords are accepted in any
//! order.

use led::{CouplingMode, ParameterContext};
use relsql::ast::TriggerOp;
use relsql::lexer::{tokenize, Token, TokenKind};

use crate::error::{AgentError, Result};

/// Coupling / context / priority modifiers shared by all three forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerClauses {
    pub coupling: CouplingMode,
    pub context: ParameterContext,
    pub priority: i32,
}

impl Default for TriggerClauses {
    fn default() -> Self {
        TriggerClauses {
            coupling: CouplingMode::Immediate,
            context: ParameterContext::Recent,
            priority: 0,
        }
    }
}

/// A parsed ECA command. Names are as written by the user — expansion to
/// internal names happens in the agent.
#[derive(Debug, Clone, PartialEq)]
pub enum EcaCommand {
    /// Figure 9: defines a primitive event and its first trigger.
    CreatePrimitive {
        trigger: String,
        table: String,
        operation: TriggerOp,
        event: String,
        clauses: TriggerClauses,
        action: String,
    },
    /// Figure 10: a new trigger on an existing (primitive or composite)
    /// event.
    CreateOnExisting {
        trigger: String,
        event: String,
        clauses: TriggerClauses,
        action: String,
    },
    /// Figure 12: defines a composite event and a trigger on it.
    CreateComposite {
        trigger: String,
        event: String,
        /// Snoop expression source (user-level names, unexpanded).
        expr_src: String,
        clauses: TriggerClauses,
        action: String,
    },
    DropTrigger {
        trigger: String,
    },
    DropEvent {
        event: String,
    },
}

/// Parse an ECA command that the Language Filter already classified.
pub fn parse_eca(sql: &str) -> Result<EcaCommand> {
    let tokens = tokenize(sql).map_err(|e| AgentError::EcaSyntax(e.to_string()))?;
    let mut p = P {
        src: sql,
        toks: tokens,
        i: 0,
    };
    if p.eat_kw("drop") {
        if p.eat_kw("trigger") {
            let trigger = p.object_name()?;
            p.expect_eof()?;
            return Ok(EcaCommand::DropTrigger { trigger });
        }
        if p.eat_kw("event") {
            let event = p.object_name()?;
            p.expect_eof()?;
            return Ok(EcaCommand::DropEvent { event });
        }
        return Err(AgentError::EcaSyntax(
            "expected TRIGGER or EVENT after DROP".into(),
        ));
    }
    p.expect_kw("create")?;
    p.expect_kw("trigger")?;
    let trigger = p.object_name()?;

    if p.eat_kw("on") {
        // Figure 9 form.
        let table = p.object_name()?;
        p.expect_kw("for")?;
        let op_word = p.ident()?;
        let operation = TriggerOp::parse(&op_word)
            .ok_or_else(|| AgentError::EcaSyntax(format!("bad trigger operation '{op_word}'")))?;
        p.expect_kw("event")?;
        let event = p.object_name()?;
        let clauses = p.clauses()?;
        let action = p.action_body()?;
        return Ok(EcaCommand::CreatePrimitive {
            trigger,
            table,
            operation,
            event,
            clauses,
            action,
        });
    }

    p.expect_kw("event")?;
    let event = p.object_name()?;
    if p.eat(&TokenKind::Eq) {
        // Figure 12 form: capture the Snoop expression verbatim up to the
        // first clause keyword / priority / AS.
        let start = p.pos_here();
        let end = p.scan_expr_end()?;
        let expr_src = p.src[start..end].trim().to_string();
        if expr_src.is_empty() {
            return Err(AgentError::EcaSyntax(
                "empty event expression after '='".into(),
            ));
        }
        let clauses = p.clauses()?;
        let action = p.action_body()?;
        return Ok(EcaCommand::CreateComposite {
            trigger,
            event,
            expr_src,
            clauses,
            action,
        });
    }
    let clauses = p.clauses()?;
    let action = p.action_body()?;
    Ok(EcaCommand::CreateOnExisting {
        trigger,
        event,
        clauses,
        action,
    })
}

struct P<'a> {
    src: &'a str,
    toks: Vec<Token>,
    i: usize,
}

const COUPLINGS: &[&str] = &["immediate", "deferred", "defered", "detached"];
const CONTEXTS: &[&str] = &["recent", "chronicle", "continuous", "cumulative"];

impl<'a> P<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    fn pos_here(&self) -> usize {
        self.toks[self.i].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.toks[self.i].kind.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(AgentError::EcaSyntax(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(AgentError::EcaSyntax(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(AgentError::EcaSyntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn object_name(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        while matches!(self.peek(), TokenKind::Dot) {
            self.advance();
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    /// Coupling / context / priority, in any order, each at most once.
    fn clauses(&mut self) -> Result<TriggerClauses> {
        let mut c = TriggerClauses::default();
        let (mut saw_coupling, mut saw_context, mut saw_priority) = (false, false, false);
        loop {
            match self.peek().clone() {
                TokenKind::Ident(w) if COUPLINGS.iter().any(|k| w.eq_ignore_ascii_case(k)) => {
                    if saw_coupling {
                        return Err(AgentError::EcaSyntax("duplicate coupling mode".into()));
                    }
                    saw_coupling = true;
                    c.coupling = w.parse().map_err(AgentError::EcaSyntax)?;
                    self.advance();
                }
                TokenKind::Ident(w) if CONTEXTS.iter().any(|k| w.eq_ignore_ascii_case(k)) => {
                    if saw_context {
                        return Err(AgentError::EcaSyntax("duplicate parameter context".into()));
                    }
                    saw_context = true;
                    c.context = w.parse().map_err(AgentError::EcaSyntax)?;
                    self.advance();
                }
                TokenKind::Int(n) => {
                    if saw_priority {
                        return Err(AgentError::EcaSyntax("duplicate priority".into()));
                    }
                    if n < 0 {
                        return Err(AgentError::EcaSyntax(
                            "priority must be a positive integer".into(),
                        ));
                    }
                    saw_priority = true;
                    c.priority = n as i32;
                    self.advance();
                }
                _ => return Ok(c),
            }
        }
    }

    /// Everything after the `as` keyword, verbatim.
    fn action_body(&mut self) -> Result<String> {
        self.expect_kw("as")?;
        let start = self.pos_here();
        let body = self.src[start..].trim();
        if body.is_empty() {
            return Err(AgentError::EcaSyntax("empty action body".into()));
        }
        Ok(body.to_string())
    }

    /// Find the byte offset where a Snoop expression ends: the first
    /// top-level clause keyword, bare integer priority, or `as`.
    fn scan_expr_end(&mut self) -> Result<usize> {
        let mut depth = 0i32;
        loop {
            let tok = &self.toks[self.i];
            match &tok.kind {
                TokenKind::LParen | TokenKind::LBracket => depth += 1,
                TokenKind::RParen | TokenKind::RBracket => depth -= 1,
                TokenKind::Ident(w)
                    if depth == 0
                        && (w.eq_ignore_ascii_case("as")
                            || COUPLINGS.iter().any(|k| w.eq_ignore_ascii_case(k))
                            || CONTEXTS.iter().any(|k| w.eq_ignore_ascii_case(k))) =>
                {
                    return Ok(tok.pos);
                }
                TokenKind::Int(_) if depth == 0 => {
                    // A bare integer at top level is the priority clause —
                    // unless it is inside brackets (time strings handled by
                    // the depth counter above).
                    return Ok(tok.pos);
                }
                TokenKind::Eof => {
                    return Err(AgentError::EcaSyntax(
                        "missing AS clause after event expression".into(),
                    ))
                }
                _ => {}
            }
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_primitive() {
        // Verbatim from §5.2.
        let cmd = parse_eca(
            "create trigger t_addStk on stock for insert\n\
             event addStk\n\
             as print \" trigger t_addStk on primitive event addStk occurs\"\n\
             select * from stock",
        )
        .unwrap();
        match cmd {
            EcaCommand::CreatePrimitive {
                trigger,
                table,
                operation,
                event,
                clauses,
                action,
            } => {
                assert_eq!(trigger, "t_addStk");
                assert_eq!(table, "stock");
                assert_eq!(operation, TriggerOp::Insert);
                assert_eq!(event, "addStk");
                assert_eq!(clauses, TriggerClauses::default());
                assert!(action.starts_with("print"));
                assert!(action.contains("select * from stock"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn example_2_composite() {
        // Verbatim from §5.3.
        let cmd = parse_eca(
            "create trigger t_and\n\
             event addDel = delStk ^ addStk\n\
             RECENT\n\
             as\n\
             print \"trigger t_and on composite event addDel = delStk ^ addStk\"\n\
             select symbol, price from stock.inserted",
        )
        .unwrap();
        match cmd {
            EcaCommand::CreateComposite {
                trigger,
                event,
                expr_src,
                clauses,
                action,
            } => {
                assert_eq!(trigger, "t_and");
                assert_eq!(event, "addDel");
                assert_eq!(expr_src, "delStk ^ addStk");
                assert_eq!(clauses.context, ParameterContext::Recent);
                assert_eq!(clauses.coupling, CouplingMode::Immediate);
                assert!(action.contains("stock.inserted"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn figure_10_trigger_on_existing_event() {
        let cmd =
            parse_eca("create trigger t2 event addStk DETACHED CHRONICLE 5 as select * from stock")
                .unwrap();
        match cmd {
            EcaCommand::CreateOnExisting {
                trigger,
                event,
                clauses,
                ..
            } => {
                assert_eq!(trigger, "t2");
                assert_eq!(event, "addStk");
                assert_eq!(clauses.coupling, CouplingMode::Detached);
                assert_eq!(clauses.context, ParameterContext::Chronicle);
                assert_eq!(clauses.priority, 5);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn clauses_any_order_and_paper_spelling() {
        let cmd = parse_eca("create trigger t event e 3 CUMULATIVE DEFERED as print 'x'").unwrap();
        match cmd {
            EcaCommand::CreateOnExisting { clauses, .. } => {
                assert_eq!(clauses.coupling, CouplingMode::Deferred);
                assert_eq!(clauses.context, ParameterContext::Cumulative);
                assert_eq!(clauses.priority, 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn composite_with_temporal_expression() {
        // Time-string brackets must not terminate the expression scan.
        let cmd =
            parse_eca("create trigger t event e = P(open, [5 sec], close) CONTINUOUS as print 'x'")
                .unwrap();
        match cmd {
            EcaCommand::CreateComposite {
                expr_src, clauses, ..
            } => {
                assert_eq!(expr_src, "P(open, [5 sec], close)");
                assert_eq!(clauses.context, ParameterContext::Continuous);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn composite_with_priority_after_expr() {
        let cmd = parse_eca("create trigger t event e = a ; b 7 as print 'x'").unwrap();
        match cmd {
            EcaCommand::CreateComposite {
                expr_src, clauses, ..
            } => {
                assert_eq!(expr_src, "a ; b");
                assert_eq!(clauses.priority, 7);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn owner_qualified_names() {
        let cmd = parse_eca(
            "create trigger bob.t on alice.stock for delete event bob.delStk as print 'x'",
        )
        .unwrap();
        match cmd {
            EcaCommand::CreatePrimitive {
                trigger,
                table,
                event,
                ..
            } => {
                assert_eq!(trigger, "bob.t");
                assert_eq!(table, "alice.stock");
                assert_eq!(event, "bob.delStk");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn drop_commands() {
        assert_eq!(
            parse_eca("drop trigger t_and").unwrap(),
            EcaCommand::DropTrigger {
                trigger: "t_and".into()
            }
        );
        assert_eq!(
            parse_eca("drop event addDel").unwrap(),
            EcaCommand::DropEvent {
                event: "addDel".into()
            }
        );
    }

    #[test]
    fn error_cases() {
        // Missing AS.
        assert!(parse_eca("create trigger t event e = a ^ b").is_err());
        // Empty expression.
        assert!(parse_eca("create trigger t event e = as print 'x'").is_err());
        // Empty action.
        assert!(parse_eca("create trigger t event e as   ").is_err());
        // Bad operation.
        assert!(parse_eca("create trigger t on x for upsert event e as print 'x'").is_err());
        // Duplicate clauses.
        assert!(parse_eca("create trigger t event e RECENT CHRONICLE as print 'x'").is_err());
        assert!(parse_eca("create trigger t event e IMMEDIATE DETACHED as print 'x'").is_err());
        assert!(parse_eca("create trigger t event e 1 2 as print 'x'").is_err());
        // Drop nonsense.
        assert!(parse_eca("drop procedure p").is_err());
    }

    #[test]
    fn action_preserved_verbatim() {
        let cmd =
            parse_eca("create trigger t event e as update t set a = a + 1 where b = 'as' select 1")
                .unwrap();
        match cmd {
            EcaCommand::CreateOnExisting { action, .. } => {
                assert_eq!(action, "update t set a = a + 1 where b = 'as' select 1");
            }
            _ => panic!(),
        }
    }
}
