//! The agent's public service surface.
//!
//! Historically the TCP server, the interactive `eca_shell` and the test
//! suite each drove the agent through a different ad-hoc path (raw
//! [`EcaAgent`] methods, per-call [`crate::agent::EcaClient`]s, direct
//! gateway pokes). [`ActiveService`] is the one API all of them now share:
//! execute a batch, define or drop a trigger, read the counters, drain.
//! Anything implementing it can sit behind the `eca-serve` wire protocol
//! unchanged — including test doubles.

use std::time::Duration;

use relsql::SessionCtx;

use crate::agent::{AgentResponse, AgentStats, EcaAgent, ExecOutcome};
use crate::error::{EcaError, Result};
use crate::filter::{classify, Classification, EcaKind};

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DrainReport {
    /// The notification channel went (and stayed) empty within the
    /// timeout.
    pub quiescent: bool,
    /// Outstanding DETACHED actions joined.
    pub detached_joined: usize,
    /// Action outcomes collected from the async notifier mailbox.
    pub async_outcomes: usize,
}

/// The redesigned public surface of the active capability: everything a
/// serving layer needs, nothing tied to the agent's internals.
///
/// Semantics:
/// - [`execute`](ActiveService::execute) runs one batch with IMMEDIATE
///   coupling semantics: rule actions triggered by the batch complete
///   before it returns.
/// - [`define_trigger`](ActiveService::define_trigger) /
///   [`drop_trigger`](ActiveService::drop_trigger) are the rule-management
///   subset — `define_trigger` rejects batches that are not ECA
///   definitions instead of silently passing them through.
/// - [`drain`](ActiveService::drain) quiesces the notifier pump and
///   in-flight actions; afterwards `execute` fails with
///   [`EcaError::Unavailable`] until [`resume`](ActiveService::resume).
pub trait ActiveService: Send + Sync {
    /// Execute one batch (SQL or ECA command) on behalf of `ctx`.
    fn execute(&self, sql: &str, ctx: &SessionCtx) -> Result<AgentResponse>;

    /// Install an ECA trigger definition. Fails with
    /// [`EcaError::EcaSyntax`] if `ddl` is not an ECA definition batch.
    fn define_trigger(&self, ddl: &str, ctx: &SessionCtx) -> Result<AgentResponse>;

    /// Drop a previously defined trigger by name.
    fn drop_trigger(&self, trigger: &str, ctx: &SessionCtx) -> Result<AgentResponse>;

    /// Aggregate counters for the agent's moving parts.
    fn stats(&self) -> AgentStats;

    /// Quiesce: flush held datagrams, process pending notifications, join
    /// DETACHED actions, persist watermarks. New statements are rejected
    /// until [`resume`](ActiveService::resume).
    fn drain(&self, timeout: Duration) -> DrainReport;

    /// Lift the drain latch and accept statements again.
    fn resume(&self);

    /// Whether the service is currently draining/drained.
    fn is_draining(&self) -> bool;

    /// Execute a batch exactly once under the idempotency key
    /// `token#seq` (resilient wire sessions, DESIGN.md §16). The default
    /// has no journal: it simply executes, which keeps non-durable test
    /// doubles compiling — dedup across resubmission then rests solely on
    /// the caller's in-memory replay window.
    fn execute_once(
        &self,
        sql: &str,
        ctx: &SessionCtx,
        _token: &str,
        _seq: u64,
    ) -> Result<ExecOutcome> {
        self.execute(sql, ctx).map(ExecOutcome::Fresh)
    }

    /// Backfill the rendered response line for a journaled request so
    /// post-restart replays answer verbatim. Default: no journal, no-op.
    fn record_response(&self, _token: &str, _seq: u64, _line: &str) -> Result<()> {
        Ok(())
    }

    /// Drop journal state for `token` below `below_seq` (`u64::MAX` on
    /// session end). Default: no journal, no-op.
    fn forget_session(&self, _token: &str, _below_seq: u64) -> Result<()> {
        Ok(())
    }
}

impl ActiveService for EcaAgent {
    fn execute(&self, sql: &str, ctx: &SessionCtx) -> Result<AgentResponse> {
        EcaAgent::execute(self, sql, ctx)
    }

    fn define_trigger(&self, ddl: &str, ctx: &SessionCtx) -> Result<AgentResponse> {
        match classify(ddl) {
            Classification::Eca(EcaKind::CreateTrigger) => EcaAgent::execute(self, ddl, ctx),
            Classification::Eca(_) => Err(EcaError::EcaSyntax(
                "define_trigger expects a CREATE TRIGGER batch".into(),
            )),
            Classification::PassThrough => Err(EcaError::EcaSyntax(
                "define_trigger expects an ECA definition, got plain SQL".into(),
            )),
        }
    }

    fn drop_trigger(&self, trigger: &str, ctx: &SessionCtx) -> Result<AgentResponse> {
        EcaAgent::execute(self, &format!("drop trigger {trigger}"), ctx)
    }

    fn stats(&self) -> AgentStats {
        EcaAgent::stats(self)
    }

    fn drain(&self, timeout: Duration) -> DrainReport {
        EcaAgent::drain(self, timeout)
    }

    fn resume(&self) {
        EcaAgent::resume(self)
    }

    fn is_draining(&self) -> bool {
        EcaAgent::is_draining(self)
    }

    fn execute_once(
        &self,
        sql: &str,
        ctx: &SessionCtx,
        token: &str,
        seq: u64,
    ) -> Result<ExecOutcome> {
        EcaAgent::execute_once(self, sql, ctx, token, seq)
    }

    fn record_response(&self, token: &str, seq: u64, line: &str) -> Result<()> {
        EcaAgent::record_wire_response(self, token, seq, line)
    }

    fn forget_session(&self, token: &str, below_seq: u64) -> Result<()> {
        EcaAgent::forget_wire_session(self, token, below_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsql::SqlServer;
    use std::sync::Arc;

    fn service() -> (Arc<dyn ActiveService>, SessionCtx) {
        let server = SqlServer::new();
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        (Arc::new(agent), SessionCtx::new("db", "u"))
    }

    #[test]
    fn one_surface_covers_sql_and_rules() {
        let (svc, ctx) = service();
        svc.execute("create table t (a int)", &ctx).unwrap();
        svc.execute("create table audit (n int)", &ctx).unwrap();
        svc.define_trigger(
            "create trigger tr on t for insert event e as insert audit values (1)",
            &ctx,
        )
        .unwrap();
        svc.execute("insert t values (1)", &ctx).unwrap();
        let r = svc.execute("select count(*) from audit", &ctx).unwrap();
        assert_eq!(r.server.scalar(), Some(&relsql::Value::Int(1)));
        assert_eq!(svc.stats().notifications, 1);
        svc.drop_trigger("tr", &ctx).unwrap();
        // The primitive event outlives the rule (events are shared), but
        // the dropped rule's action no longer runs.
        svc.execute("insert t values (2)", &ctx).unwrap();
        let r = svc.execute("select count(*) from audit", &ctx).unwrap();
        assert_eq!(
            r.server.scalar(),
            Some(&relsql::Value::Int(1)),
            "dropped trigger's action must not run"
        );
    }

    #[test]
    fn define_trigger_rejects_non_definitions() {
        let (svc, ctx) = service();
        svc.execute("create table t (a int)", &ctx).unwrap();
        let err = svc.define_trigger("insert t values (1)", &ctx).unwrap_err();
        assert_eq!(err.kind(), crate::error::EcaErrorKind::Syntax);
        let err = svc.define_trigger("drop trigger nope", &ctx).unwrap_err();
        assert_eq!(err.kind(), crate::error::EcaErrorKind::Syntax);
    }

    #[test]
    fn drain_rejects_new_work_until_resume() {
        let (svc, ctx) = service();
        svc.execute("create table t (a int)", &ctx).unwrap();
        let report = svc.drain(Duration::from_millis(200));
        assert!(report.quiescent);
        assert!(svc.is_draining());
        let err = svc.execute("insert t values (1)", &ctx).unwrap_err();
        assert_eq!(err.kind(), crate::error::EcaErrorKind::Unavailable);
        svc.resume();
        assert!(!svc.is_draining());
        svc.execute("insert t values (1)", &ctx).unwrap();
    }
}
