//! The ECA Agent (§3, Figure 2): the Virtual Active SQL Server.
//!
//! Wires the seven functional modules together: Gateway Open Server
//! ([`crate::gateway`]), Language Filter ([`crate::filter`]), ECA Parser
//! ([`crate::eca_parser`] + [`crate::codegen`]), Local Event Detector
//! ([`led`]), Persistent Manager ([`crate::persist`]), Event Notifier
//! ([`crate::notifier`]) and Action Handler ([`crate::action`]).
//!
//! Control flow follows Figures 3 and 4: ECA commands are parsed, code is
//! generated and installed through the gateway, and rules are persisted;
//! plain SQL passes through, native triggers notify the agent over the
//! datagram channel, the LED detects (composite) events, and the Action
//! Handler invokes stored procedures back inside the server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use led::{
    Condition, CouplingMode, Detector, Firing, Occurrence, Param, ParameterContext, RuleSpec,
};
use parking_lot::Mutex;
use relsql::ast::TriggerOp;
use relsql::notify::{ChannelSink, ChaosSink, Datagram, FaultPlan, NotificationSink};
use relsql::{BatchResult, SessionCtx, SqlServer};

use crate::action::{
    ActionHandler, ActionOutcome, ActionRequest, DeadLetter, FaultInjector, RetryPolicy,
};
use crate::codegen;
use crate::eca_parser::{parse_eca, EcaCommand, TriggerClauses};
use crate::error::{AgentError, Result};
use crate::filter::{classify, contains_commit, Classification};
use crate::gateway::Gateway;
use crate::naming;
use crate::notifier;
use crate::persist::PersistentManager;
use crate::registry::{
    CompositeEventInfo, PrimitiveEventInfo, Registry, ShadowKind, TriggerInfo, TriggerKind,
};
use crate::reliability::{Admission, ReliabilityTracker};
use crate::saga::{
    persist_saga_steps_sql, plan_from_journal, SagaCrashHook, SagaJournalRow, SagaPlan, SagaSpec,
    SagaStep,
};

/// Agent configuration.
///
/// Construct through [`AgentConfig::builder`]; the struct is
/// `#[non_exhaustive]` so fields can be added without breaking callers.
/// The `Default` impl remains as a deprecated construction path for one
/// release — it produces the same configuration as an unmodified builder.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AgentConfig {
    /// Host/port baked into generated `syb_sendmsg` calls (cosmetic — the
    /// in-process transport ignores them, like the paper's fixed UDP
    /// endpoint in Figure 11).
    pub notify_host: String,
    pub notify_port: u16,
    /// Simulated UDP loss probability for the notification channel.
    pub drop_probability: f64,
    pub drop_seed: u64,
    /// Full fault plan (drop, duplicate, reorder, delay bursts) for the
    /// notification channel. When set it takes precedence over
    /// `drop_probability`/`drop_seed` (which remain as a drop-only
    /// shorthand).
    pub fault_plan: Option<FaultPlan>,
    /// Exactly-once notification semantics: suppress duplicate
    /// `(event, vNo)` deliveries, repair gaps from the durable occurrence
    /// counters, and replay occurrences missed while the agent was down.
    /// Disable to get the paper's honest fire-and-forget UDP behaviour
    /// (events lost on the channel stay lost).
    pub exactly_once: bool,
    /// Retry policy for failing rule actions (default: single attempt).
    pub retry: RetryPolicy,
    /// Safety cap on cascaded notifications processed per client call.
    pub max_cascade: usize,
    /// Per-node LED buffered-occurrence ceiling (circuit breaker for
    /// unbounded CHRONICLE/CONTINUOUS state — see experiment E9).
    /// `None` disables the check.
    pub led_state_limit: Option<usize>,
    /// Bound on the notification channel feeding the detector stage.
    /// `None` keeps the channel unbounded; `Some(depth)` makes `syb_sendmsg`
    /// drop-on-full (UDP semantics, counted in
    /// [`AgentStats::notify_overflows`]) so a slow detector can never hold
    /// table locks hostage — the exactly-once anti-entropy sweep repairs
    /// any overflowed occurrence from the durable version tables.
    pub notify_queue_depth: Option<usize>,
}

impl AgentConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> AgentConfigBuilder {
        AgentConfigBuilder {
            config: AgentConfig {
                notify_host: "128.227.205.215".into(), // the paper's Figure 11 address
                notify_port: 10006,
                drop_probability: 0.0,
                drop_seed: 0,
                fault_plan: None,
                exactly_once: true,
                retry: RetryPolicy::default(),
                max_cascade: 10_000,
                led_state_limit: None,
                notify_queue_depth: None,
            },
        }
    }
}

// Deprecated construction path (one release): prefer
// `AgentConfig::builder().build()`. Kept because `EcaAgent::with_defaults`
// and a long tail of tests still go through it.
impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig::builder().build()
    }
}

/// Builder for [`AgentConfig`]. Every setter mirrors one config field;
/// unset fields keep their defaults.
///
/// ```
/// use eca_core::AgentConfig;
/// let config = AgentConfig::builder()
///     .exactly_once(true)
///     .max_cascade(50_000)
///     .build();
/// assert!(config.exactly_once);
/// ```
#[derive(Debug, Clone)]
pub struct AgentConfigBuilder {
    config: AgentConfig,
}

impl AgentConfigBuilder {
    /// Host baked into generated `syb_sendmsg` calls.
    pub fn notify_host(mut self, host: impl Into<String>) -> Self {
        self.config.notify_host = host.into();
        self
    }

    /// Port baked into generated `syb_sendmsg` calls.
    pub fn notify_port(mut self, port: u16) -> Self {
        self.config.notify_port = port;
        self
    }

    /// Drop-only channel loss (shorthand for a lossy [`FaultPlan`]).
    pub fn drop_probability(mut self, probability: f64, seed: u64) -> Self {
        self.config.drop_probability = probability;
        self.config.drop_seed = seed;
        self
    }

    /// Full channel fault plan (takes precedence over `drop_probability`).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Exactly-once notification semantics (on by default).
    pub fn exactly_once(mut self, on: bool) -> Self {
        self.config.exactly_once = on;
        self
    }

    /// Retry policy for failing rule actions.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Safety cap on cascaded notifications per client call.
    pub fn max_cascade(mut self, cap: usize) -> Self {
        self.config.max_cascade = cap;
        self
    }

    /// Per-node LED buffered-occurrence ceiling (`None` disables).
    pub fn led_state_limit(mut self, limit: Option<usize>) -> Self {
        self.config.led_state_limit = limit;
        self
    }

    /// Bound the notification channel feeding the detector stage (`None`
    /// keeps it unbounded).
    pub fn notify_queue_depth(mut self, depth: Option<usize>) -> Self {
        self.config.notify_queue_depth = depth;
        self
    }

    /// Finish the build.
    pub fn build(self) -> AgentConfig {
        self.config
    }
}

/// Counters for the agent's moving parts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    pub eca_commands: u64,
    pub notifications: u64,
    pub malformed_notifications: u64,
    pub actions_executed: u64,
    /// Occurrences repaired whose datagram never arrived (channel drops).
    pub drops_detected: u64,
    /// Occurrences synthesized from the durable tables (drops + delays).
    pub gaps_repaired: u64,
    /// Re-delivered `(event, vNo)` datagrams suppressed.
    pub duplicates_suppressed: u64,
    /// Action attempts beyond the first.
    pub retries: u64,
    /// Actions parked in the dead-letter queue (cumulative).
    pub dead_lettered: u64,
    /// Datagrams dropped because the bounded notification queue was full
    /// (repaired later by the anti-entropy sweep).
    pub notify_overflows: u64,
    /// Server statement-plan cache hits (memoized parses reused).
    pub plan_cache_hits: u64,
    /// Server statement-plan cache misses (batches parsed from scratch).
    pub plan_cache_misses: u64,
    /// Lock-group acquisitions that blocked on a busy table.
    pub lock_waits: u64,
    /// Batches the server scheduled concurrently under per-table locks.
    pub batches_parallel: u64,
    /// Batches the server ran exclusively (DDL, transactions).
    pub batches_exclusive: u64,
    /// Read-pure batches served lock-free from an MVCC snapshot.
    pub snapshot_reads: u64,
    /// Current MVCC publication epoch (advances by two per publishing batch).
    pub snapshot_epoch: u64,
    /// Peak number of footprint-scheduled batches executing at once.
    pub batches_inflight_peak: u64,
    /// Table accesses the engine served through a secondary index.
    pub index_hits: u64,
    /// Table accesses that fell back to a full scan.
    pub index_misses: u64,
    /// Candidate rows the engine visited (scans + index probes).
    pub rows_scanned: u64,
    /// Statements executed through a compiled physical plan.
    pub exec_compiled: u64,
    /// Statements executed by the tree-walking interpreter.
    pub exec_interpreted: u64,
    /// Interpreter fallbacks: unsupported statement shape.
    pub exec_fallback_expr: u64,
    /// Interpreter fallbacks: statement ran inside a trigger scope.
    pub exec_fallback_scope: u64,
    /// Interpreter fallbacks: compiled execution disabled by config.
    pub exec_fallback_disabled: u64,
    /// Vectorized batches executed (chunks of candidate tuples).
    pub batches_vectorized: u64,
    /// Candidate tuples processed through vectorized batches.
    pub rows_batched: u64,
    /// Lowered-plan cache hits (compiled program reused).
    pub plan_lowered_hits: u64,
    /// Lowered-plan cache misses (statement lowered from scratch).
    pub plan_lowered_misses: u64,
    /// WAL records appended (0 unless the server was opened durable).
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// fsyncs issued by the commit path.
    pub wal_fsyncs: u64,
    /// Commit waits covered by a shared fsync (group commit).
    pub wal_group_commits: u64,
    /// Checkpoints taken (snapshot written, WAL truncated).
    pub wal_checkpoints: u64,
    /// WAL records replayed during recovery at open time.
    pub wal_records_replayed: u64,
    /// 1 if recovery trimmed a torn WAL tail (mid-write crash signature).
    pub wal_torn_tail: u64,
    /// Saga instances started fresh (journal `started` rows written).
    pub sagas_started: u64,
    /// Sagas that committed (every forward step applied).
    pub sagas_committed: u64,
    /// Sagas that failed forward and fully compensated backward.
    pub sagas_compensated: u64,
    /// In-flight sagas resumed from the journal (restart or requeue).
    pub sagas_resumed: u64,
    /// Forward saga steps applied (journaled `done`).
    pub saga_steps_executed: u64,
    /// Compensations applied (journaled `done`).
    pub saga_compensations: u64,
    /// Stamped wire requests journaled into `SysWireJournal`.
    pub wire_journaled: u64,
    /// Stamped wire requests deduplicated against the journal (answered
    /// as replays instead of re-applied).
    pub wire_replays: u64,
}

/// Named fault counters from the notification channel's chaos sink.
///
/// Replaces the old positional `(u64, u64, u64, u64)` return of
/// [`EcaAgent::channel_fault_counts`], whose field order was easy to get
/// wrong at call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChannelFaultCounts {
    /// Datagrams dropped outright.
    pub dropped: u64,
    /// Extra (duplicate) deliveries injected.
    pub duplicated: u64,
    /// Datagrams routed through the reorder holding buffer.
    pub reordered: u64,
    /// Datagrams held back by a reorder buffer or delay burst.
    pub delayed: u64,
    /// Datagrams that reached the agent's channel.
    pub forwarded: u64,
}

/// What one client call produced.
#[derive(Debug, Default)]
pub struct AgentResponse {
    /// Direct results from the SQL server (pass-through path).
    pub server: BatchResult,
    /// Rule actions executed as a consequence of this call (IMMEDIATE and
    /// flushed DEFERRED rules).
    pub actions: Vec<ActionOutcome>,
    /// Agent-level informational messages.
    pub messages: Vec<String>,
}

impl AgentResponse {
    /// Outcome of a specific rule's action, if it ran.
    pub fn action_of(&self, rule_suffix: &str) -> Option<&ActionOutcome> {
        self.actions.iter().find(|a| a.rule.ends_with(rule_suffix))
    }
}

/// What [`EcaAgent::execute_once`] produced for an idempotency-keyed
/// request (DESIGN.md §16).
#[derive(Debug)]
pub enum ExecOutcome {
    /// First application: the batch ran and these are its results.
    Fresh(AgentResponse),
    /// The key was already journaled — the batch's effects are in the
    /// engine from an earlier submission and were **not** re-applied. The
    /// payload is the recorded response line if the backfill ran before
    /// the crash/reconnect, else `None` (caller answers with a
    /// placeholder).
    Replayed(Option<String>),
}

/// Callback invoked for every primitive-event occurrence the agent raises
/// into its LED. Used by the Global Event Detector (§6 future work) to
/// subscribe to a site's event stream.
pub type OccurrenceListener = Arc<dyn Fn(&str, &[Param], i64) + Send + Sync>;

struct Inner {
    gateway: Arc<Gateway>,
    led: Mutex<Detector>,
    registry: Mutex<Registry>,
    persist: PersistentManager,
    action: Arc<ActionHandler>,
    rx: Receiver<Datagram>,
    /// The base channel sink (possibly bounded) — kept for the overflow
    /// counter even when a chaos sink wraps it.
    sink: Arc<ChannelSink>,
    /// The chaos sink, when a fault plan is active — kept so tests and the
    /// shell can flush held datagrams and read channel fault counters.
    chaos: Option<Arc<ChaosSink<ChannelSink>>>,
    /// Per-event high-water marks for exactly-once admission.
    tracker: Mutex<ReliabilityTracker>,
    config: AgentConfig,
    listeners: Mutex<Vec<OccurrenceListener>>,
    /// When set, a dedicated notifier thread owns the channel and the
    /// synchronous per-call pump stands down.
    async_mode: std::sync::atomic::AtomicBool,
    /// Stop flag for the notifier thread.
    notifier_stop: std::sync::atomic::AtomicBool,
    /// Drain latch: once set, `execute` rejects new statements with
    /// [`EcaError::Unavailable`] while in-flight work quiesces.
    draining: std::sync::atomic::AtomicBool,
    /// Outcomes produced on the notifier thread, for later collection.
    async_outcomes: Mutex<Vec<ActionOutcome>>,
    eca_commands: AtomicU64,
    notifications: AtomicU64,
    malformed: AtomicU64,
    actions_executed: AtomicU64,
    /// Last observed value of the combined loss signal (engine rollbacks +
    /// channel overflows + malformed datagrams + chaos faults). The
    /// exactly-once pump runs its durable-counter anti-entropy sweep only
    /// when this moves — in a loss-free steady state the sweep is pure
    /// overhead and serializes disjoint-table clients on the tracker lock.
    last_loss_signal: AtomicU64,
    /// Stamped wire requests journaled into `SysWireJournal`.
    wire_journaled: AtomicU64,
    /// Stamped wire requests answered from the journal instead of
    /// re-applied (the exactly-once dedup firing).
    wire_replays: AtomicU64,
}

/// The agent. Cheap to clone (all state shared).
#[derive(Clone)]
pub struct EcaAgent {
    inner: Arc<Inner>,
}

impl EcaAgent {
    /// Stand up an agent in front of `server`: installs the notification
    /// sink, creates missing system tables, and restores every persisted
    /// ECA rule (Persistent Manager recovery, Figure 8).
    pub fn new(server: Arc<SqlServer>, config: AgentConfig) -> Result<Self> {
        let (sink, rx) = match config.notify_queue_depth {
            Some(depth) => ChannelSink::bounded(depth),
            None => ChannelSink::new(),
        };
        let plan = config
            .fault_plan
            .clone()
            .unwrap_or_else(|| FaultPlan::lossy(config.drop_probability, config.drop_seed));
        let chaos = if plan.is_noop() {
            server.set_sink(Arc::clone(&sink) as Arc<dyn NotificationSink>);
            None
        } else {
            let chaos = ChaosSink::new(Arc::clone(&sink), plan);
            server.set_sink(Arc::clone(&chaos) as Arc<dyn NotificationSink>);
            Some(chaos)
        };
        let gateway = Arc::new(Gateway::new(Arc::clone(&server)));
        let persist = PersistentManager::new(&server);
        persist.ensure_system_tables()?;
        let mut detector = Detector::new();
        detector.set_state_limit(config.led_state_limit);
        let agent = EcaAgent {
            inner: Arc::new(Inner {
                action: Arc::new(ActionHandler::with_policy(
                    Arc::clone(&gateway),
                    config.retry.clone(),
                )),
                gateway,
                led: Mutex::new(detector),
                registry: Mutex::new(Registry::new()),
                persist,
                rx,
                sink,
                chaos,
                tracker: Mutex::new(ReliabilityTracker::new()),
                config,
                listeners: Mutex::new(Vec::new()),
                async_mode: std::sync::atomic::AtomicBool::new(false),
                notifier_stop: std::sync::atomic::AtomicBool::new(false),
                draining: std::sync::atomic::AtomicBool::new(false),
                async_outcomes: Mutex::new(Vec::new()),
                eca_commands: AtomicU64::new(0),
                notifications: AtomicU64::new(0),
                malformed: AtomicU64::new(0),
                actions_executed: AtomicU64::new(0),
                last_loss_signal: AtomicU64::new(0),
                wire_journaled: AtomicU64::new(0),
                wire_replays: AtomicU64::new(0),
            }),
        };
        agent.inner.action.set_durable_dead_letters(true);
        agent.recover()?;
        agent.recover_dead_letters()?;
        // Settle in-flight sagas from the journal *before* watermark replay
        // re-raises their occurrences: the journal makes the re-raised
        // firing a no-op (AlreadySettled) instead of a double-apply.
        agent.recover_sagas()?;
        agent.recovery_replay()?;
        Ok(agent)
    }

    /// Stand up an agent over a *durable* server rooted at `data_dir`:
    /// crash recovery (snapshot + WAL replay) restores the database, the
    /// Sys* tables, and `SysAgentWatermark` before the normal Persistent
    /// Manager recovery and watermark-driven occurrence replay run — so a
    /// hard process death loses no rules and fires no action twice.
    pub fn open(
        data_dir: impl AsRef<std::path::Path>,
        durability: relsql::DurabilityConfig,
        config: AgentConfig,
    ) -> Result<Self> {
        let server = SqlServer::open(data_dir, durability)?;
        Self::new(server, config)
    }

    /// Convenience constructor with defaults.
    pub fn with_defaults(server: Arc<SqlServer>) -> Result<Self> {
        EcaAgent::new(server, AgentConfig::default())
    }

    /// Open a client connection through the agent (the transparent
    /// "Virtual Active SQL Server" interface).
    pub fn client(&self, database: &str, user: &str) -> EcaClient {
        EcaClient {
            agent: self.clone(),
            ctx: SessionCtx::new(database, user),
        }
    }

    pub fn server(&self) -> &Arc<SqlServer> {
        self.inner.gateway.server()
    }

    pub fn stats(&self) -> AgentStats {
        let tracker = self.inner.tracker.lock();
        let server = self.server().server_stats();
        let saga = self.inner.action.saga_executor().counters();
        AgentStats {
            eca_commands: self.inner.eca_commands.load(Ordering::Relaxed),
            notifications: self.inner.notifications.load(Ordering::Relaxed),
            malformed_notifications: self.inner.malformed.load(Ordering::Relaxed),
            actions_executed: self.inner.actions_executed.load(Ordering::Relaxed),
            drops_detected: tracker.drops_detected(),
            gaps_repaired: tracker.gaps_repaired(),
            duplicates_suppressed: tracker.duplicates_suppressed(),
            retries: self.inner.action.retry_count(),
            dead_lettered: self.inner.action.dead_letter_count(),
            notify_overflows: self.inner.sink.overflow_count(),
            plan_cache_hits: server.plan_cache_hits,
            plan_cache_misses: server.plan_cache_misses,
            lock_waits: server.lock_waits,
            batches_parallel: server.batches_parallel,
            batches_exclusive: server.batches_exclusive,
            snapshot_reads: server.snapshot_reads,
            snapshot_epoch: server.snapshot_epoch,
            batches_inflight_peak: server.batches_inflight_peak,
            index_hits: server.index_hits,
            index_misses: server.index_misses,
            rows_scanned: server.rows_scanned,
            exec_compiled: server.exec_compiled,
            exec_interpreted: server.exec_interpreted,
            exec_fallback_expr: server.exec_fallback_expr,
            exec_fallback_scope: server.exec_fallback_scope,
            exec_fallback_disabled: server.exec_fallback_disabled,
            batches_vectorized: server.batches_vectorized,
            rows_batched: server.rows_batched,
            plan_lowered_hits: server.plan_lowered_hits,
            plan_lowered_misses: server.plan_lowered_misses,
            wal_records: server.wal_records,
            wal_bytes: server.wal_bytes,
            wal_fsyncs: server.wal_fsyncs,
            wal_group_commits: server.wal_group_commits,
            wal_checkpoints: server.wal_checkpoints,
            wal_records_replayed: server.wal_records_replayed,
            wal_torn_tail: server.wal_torn_tail,
            sagas_started: saga.started.load(Ordering::Relaxed),
            sagas_committed: saga.committed.load(Ordering::Relaxed),
            sagas_compensated: saga.compensated.load(Ordering::Relaxed),
            sagas_resumed: saga.resumed.load(Ordering::Relaxed),
            saga_steps_executed: saga.steps_executed.load(Ordering::Relaxed),
            saga_compensations: saga.comps_executed.load(Ordering::Relaxed),
            wire_journaled: self.inner.wire_journaled.load(Ordering::Relaxed),
            wire_replays: self.inner.wire_replays.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the action dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.inner.action.dead_letters()
    }

    /// Drain the dead-letter queue and re-execute every parked action.
    pub fn requeue_dead_letters(&self) -> Vec<ActionOutcome> {
        self.inner.action.requeue_dead_letters()
    }

    /// Install (or clear) a per-attempt action fault injector (chaos hook).
    pub fn set_action_fault_injector(&self, injector: Option<FaultInjector>) {
        self.inner.action.set_fault_injector(injector)
    }

    /// Release any datagrams the chaos sink is still holding (reorder
    /// buffer / delay burst) into the channel. No-op without a fault plan.
    pub fn flush_notification_channel(&self) {
        if let Some(chaos) = &self.inner.chaos {
            chaos.flush();
        }
    }

    /// Channel fault counters from the chaos sink, if a fault plan is
    /// active.
    pub fn channel_fault_counts(&self) -> Option<ChannelFaultCounts> {
        self.inner.chaos.as_ref().map(|c| ChannelFaultCounts {
            dropped: c.dropped_count(),
            duplicated: c.duplicated_count(),
            reordered: c.reordered_count(),
            delayed: c.delayed_count(),
            forwarded: c.forwarded_count(),
        })
    }

    pub fn gateway_stats(&self) -> crate::gateway::GatewayStats {
        self.inner.gateway.stats()
    }

    pub fn led_stats(&self) -> led::DetectorStats {
        self.inner.led.lock().stats()
    }

    /// Total buffered occurrences in the LED (E9 metric).
    pub fn led_state_size(&self) -> usize {
        self.inner.led.lock().total_state_size()
    }

    /// Registered event names (internal form).
    pub fn event_names(&self) -> Vec<String> {
        self.inner.led.lock().event_names()
    }

    /// Registered trigger names (internal form).
    pub fn trigger_names(&self) -> Vec<String> {
        self.inner.registry.lock().trigger_names()
    }

    /// Human-readable operator tree of a registered event, for diagnostics
    /// (e.g. "SEQ AND PRIMITIVE PRIMITIVE PRIMITIVE").
    pub fn describe_event(&self, event: &str) -> Option<String> {
        self.inner.led.lock().describe(event)
    }

    /// Structured metadata of one registered trigger.
    pub fn trigger_info(&self, name: &str) -> Option<crate::registry::TriggerInfo> {
        self.inner.registry.lock().trigger(name).cloned()
    }

    /// Structured metadata of every registered trigger, by name order.
    pub fn triggers(&self) -> Vec<crate::registry::TriggerInfo> {
        let registry = self.inner.registry.lock();
        let mut v: Vec<crate::registry::TriggerInfo> = registry
            .trigger_names()
            .iter()
            .filter_map(|n| registry.trigger(n).cloned())
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Advance virtual time: temporal events (P, P*, PLUS, absolute) due up
    /// to the new time fire, and their rule actions execute.
    pub fn advance_time(&self, micros: i64) -> Result<AgentResponse> {
        let clock = self.server().clock();
        clock.advance(micros);
        let target = clock.peek();
        let firings = self.inner.led.lock().advance_to(target);
        let mut resp = AgentResponse::default();
        self.dispatch(firings, &mut resp)?;
        self.pump(&mut resp)?;
        Ok(resp)
    }

    /// Join all outstanding DETACHED actions and collect their outcomes.
    pub fn wait_detached(&self) -> Vec<ActionOutcome> {
        self.inner.action.wait_detached()
    }

    /// Flush DEFERRED rule actions now (normally driven by COMMIT).
    pub fn flush_deferred(&self) -> Result<AgentResponse> {
        let firings = self.inner.led.lock().flush_deferred();
        let mut resp = AgentResponse::default();
        self.dispatch(firings, &mut resp)?;
        self.pump(&mut resp)?;
        Ok(resp)
    }

    // ----------------------------------------------------------- recovery

    fn recover(&self) -> Result<()> {
        let primitives = self.inner.persist.load_primitives()?;
        let composites = self.inner.persist.load_composites()?;
        let triggers = self.inner.persist.load_triggers()?;
        let mut saga_steps = self.inner.persist.load_saga_steps()?;
        // Validate the enum columns up front: a corrupted system-table row
        // must fail recovery loudly, not silently fall back to the default
        // coupling/context and change rule semantics.
        for c in &composites {
            parse_recovered_context(&c.context, "SysCompositeEvent", &c.event)?;
        }
        for t in &triggers {
            parse_recovered_coupling(&t.coupling, &t.name)?;
            parse_recovered_context(&t.context, "SysEcaTrigger", &t.name)?;
        }
        let mut led = self.inner.led.lock();
        let mut registry = self.inner.registry.lock();
        for p in &primitives {
            let op = TriggerOp::parse(&p.operation).ok_or_else(|| {
                AgentError::Recovery(format!("bad operation '{}' for '{}'", p.operation, p.event))
            })?;
            let table_key = self
                .resolve_table(&p.table, &SessionCtx::new(&p.db, &p.user))
                .unwrap_or_else(|_| p.table.clone());
            let info = PrimitiveEventInfo {
                name: p.event.clone(),
                table: table_key,
                operation: op,
                shadow_inserted: naming::shadow_inserted(&p.event),
                shadow_deleted: naming::shadow_deleted(&p.event),
                version_table: naming::version_table(&p.event),
            };
            led.define_primitive(&p.event)
                .map_err(|e| AgentError::Recovery(e.to_string()))?;
            registry.add_primitive(info)?;
        }
        // Composites may reference each other; iterate to a fixpoint.
        let mut pending: Vec<&crate::persist::PersistedComposite> = composites.iter().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|c| {
                let expr = match snoop::parse(&c.expr_src) {
                    Ok(e) => e,
                    Err(_) => return true, // reported below
                };
                if expr.references().iter().all(|r| led.has_event(&r.key())) {
                    // Validated above; the parse cannot fail here.
                    let ctx: ParameterContext = c.context.parse().unwrap_or_default();
                    if led.define_composite(&c.event, &expr, ctx).is_ok() {
                        let _ = registry.add_composite(CompositeEventInfo {
                            name: c.event.clone(),
                            expr_src: c.expr_src.clone(),
                            context: ctx,
                        });
                        return false;
                    }
                }
                true
            });
            if pending.len() == before {
                return Err(AgentError::Recovery(format!(
                    "unresolvable composite events: {:?}",
                    pending.iter().map(|c| c.event.as_str()).collect::<Vec<_>>()
                )));
            }
        }
        for t in &triggers {
            let coupling = parse_recovered_coupling(&t.coupling, &t.name)?;
            let context = parse_recovered_context(&t.context, "SysEcaTrigger", &t.name)?;
            let kind = if t.kind.trim() == "native" {
                TriggerKind::Native
            } else {
                TriggerKind::Led
            };
            if kind == TriggerKind::Led {
                led.add_rule(
                    RuleSpec::new(&t.name, &t.event)
                        .with_coupling(coupling)
                        .with_priority(t.priority)
                        .with_condition(Condition::Always),
                )
                .map_err(|e| AgentError::Recovery(e.to_string()))?;
            }
            let saga = saga_steps.remove(&t.name).map(|steps| {
                Arc::new(SagaSpec {
                    steps: steps
                        .into_iter()
                        .map(|s| SagaStep {
                            proc: s.step_proc,
                            compensation: s.comp_proc,
                        })
                        .collect(),
                })
            });
            registry.add_trigger(TriggerInfo {
                name: t.name.clone(),
                event: t.event.clone(),
                proc_name: t.proc_name.clone(),
                kind,
                coupling,
                context,
                priority: t.priority,
                saga,
            })?;
        }
        Ok(())
    }

    /// Re-seed the in-memory dead-letter queue from `SysDeadLetter` so
    /// `\requeue` works across process lives, not just within one.
    fn recover_dead_letters(&self) -> Result<()> {
        let rows = self.inner.persist.load_dead_letters()?;
        if rows.is_empty() {
            return Ok(());
        }
        let mut letters = Vec::with_capacity(rows.len());
        for r in rows {
            let coupling = parse_recovered_coupling(&r.coupling, &r.trigger)?;
            let context = parse_recovered_context(&r.context, "SysDeadLetter", &r.trigger)?;
            let params = crate::saga::decode_params(&r.event, &r.params);
            let saga = self
                .inner
                .registry
                .lock()
                .trigger(&r.trigger)
                .and_then(|t| t.saga.clone());
            letters.push(DeadLetter {
                request: ActionRequest {
                    proc_name: r.proc_name,
                    event: r.event,
                    context,
                    rule: r.trigger,
                    occurrence: Occurrence::point("", 0, params),
                    saga,
                },
                coupling,
                error: r.error,
                attempts: r.attempts as u32,
            });
        }
        self.inner.action.seed_dead_letters(letters);
        Ok(())
    }

    /// Scan `SysSagaJournal` for sagas left in flight by a crash and settle
    /// each one deterministically: resume forward if every journaled step
    /// succeeded so far, compensate backward if a forward step failed.
    /// Outcomes land in the async-outcome mailbox.
    fn recover_sagas(&self) -> Result<()> {
        let journal = self.inner.persist.load_saga_journal()?;
        if journal.is_empty() {
            return Ok(());
        }
        // Group by saga key, preserving first-seen (journal append) order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::HashMap<String, Vec<SagaJournalRow>> =
            std::collections::HashMap::new();
        for row in journal {
            if !groups.contains_key(&row.key) {
                order.push(row.key.clone());
            }
            groups.entry(row.key.clone()).or_default().push(row);
        }
        let mut outcomes = Vec::new();
        for key in order {
            let rows = &groups[&key];
            if matches!(plan_from_journal(rows), SagaPlan::Settled { .. }) {
                continue;
            }
            let first = &rows[0];
            let (spec, coupling) = {
                let registry = self.inner.registry.lock();
                match registry.trigger(&first.rule) {
                    Some(t) => match &t.saga {
                        Some(spec) => (Arc::clone(spec), t.coupling),
                        // Trigger no longer declares a saga: the journal rows
                        // are orphans; leave them for inspection.
                        None => continue,
                    },
                    None => continue,
                }
            };
            let outcome = self.inner.action.resume_saga(
                &first.rule,
                &first.event,
                first.vno,
                &spec,
                coupling,
            );
            outcomes.push(outcome);
        }
        if !outcomes.is_empty() {
            self.inner.async_outcomes.lock().extend(outcomes);
        }
        Ok(())
    }

    /// Anti-entropy at startup: replay occurrences that happened while the
    /// agent was down. The durable `SysPrimitiveEvent.vNo` counters kept
    /// advancing (native triggers run with or without an agent listening);
    /// everything between the persisted watermark and the durable counter
    /// is raised now, in `vNo` order. Rule-action outcomes land in the
    /// async-outcome mailbox. Skipped when `exactly_once` is off.
    fn recovery_replay(&self) -> Result<()> {
        if !self.inner.config.exactly_once {
            return Ok(());
        }
        let watermarks = self.inner.persist.load_watermarks()?;
        let durables = self.inner.persist.load_durable_vnos()?;
        let mut resp = AgentResponse::default();
        let mut raised = 0usize;
        for (event, durable) in durables {
            if self.inner.registry.lock().primitive(&event).is_none() {
                continue;
            }
            let hwm = match watermarks.get(&event) {
                Some(&h) => h.min(durable),
                None => {
                    // Database predates the watermark table (or the row was
                    // lost): assume caught up rather than replaying history
                    // of unknown age.
                    self.inner.persist.save_watermark(&event, durable)?;
                    durable
                }
            };
            let missing = {
                let mut tracker = self.inner.tracker.lock();
                tracker.seed_event(&event, hwm);
                tracker.observe_durable(&event, durable)
            };
            for vno in missing {
                self.raise_occurrence(&event, vno, &mut raised, &mut resp)?;
            }
        }
        self.flush_watermarks()?;
        if !resp.actions.is_empty() {
            self.inner.async_outcomes.lock().extend(resp.actions);
        }
        Ok(())
    }

    // ------------------------------------------------ notification pumping

    /// Start the dedicated Event Notifier thread (Figure 15): notifications
    /// are processed asynchronously and IMMEDIATE/DEFERRED-flushed action
    /// outcomes accumulate in a mailbox drained via
    /// [`EcaAgent::take_async_outcomes`]. Returns the thread handle; stop
    /// it with [`EcaAgent::stop_notifier_thread`].
    ///
    /// In this mode client calls no longer process notifications inline, so
    /// `execute()` responses carry no composite-rule actions — the paper's
    /// actual asynchronous architecture, traded against the synchronous
    /// default's determinism.
    pub fn start_notifier_thread(&self) -> std::thread::JoinHandle<()> {
        use std::sync::atomic::Ordering as O;
        self.inner.async_mode.store(true, O::SeqCst);
        self.inner.notifier_stop.store(false, O::SeqCst);
        let agent = self.clone();
        std::thread::spawn(move || {
            while !agent.inner.notifier_stop.load(O::SeqCst) {
                let mut resp = AgentResponse::default();
                let _ = agent.pump_inner(&mut resp);
                if !resp.actions.is_empty() {
                    agent.inner.async_outcomes.lock().extend(resp.actions);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    }

    /// Signal the notifier thread to stop (join the handle afterwards) and
    /// return to synchronous pumping.
    pub fn stop_notifier_thread(&self) {
        use std::sync::atomic::Ordering as O;
        self.inner.notifier_stop.store(true, O::SeqCst);
        self.inner.async_mode.store(false, O::SeqCst);
    }

    /// Drain the action outcomes the notifier thread produced.
    pub fn take_async_outcomes(&self) -> Vec<ActionOutcome> {
        std::mem::take(&mut *self.inner.async_outcomes.lock())
    }

    /// Block until the notification channel is empty and has stayed empty
    /// for a short settle interval (async mode only). Returns false on
    /// timeout.
    pub fn wait_quiescent(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut calm = 0;
        while std::time::Instant::now() < deadline {
            if self.inner.rx.is_empty() {
                calm += 1;
                if calm >= 3 {
                    return true;
                }
            } else {
                calm = 0;
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        false
    }

    /// Gracefully quiesce the agent: reject new statements, release any
    /// datagrams the chaos sink still holds, pump the notification channel
    /// dry (or wait for the dedicated notifier thread to do so), join all
    /// outstanding DETACHED actions, and persist the reliability
    /// watermarks. Joined/pumped action outcomes land in the async-outcome
    /// mailbox ([`EcaAgent::take_async_outcomes`]). Statements are
    /// rejected with [`crate::EcaError::Unavailable`] until
    /// [`EcaAgent::resume`].
    pub fn drain(&self, timeout: std::time::Duration) -> crate::service::DrainReport {
        use std::sync::atomic::Ordering as O;
        self.inner.draining.store(true, O::SeqCst);
        self.flush_notification_channel();
        let quiescent = if self.inner.async_mode.load(O::SeqCst) {
            self.wait_quiescent(timeout)
        } else {
            let mut resp = AgentResponse::default();
            let pumped = self.pump_inner(&mut resp).is_ok();
            if !resp.actions.is_empty() {
                self.inner.async_outcomes.lock().extend(resp.actions);
            }
            pumped && self.inner.rx.is_empty()
        };
        let detached = self.wait_detached();
        let detached_joined = detached.len();
        let async_outcomes = {
            let mut mailbox = self.inner.async_outcomes.lock();
            mailbox.extend(detached);
            mailbox.len()
        };
        let _ = self.flush_watermarks();
        crate::service::DrainReport {
            quiescent,
            detached_joined,
            async_outcomes,
        }
    }

    /// Lift the drain latch set by [`EcaAgent::drain`].
    pub fn resume(&self) {
        self.inner.draining.store(false, Ordering::SeqCst);
    }

    /// Whether the agent is currently refusing statements (drained).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Drain and process pending notifications (Figure 4 steps 2–6),
    /// including cascades caused by the actions themselves. No-op while the
    /// dedicated notifier thread owns the channel.
    fn pump(&self, resp: &mut AgentResponse) -> Result<()> {
        if self.inner.async_mode.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.pump_inner(resp)
    }

    fn pump_inner(&self, resp: &mut AgentResponse) -> Result<()> {
        if self.inner.config.exactly_once {
            self.pump_exactly_once(resp)
        } else {
            self.pump_lossy(resp)
        }
    }

    /// Combined monotonic loss signal: every path that can leave a durable
    /// occurrence counter out of step with the admission tracker without a
    /// matching datagram in the channel bumps one of these counters *during
    /// the statement that caused it* (chaos faults and overflows increment
    /// at send time, rollbacks inside the ROLLBACK statement), so by the
    /// time that statement's own pump runs, the signal has already moved.
    fn loss_signal(&self) -> u64 {
        let rollbacks = self.server().rollback_count();
        let chaos = self
            .inner
            .chaos
            .as_ref()
            .map(|c| {
                c.dropped_count() + c.duplicated_count() + c.reordered_count() + c.delayed_count()
            })
            .unwrap_or(0);
        rollbacks
            .wrapping_add(self.inner.sink.overflow_count())
            .wrapping_add(self.inner.malformed.load(Ordering::SeqCst))
            .wrapping_add(chaos)
    }

    /// Exactly-once pump: drain the channel through the admission tracker
    /// (duplicates suppressed, gaps synthesized in `vNo` order), then
    /// reconcile against the durable occurrence counters so occurrences
    /// whose datagram was dropped outright are repaired too. Loops until a
    /// full pass makes no progress, then write-behinds the watermarks.
    fn pump_exactly_once(&self, resp: &mut AgentResponse) -> Result<()> {
        let mut raised = 0usize;
        loop {
            let mut progressed = false;
            // Phase 1: the channel (wake-up hints, UDP semantics).
            while let Ok(datagram) = self.inner.rx.try_recv() {
                progressed = true;
                let note = match notifier::decode(&datagram) {
                    Some(n) => n,
                    None => {
                        self.inner.malformed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };
                if self.inner.registry.lock().primitive(&note.event).is_none() {
                    // Stale notification for a dropped event: received but
                    // not raisable (matches the legacy pump's accounting).
                    self.inner.notifications.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let admission = self.inner.tracker.lock().admit(&note.event, note.vno);
                match admission {
                    Admission::Duplicate | Admission::LateArrival => continue,
                    Admission::Fresh { missing } => {
                        for vno in missing {
                            self.raise_occurrence(&note.event, vno, &mut raised, resp)?;
                        }
                        self.raise_occurrence(&note.event, note.vno, &mut raised, resp)?;
                    }
                }
            }
            // Phase 2: anti-entropy against the durable counters. Also the
            // rollback reconciliation point: a counter *below* the mark
            // means a transaction rolled back after its datagram went out,
            // and the tracker regresses so re-used numbers stay admissible.
            //
            // The durable read happens *inside* the tracker lock: with the
            // read outside it, a concurrent admit could advance the mark
            // between read and reconcile, making the stale counter look
            // like a rollback and re-raising already-raised occurrences.
            // Only tracker-seeded events are reconciled (the tracker
            // mirrors registry membership for primitives), which keeps the
            // registry lock out of this section — `drop_event` nests
            // registry → tracker, so the reverse order here would deadlock.
            //
            // The sweep is gated on the loss signal: in a loss-free steady
            // state (no faults, no overflow, no rollback) every occurrence
            // arrives through the channel and the sweep can find nothing,
            // yet it would serialize disjoint-table clients on the tracker
            // lock and the durable read. `swap` claims the new signal value;
            // concurrent pumps racing here at worst both sweep (idempotent
            // under the tracker lock), never both skip a moved signal.
            let signal = self.loss_signal();
            let sweep = signal != self.inner.last_loss_signal.swap(signal, Ordering::SeqCst);
            let repairs: Vec<(String, Vec<i64>)> = if !sweep {
                Vec::new()
            } else {
                let mut tracker = self.inner.tracker.lock();
                let mut repairs = Vec::new();
                for (event, durable) in self.inner.persist.load_durable_vnos()? {
                    if tracker.hwm(&event).is_none() {
                        continue;
                    }
                    let missing = tracker.observe_durable(&event, durable);
                    if !missing.is_empty() {
                        repairs.push((event, missing));
                    }
                }
                repairs
            };
            for (event, missing) in repairs {
                for vno in missing {
                    progressed = true;
                    self.raise_occurrence(&event, vno, &mut raised, resp)?;
                }
            }
            if !progressed {
                break;
            }
        }
        self.flush_watermarks()
    }

    /// The paper's honest fire-and-forget pump: every datagram that arrives
    /// is signalled as-is; dropped datagrams are silently lost, duplicates
    /// are raised twice. Kept verbatim behind `exactly_once: false` for the
    /// loss-sensitivity tests and benchmarks (E8).
    fn pump_lossy(&self, resp: &mut AgentResponse) -> Result<()> {
        let mut processed = 0usize;
        while let Ok(datagram) = self.inner.rx.try_recv() {
            processed += 1;
            if processed > self.inner.config.max_cascade {
                return Err(AgentError::Recovery(format!(
                    "notification cascade exceeded {} messages",
                    self.inner.config.max_cascade
                )));
            }
            let note = match notifier::decode(&datagram) {
                Some(n) => n,
                None => {
                    self.inner.malformed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if self.inner.registry.lock().primitive(&note.event).is_none() {
                // Stale notification for a dropped event: received, counted,
                // not raisable.
                self.inner.notifications.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // The cascade cap was already enforced per datagram above.
            let mut raised = 0usize;
            self.raise_occurrence(&note.event, note.vno, &mut raised, resp)?;
        }
        Ok(())
    }

    /// Raise one primitive-event occurrence into the LED: build the shadow
    /// params, signal, dispatch the firings, publish to listeners. `raised`
    /// guards the per-call cascade cap.
    fn raise_occurrence(
        &self,
        event: &str,
        vno: i64,
        raised: &mut usize,
        resp: &mut AgentResponse,
    ) -> Result<()> {
        *raised += 1;
        if *raised > self.inner.config.max_cascade {
            return Err(AgentError::Recovery(format!(
                "notification cascade exceeded {} messages",
                self.inner.config.max_cascade
            )));
        }
        let params = {
            let registry = self.inner.registry.lock();
            match registry.primitive(event) {
                Some(info) => info
                    .stamped_shadows()
                    .iter()
                    .map(|(shadow, _)| Param::db(event, *shadow, vno, 0))
                    .collect::<Vec<_>>(),
                None => return Ok(()), // dropped concurrently
            }
        };
        self.inner.notifications.fetch_add(1, Ordering::Relaxed);
        let ts = self.server().clock().now();
        let params: Vec<Param> = params
            .into_iter()
            .map(|mut p| {
                p.ts = ts;
                p
            })
            .collect();
        let firings = self
            .inner
            .led
            .lock()
            .signal(event, params.clone(), ts)
            .map_err(AgentError::from)?;
        self.dispatch(firings, resp)?;
        // Publish the occurrence to external subscribers (e.g. a GED)
        // with no internal locks held.
        let listeners: Vec<OccurrenceListener> = self.inner.listeners.lock().clone();
        for l in &listeners {
            l(event, &params, ts);
        }
        Ok(())
    }

    /// Write-behind the high-water marks that changed since the last flush.
    fn flush_watermarks(&self) -> Result<()> {
        let dirty = self.inner.tracker.lock().take_dirty();
        for (event, hwm) in dirty {
            self.inner.persist.save_watermark(&event, hwm)?;
        }
        Ok(())
    }

    /// Subscribe to every primitive-event occurrence this agent raises —
    /// the hook the Global Event Detector uses (§6 future work).
    pub fn add_occurrence_listener(&self, listener: OccurrenceListener) {
        self.inner.listeners.lock().push(listener);
    }

    /// The full saga journal in append order — the `\sagas` inspection
    /// surface. Each row is one journaled boundary (saga started/settled,
    /// step done/failed, compensation done).
    pub fn saga_journal(&self) -> Result<Vec<SagaJournalRow>> {
        self.inner.persist.load_saga_journal()
    }

    /// Install (or clear) a crash hook fired at every saga journal
    /// boundary — the chaos harness uses this to `panic!` the executor at a
    /// chosen boundary and simulate a process death mid-saga.
    pub fn set_saga_crash_hook(&self, hook: Option<SagaCrashHook>) {
        self.inner.action.saga_executor().set_crash_hook(hook);
    }

    fn dispatch(&self, firings: Vec<Firing>, resp: &mut AgentResponse) -> Result<()> {
        for firing in firings {
            let (proc_name, saga) = {
                let registry = self.inner.registry.lock();
                match registry.trigger(&firing.rule) {
                    Some(t) => (t.proc_name.clone(), t.saga.clone()),
                    None => continue,
                }
            };
            let mut request = ActionRequest::from_firing(&firing, proc_name);
            request.saga = saga;
            self.inner.actions_executed.fetch_add(1, Ordering::Relaxed);
            match firing.coupling {
                CouplingMode::Detached => self.inner.action.execute_detached(request),
                coupling => {
                    let outcome = self.inner.action.execute(&request, coupling);
                    resp.actions.push(outcome);
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------- helper lookups

    fn resolve_table(&self, name: &str, ctx: &SessionCtx) -> Result<String> {
        self.server()
            .snapshot()
            .database()
            .resolve_table_key(name, Some((&ctx.database, &ctx.user)))
            .ok_or_else(|| AgentError::Naming(format!("table '{name}' does not exist")))
    }

    fn has_server_table(&self, name: &str) -> bool {
        self.server().snapshot().database().has_table(name)
    }

    /// Every step and compensation procedure of a saga must already exist
    /// in the server — a saga declaration never creates procedures, so a
    /// typo would otherwise surface only at firing time.
    fn validate_saga_procs(&self, spec: &SagaSpec) -> Result<()> {
        let snap = self.server().snapshot();
        for step in &spec.steps {
            for proc in std::iter::once(&step.proc).chain(step.compensation.as_ref()) {
                let found = snap.database().procedure(proc, None).is_some();
                if !found {
                    return Err(AgentError::Naming(format!(
                        "saga step procedure '{proc}' does not exist"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolve an event reference: try the §5.1 expansion first, then the
    /// name as written (it may already be internal).
    fn resolve_event(&self, name: &str, ctx: &SessionCtx) -> Result<String> {
        let registry = self.inner.registry.lock();
        let expanded = naming::internal(ctx, name);
        if registry.has_event(&expanded) {
            return Ok(expanded);
        }
        if registry.has_event(name) {
            return Ok(name.to_string());
        }
        Err(AgentError::Naming(format!("unknown event '{name}'")))
    }

    // --------------------------------------------------------- ECA create

    fn handle_eca(&self, sql: &str, ctx: &SessionCtx) -> Result<AgentResponse> {
        self.inner.eca_commands.fetch_add(1, Ordering::Relaxed);
        match parse_eca(sql)? {
            EcaCommand::CreatePrimitive {
                trigger,
                table,
                operation,
                event,
                clauses,
                action,
            } => self.create_primitive(ctx, &trigger, &table, operation, &event, &clauses, &action),
            EcaCommand::CreateOnExisting {
                trigger,
                event,
                clauses,
                action,
            } => self.create_on_existing(ctx, &trigger, &event, &clauses, &action),
            EcaCommand::CreateComposite {
                trigger,
                event,
                expr_src,
                clauses,
                action,
            } => self.create_composite(ctx, &trigger, &event, &expr_src, &clauses, &action),
            EcaCommand::DropTrigger { trigger } => self.drop_trigger(ctx, &trigger),
            EcaCommand::DropEvent { event } => self.drop_event(ctx, &event),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create_primitive(
        &self,
        ctx: &SessionCtx,
        trigger: &str,
        table: &str,
        operation: TriggerOp,
        event: &str,
        clauses: &TriggerClauses,
        action: &str,
    ) -> Result<AgentResponse> {
        let trigger_i = naming::internal(ctx, trigger);
        let event_i = naming::internal(ctx, event);
        let table_key = self.resolve_table(table, ctx)?;
        {
            let registry = self.inner.registry.lock();
            if registry.has_event(&event_i) {
                return Err(AgentError::Naming(format!(
                    "event '{event_i}' already exists — use the ON-EVENT form to reuse it"
                )));
            }
            if registry.trigger(&trigger_i).is_some() {
                return Err(AgentError::Naming(format!(
                    "trigger '{trigger_i}' already exists"
                )));
            }
            if let Some(existing) = registry.primitive_for_slot(&table_key, operation) {
                return Err(AgentError::Naming(format!(
                    "event '{}' already watches {operation} on '{table}' — reuse it",
                    existing.name
                )));
            }
        }
        let info = PrimitiveEventInfo {
            name: event_i.clone(),
            table: table_key.clone(),
            operation,
            shadow_inserted: naming::shadow_inserted(&event_i),
            shadow_deleted: naming::shadow_deleted(&event_i),
            version_table: naming::version_table(&event_i),
        };
        // Saga action bodies declare step/compensation procedures instead of
        // inline SQL: no action procedure is generated, and the trigger is
        // always LED-routed (the agent must journal each step).
        let saga_spec = SagaSpec::parse_action(action, &|n| naming::internal(ctx, n))?;
        if let Some(spec) = &saga_spec {
            self.validate_saga_procs(spec)?;
        }
        let proc_name = if saga_spec.is_some() {
            String::new()
        } else {
            naming::action_proc(&trigger_i)
        };
        // Rewrite TableName.inserted/.deleted context accessors.
        let (rewritten, refs) = if saga_spec.is_some() {
            (String::new(), Vec::new())
        } else {
            codegen::rewrite_context_refs(action, |t| {
                self.resolve_table(t, ctx)
                    .unwrap_or_else(|_| naming::internal(ctx, t))
            })
        };
        // --- install in the server (Figure 3 step 5), via the gateway.
        // On any failure, roll the already-installed artifacts back so the
        // command can be retried after the user fixes it.
        let kind = if saga_spec.is_none() && clauses.coupling == CouplingMode::Immediate {
            TriggerKind::Native
        } else {
            TriggerKind::Led
        };
        let install = (|| -> Result<()> {
            self.inner
                .gateway
                .internal(&codegen::primitive_event_setup(&info, table), ctx)?;
            if saga_spec.is_none() {
                for r in &refs {
                    self.ensure_tmp_table(r, &info, ctx)?;
                }
                self.inner.gateway.internal(
                    &codegen::native_action_proc(&proc_name, &info, &refs, &rewritten),
                    ctx,
                )?;
            }
            let immediate_procs = if kind == TriggerKind::Native {
                vec![proc_name.clone()]
            } else {
                Vec::new()
            };
            self.inner.gateway.internal(
                &codegen::native_trigger_sql(
                    &info,
                    table,
                    &ctx.user,
                    &self.inner.config.notify_host,
                    self.inner.config.notify_port,
                    &immediate_procs,
                ),
                ctx,
            )?;
            Ok(())
        })();
        if let Err(e) = install {
            // Best-effort cleanup; each artifact may or may not exist.
            for sql in [
                format!("drop trigger {}", naming::native_trigger(&info.name)),
                format!("drop procedure {proc_name}"),
                format!("drop table {}", info.shadow_inserted),
                format!("drop table {}", info.shadow_deleted),
                format!("drop table {}", info.version_table),
            ] {
                let _ = self.inner.gateway.internal(&sql, ctx);
            }
            return Err(e);
        }
        // --- persist (Figure 3 step 7).
        self.inner.persist.run(&codegen::persist_primitive_sql(
            &ctx.database,
            &ctx.user,
            &info,
            table,
        ))?;
        self.inner.persist.run(&codegen::persist_trigger_sql(
            &ctx.database,
            &ctx.user,
            &trigger_i,
            &proc_name,
            &event_i,
            clauses.coupling.as_str(),
            clauses.context.as_str(),
            clauses.priority,
            if kind == TriggerKind::Native {
                "native"
            } else {
                "led"
            },
        ))?;
        if let Some(spec) = &saga_spec {
            self.inner
                .persist
                .run(&persist_saga_steps_sql(&trigger_i, spec))?;
        }
        // A fresh event starts with watermark 0 (no occurrences raised).
        self.inner.persist.save_watermark(&event_i, 0)?;
        self.inner.tracker.lock().seed_event(&event_i, 0);
        // --- register in the LED and registry.
        {
            let mut led = self.inner.led.lock();
            led.define_primitive(&event_i)?;
            if kind == TriggerKind::Led {
                led.add_rule(
                    RuleSpec::new(&trigger_i, &event_i)
                        .with_coupling(clauses.coupling)
                        .with_priority(clauses.priority),
                )?;
            }
        }
        {
            let mut registry = self.inner.registry.lock();
            registry.add_primitive(info)?;
            registry.add_trigger(TriggerInfo {
                name: trigger_i.clone(),
                event: event_i.clone(),
                proc_name,
                kind,
                coupling: clauses.coupling,
                context: clauses.context,
                priority: clauses.priority,
                saga: saga_spec.map(Arc::new),
            })?;
        }
        let mut resp = AgentResponse::default();
        resp.messages
            .push(format!("primitive event '{event_i}' created"));
        resp.messages.push(format!("trigger '{trigger_i}' created"));
        Ok(resp)
    }

    fn create_composite(
        &self,
        ctx: &SessionCtx,
        trigger: &str,
        event: &str,
        expr_src: &str,
        clauses: &TriggerClauses,
        action: &str,
    ) -> Result<AgentResponse> {
        let trigger_i = naming::internal(ctx, trigger);
        let event_i = naming::internal(ctx, event);
        {
            let registry = self.inner.registry.lock();
            if registry.has_event(&event_i) {
                return Err(AgentError::Naming(format!(
                    "event '{event_i}' already exists"
                )));
            }
            if registry.trigger(&trigger_i).is_some() {
                return Err(AgentError::Naming(format!(
                    "trigger '{trigger_i}' already exists"
                )));
            }
        }
        // Name checking + expansion (§5.3): every referenced event must
        // already be defined; user names expand to internal names.
        let expr = snoop::parse(expr_src)?;
        let mut unknown: Option<String> = None;
        let expr_internal = expr.map_names(&mut |n| match self.resolve_event(&n.key(), ctx) {
            Ok(internal) => snoop::EventName::simple(internal),
            Err(_) => {
                unknown.get_or_insert_with(|| n.key());
                n.clone()
            }
        });
        if let Some(name) = unknown {
            return Err(AgentError::Naming(format!("event '{name}' is not defined")));
        }
        let expr_internal_src = expr_internal.to_string();
        // Register the composite in the LED first — it validates shape.
        self.inner
            .led
            .lock()
            .define_composite(&event_i, &expr_internal, clauses.context)?;
        let result = (|| -> Result<AgentResponse> {
            let saga_spec = SagaSpec::parse_action(action, &|n| naming::internal(ctx, n))?;
            if let Some(spec) = &saga_spec {
                self.validate_saga_procs(spec)?;
            }
            let proc_name = if saga_spec.is_some() {
                String::new()
            } else {
                naming::action_proc(&trigger_i)
            };
            let (rewritten, refs) = if saga_spec.is_some() {
                (String::new(), Vec::new())
            } else {
                codegen::rewrite_context_refs(action, |t| {
                    self.resolve_table(t, ctx)
                        .unwrap_or_else(|_| naming::internal(ctx, t))
                })
            };
            // Context sources: shadows of the transitive primitive
            // constituents matching each referenced (table, kind). The new
            // composite is not in the registry yet, so walk from its
            // references.
            let sources = {
                let registry = self.inner.registry.lock();
                let mut constituents: Vec<&PrimitiveEventInfo> = Vec::new();
                for r in expr_internal.references() {
                    for p in registry.primitive_constituents(&r.key()) {
                        if !constituents.iter().any(|c| c.name == p.name) {
                            constituents.push(p);
                        }
                    }
                }
                let mut sources = Vec::new();
                for r in &refs {
                    for p in &constituents {
                        if !p.table.eq_ignore_ascii_case(&r.table) {
                            continue;
                        }
                        for (shadow, kind) in p.stamped_shadows() {
                            if kind == r.kind {
                                sources.push(codegen::ContextSource {
                                    tmp: match kind {
                                        ShadowKind::Inserted => naming::tmp_inserted(&r.table),
                                        ShadowKind::Deleted => naming::tmp_deleted(&r.table),
                                    },
                                    shadow: shadow.to_string(),
                                });
                            }
                        }
                    }
                }
                sources
            };
            for r in &refs {
                self.ensure_tmp_from_refs(r, ctx)?;
            }
            if saga_spec.is_none() {
                self.inner.gateway.internal(
                    &codegen::led_action_proc(&proc_name, clauses.context, &sources, &rewritten),
                    ctx,
                )?;
            }
            self.inner.persist.run(&codegen::persist_composite_sql(
                &ctx.database,
                &ctx.user,
                &event_i,
                &expr_internal_src,
                clauses.coupling.as_str(),
                clauses.context.as_str(),
                clauses.priority,
            ))?;
            self.inner.persist.run(&codegen::persist_trigger_sql(
                &ctx.database,
                &ctx.user,
                &trigger_i,
                &proc_name,
                &event_i,
                clauses.coupling.as_str(),
                clauses.context.as_str(),
                clauses.priority,
                "led",
            ))?;
            if let Some(spec) = &saga_spec {
                self.inner
                    .persist
                    .run(&persist_saga_steps_sql(&trigger_i, spec))?;
            }
            self.inner.led.lock().add_rule(
                RuleSpec::new(&trigger_i, &event_i)
                    .with_coupling(clauses.coupling)
                    .with_priority(clauses.priority),
            )?;
            let mut registry = self.inner.registry.lock();
            registry.add_composite(CompositeEventInfo {
                name: event_i.clone(),
                expr_src: expr_internal_src.clone(),
                context: clauses.context,
            })?;
            registry.add_trigger(TriggerInfo {
                name: trigger_i.clone(),
                event: event_i.clone(),
                proc_name,
                kind: TriggerKind::Led,
                coupling: clauses.coupling,
                context: clauses.context,
                priority: clauses.priority,
                saga: saga_spec.map(Arc::new),
            })?;
            let mut resp = AgentResponse::default();
            resp.messages.push(format!(
                "composite event '{event_i}' = {expr_internal_src} created"
            ));
            resp.messages.push(format!("trigger '{trigger_i}' created"));
            Ok(resp)
        })();
        if result.is_err() {
            // Roll the LED registration back so a failed command leaves no
            // half-defined event behind.
            let _ = self.inner.led.lock().drop_composite(&event_i);
        }
        result
    }

    fn create_on_existing(
        &self,
        ctx: &SessionCtx,
        trigger: &str,
        event: &str,
        clauses: &TriggerClauses,
        action: &str,
    ) -> Result<AgentResponse> {
        let trigger_i = naming::internal(ctx, trigger);
        let event_i = self.resolve_event(event, ctx)?;
        {
            let registry = self.inner.registry.lock();
            if registry.trigger(&trigger_i).is_some() {
                return Err(AgentError::Naming(format!(
                    "trigger '{trigger_i}' already exists"
                )));
            }
        }
        let saga_spec = SagaSpec::parse_action(action, &|n| naming::internal(ctx, n))?;
        if let Some(spec) = &saga_spec {
            self.validate_saga_procs(spec)?;
        }
        let proc_name = if saga_spec.is_some() {
            String::new()
        } else {
            naming::action_proc(&trigger_i)
        };
        let (rewritten, refs) = if saga_spec.is_some() {
            (String::new(), Vec::new())
        } else {
            codegen::rewrite_context_refs(action, |t| {
                self.resolve_table(t, ctx)
                    .unwrap_or_else(|_| naming::internal(ctx, t))
            })
        };
        let primitive_info = self.inner.registry.lock().primitive(&event_i).cloned();
        let kind = match (&primitive_info, clauses.coupling) {
            (Some(_), CouplingMode::Immediate) if saga_spec.is_none() => TriggerKind::Native,
            _ => TriggerKind::Led,
        };
        match kind {
            TriggerKind::Native => {
                let info = primitive_info.expect("checked above");
                for r in &refs {
                    self.ensure_tmp_table(r, &info, ctx)?;
                }
                self.inner.gateway.internal(
                    &codegen::native_action_proc(&proc_name, &info, &refs, &rewritten),
                    ctx,
                )?;
                // Regenerate the native trigger with the new proc included,
                // keeping the EXECUTE lines in priority order.
                let procs: Vec<String> = {
                    let registry = self.inner.registry.lock();
                    let mut entries: Vec<(i32, String, String)> = registry
                        .native_triggers_on(&event_i)
                        .iter()
                        .map(|t| (t.priority, t.name.clone(), t.proc_name.clone()))
                        .collect();
                    entries.push((clauses.priority, trigger_i.clone(), proc_name.clone()));
                    entries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                    entries.into_iter().map(|(_, _, p)| p).collect()
                };
                self.regenerate_native_trigger(&info, ctx, &procs)?;
            }
            TriggerKind::Led => {
                let sources = {
                    let registry = self.inner.registry.lock();
                    let constituents = registry.primitive_constituents(&event_i);
                    let mut sources = Vec::new();
                    for r in &refs {
                        for p in &constituents {
                            if !p.table.eq_ignore_ascii_case(&r.table) {
                                continue;
                            }
                            for (shadow, skind) in p.stamped_shadows() {
                                if skind == r.kind {
                                    sources.push(codegen::ContextSource {
                                        tmp: match skind {
                                            ShadowKind::Inserted => naming::tmp_inserted(&r.table),
                                            ShadowKind::Deleted => naming::tmp_deleted(&r.table),
                                        },
                                        shadow: shadow.to_string(),
                                    });
                                }
                            }
                        }
                    }
                    sources
                };
                for r in &refs {
                    self.ensure_tmp_from_refs(r, ctx)?;
                }
                let context = {
                    // Rules on a composite inherit the event's context (it
                    // is a property of the detection graph).
                    let registry = self.inner.registry.lock();
                    registry
                        .composite(&event_i)
                        .map(|c| c.context)
                        .unwrap_or(clauses.context)
                };
                if saga_spec.is_none() {
                    self.inner.gateway.internal(
                        &codegen::led_action_proc(&proc_name, context, &sources, &rewritten),
                        ctx,
                    )?;
                }
                self.inner.led.lock().add_rule(
                    RuleSpec::new(&trigger_i, &event_i)
                        .with_coupling(clauses.coupling)
                        .with_priority(clauses.priority),
                )?;
            }
        }
        self.inner.persist.run(&codegen::persist_trigger_sql(
            &ctx.database,
            &ctx.user,
            &trigger_i,
            &proc_name,
            &event_i,
            clauses.coupling.as_str(),
            clauses.context.as_str(),
            clauses.priority,
            if kind == TriggerKind::Native {
                "native"
            } else {
                "led"
            },
        ))?;
        if let Some(spec) = &saga_spec {
            self.inner
                .persist
                .run(&persist_saga_steps_sql(&trigger_i, spec))?;
        }
        self.inner.registry.lock().add_trigger(TriggerInfo {
            name: trigger_i.clone(),
            event: event_i.clone(),
            proc_name,
            kind,
            coupling: clauses.coupling,
            context: clauses.context,
            priority: clauses.priority,
            saga: saga_spec.map(Arc::new),
        })?;
        let mut resp = AgentResponse::default();
        resp.messages.push(format!(
            "trigger '{trigger_i}' created on event '{event_i}'"
        ));
        Ok(resp)
    }

    fn regenerate_native_trigger(
        &self,
        info: &PrimitiveEventInfo,
        ctx: &SessionCtx,
        procs: &[String],
    ) -> Result<()> {
        // Creating a trigger on the same (table, op) slot silently replaces
        // the previous definition — the one Sybase restriction (§2.2) the
        // agent exploits rather than works around.
        self.inner.gateway.internal(
            &codegen::native_trigger_sql(
                info,
                &info.table,
                &ctx.user,
                &self.inner.config.notify_host,
                self.inner.config.notify_port,
                procs,
            ),
            ctx,
        )?;
        Ok(())
    }

    fn ensure_tmp_table(
        &self,
        r: &codegen::ContextRef,
        info: &PrimitiveEventInfo,
        ctx: &SessionCtx,
    ) -> Result<()> {
        let (tmp, shadow) = match r.kind {
            ShadowKind::Inserted => (naming::tmp_inserted(&r.table), &info.shadow_inserted),
            ShadowKind::Deleted => (naming::tmp_deleted(&r.table), &info.shadow_deleted),
        };
        if !self.has_server_table(&tmp) {
            self.inner
                .gateway
                .internal(&codegen::tmp_table_ddl(&tmp, shadow), ctx)?;
        }
        Ok(())
    }

    /// Ensure a context tmp table exists, cloning schema from any shadow of
    /// a primitive event on the referenced table, or from the table itself.
    fn ensure_tmp_from_refs(&self, r: &codegen::ContextRef, ctx: &SessionCtx) -> Result<()> {
        let tmp = match r.kind {
            ShadowKind::Inserted => naming::tmp_inserted(&r.table),
            ShadowKind::Deleted => naming::tmp_deleted(&r.table),
        };
        if self.has_server_table(&tmp) {
            return Ok(());
        }
        let shadow = {
            let registry = self.inner.registry.lock();
            let mut found = None;
            for op in [TriggerOp::Insert, TriggerOp::Update, TriggerOp::Delete] {
                if let Some(p) = registry.primitive_for_slot(&r.table, op) {
                    found = Some(match r.kind {
                        ShadowKind::Inserted => p.shadow_inserted.clone(),
                        ShadowKind::Deleted => p.shadow_deleted.clone(),
                    });
                    break;
                }
            }
            found
        };
        match shadow {
            Some(shadow) => {
                self.inner
                    .gateway
                    .internal(&codegen::tmp_table_ddl(&tmp, &shadow), ctx)?;
            }
            None => {
                // No event on the table yet: clone the table and add vNo.
                self.inner.gateway.internal(
                    &format!(
                        "select * into {tmp} from {t} where 1=2\n\
                         alter table {tmp} add vNo int null",
                        t = r.table
                    ),
                    ctx,
                )?;
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- ECA drop

    fn drop_trigger(&self, ctx: &SessionCtx, trigger: &str) -> Result<AgentResponse> {
        let trigger_i = naming::internal(ctx, trigger);
        let info = {
            let registry = self.inner.registry.lock();
            registry
                .trigger(&trigger_i)
                .or_else(|| registry.trigger(trigger))
                .cloned()
        };
        let info = match info {
            Some(i) => i,
            None => {
                // Not agent-managed: forward to the server (it may be a
                // plain native trigger).
                let server = self
                    .inner
                    .gateway
                    .forward(&format!("drop trigger {trigger}"), ctx)?;
                return Ok(AgentResponse {
                    server,
                    ..Default::default()
                });
            }
        };
        match info.kind {
            TriggerKind::Led => {
                self.inner.led.lock().drop_rule(&info.name)?;
            }
            TriggerKind::Native => {
                let primitive = self
                    .inner
                    .registry
                    .lock()
                    .primitive(&info.event)
                    .cloned()
                    .ok_or_else(|| {
                        AgentError::Naming(format!("event '{}' missing for trigger", info.event))
                    })?;
                let procs: Vec<String> = {
                    let registry = self.inner.registry.lock();
                    registry
                        .native_triggers_on(&info.event)
                        .iter()
                        .filter(|t| t.name != info.name)
                        .map(|t| t.proc_name.clone())
                        .collect()
                };
                self.regenerate_native_trigger(&primitive, ctx, &procs)?;
            }
        }
        if info.saga.is_none() {
            // Saga triggers own no generated action procedure; their step
            // procedures belong to the user and stay.
            self.inner
                .gateway
                .internal(&format!("drop procedure {}", info.proc_name), ctx)?;
        } else {
            self.inner.persist.delete_saga_steps(&info.name)?;
        }
        self.inner.persist.delete_trigger_row(&info.name)?;
        self.inner.registry.lock().remove_trigger(&info.name);
        let mut resp = AgentResponse::default();
        resp.messages
            .push(format!("trigger '{}' dropped", info.name));
        Ok(resp)
    }

    fn drop_event(&self, ctx: &SessionCtx, event: &str) -> Result<AgentResponse> {
        let event_i = self.resolve_event(event, ctx)?;
        {
            let registry = self.inner.registry.lock();
            let triggers = registry.triggers_on(&event_i);
            if !triggers.is_empty() {
                return Err(AgentError::Naming(format!(
                    "event '{event_i}' still has {} trigger(s)",
                    triggers.len()
                )));
            }
            let deps = registry.dependents_of(&event_i);
            if !deps.is_empty() {
                return Err(AgentError::Naming(format!(
                    "event '{event_i}' is referenced by {} composite event(s)",
                    deps.len()
                )));
            }
        }
        self.inner.led.lock().drop_composite(&event_i)?;
        let mut registry = self.inner.registry.lock();
        if let Some(info) = registry.remove_primitive(&event_i) {
            self.inner.gateway.internal(
                &format!(
                    "drop trigger {}\ndrop table {}\ndrop table {}\ndrop table {}",
                    naming::native_trigger(&info.name),
                    info.shadow_inserted,
                    info.shadow_deleted,
                    info.version_table,
                ),
                ctx,
            )?;
            self.inner.persist.delete_primitive_row(&event_i)?;
            self.inner.persist.delete_watermark_row(&event_i)?;
            self.inner.tracker.lock().forget_event(&event_i);
        } else if registry.remove_composite(&event_i).is_some() {
            self.inner.persist.delete_composite_row(&event_i)?;
        }
        let mut resp = AgentResponse::default();
        resp.messages.push(format!("event '{event_i}' dropped"));
        Ok(resp)
    }
}

/// Strict parse of a persisted coupling mode — a corrupted system-table
/// row must fail recovery, not silently become the default mode.
fn parse_recovered_coupling(raw: &str, trigger: &str) -> Result<CouplingMode> {
    raw.trim().parse().map_err(|_| {
        AgentError::Recovery(format!(
            "corrupted SysEcaTrigger row for '{trigger}': bad coupling '{raw}'"
        ))
    })
}

/// Strict parse of a persisted parameter context (see above).
fn parse_recovered_context(raw: &str, table: &str, name: &str) -> Result<ParameterContext> {
    raw.trim().parse().map_err(|_| {
        AgentError::Recovery(format!(
            "corrupted {table} row for '{name}': bad context '{raw}'"
        ))
    })
}

/// A client connection through the agent.
#[derive(Clone)]
pub struct EcaClient {
    agent: EcaAgent,
    ctx: SessionCtx,
}

impl EcaClient {
    /// Execute a batch: ECA commands are interpreted by the agent, plain
    /// SQL passes through and any resulting event detections run their
    /// actions before this returns (IMMEDIATE semantics).
    pub fn execute(&self, sql: &str) -> Result<AgentResponse> {
        self.agent.execute(sql, &self.ctx)
    }

    pub fn agent(&self) -> &EcaAgent {
        &self.agent
    }

    pub fn ctx(&self) -> &SessionCtx {
        &self.ctx
    }
}

impl EcaAgent {
    /// Execute a batch on behalf of `ctx` — the single entry point behind
    /// [`EcaClient::execute`] and [`crate::service::ActiveService`]: ECA
    /// commands are interpreted by the agent, plain SQL passes through and
    /// any resulting event detections run their actions before this
    /// returns (IMMEDIATE semantics).
    pub fn execute(&self, sql: &str, ctx: &SessionCtx) -> Result<AgentResponse> {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Err(AgentError::Unavailable(
                "agent is draining; no new statements accepted".into(),
            ));
        }
        match classify(sql) {
            Classification::Eca(_) => self.handle_eca(sql, ctx),
            Classification::PassThrough => {
                let server = self.inner.gateway.forward(sql, ctx)?;
                let mut resp = AgentResponse {
                    server,
                    ..Default::default()
                };
                self.pump(&mut resp)?;
                if contains_commit(sql) {
                    let deferred = self.flush_deferred()?;
                    resp.actions.extend(deferred.actions);
                }
                Ok(resp)
            }
        }
    }

    /// Execute a batch **exactly once** under the idempotency key
    /// `token#seq` — the serve layer's resilient-session entry point
    /// (DESIGN.md §16). If the key was already journaled the batch is NOT
    /// re-applied and the recorded response (if any) comes back as
    /// [`ExecOutcome::Replayed`].
    ///
    /// Atomicity: for pass-through SQL the journal insert is *prepended*
    /// to the client batch, so journal row and user effects commit in one
    /// WAL record — after any crash, either both exist or neither does.
    /// The unique index on `idemKey` turns a concurrent or re-submitted
    /// duplicate into an engine error that is mapped to a replay here.
    /// ECA commands journal *after* they apply (they mutate agent
    /// registries, not just engine tables); a crash between the two can
    /// surface an "already exists" error on re-submission, which is
    /// state-consistent — documented in DESIGN.md §16.
    pub fn execute_once(
        &self,
        sql: &str,
        ctx: &SessionCtx,
        token: &str,
        seq: u64,
    ) -> Result<ExecOutcome> {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Err(AgentError::Unavailable(
                "agent is draining; no new statements accepted".into(),
            ));
        }
        let idem = format!("{token}#{seq}");
        if let Some(recorded) = self.inner.persist.wire_journal_lookup(&idem)? {
            self.inner.wire_replays.fetch_add(1, Ordering::Relaxed);
            return Ok(ExecOutcome::Replayed(recorded));
        }
        let journal_insert = format!(
            "insert SysWireJournal values ({}, {}, {}, NULL)",
            codegen::sql_quote(&idem),
            codegen::sql_quote(token),
            seq as i64,
        );
        // Classify the ORIGINAL text: the prepended insert must not turn
        // an ECA command into pass-through SQL.
        match classify(sql) {
            Classification::Eca(_) => {
                let resp = self.handle_eca(sql, ctx)?;
                self.inner.persist.run(&journal_insert)?;
                self.inner.wire_journaled.fetch_add(1, Ordering::Relaxed);
                Ok(ExecOutcome::Fresh(resp))
            }
            Classification::PassThrough => {
                let batch = format!("{journal_insert}\n{sql}");
                let server = match self.inner.gateway.forward(&batch, ctx) {
                    Ok(server) => server,
                    // The journal insert runs first, so a duplicate-key
                    // violation on *our* index means a racing submission
                    // of the same seq won — nothing else was applied.
                    Err(e) if e.to_string().contains("ux_SysWireJournal") => {
                        self.inner.wire_replays.fetch_add(1, Ordering::Relaxed);
                        let recorded = self.inner.persist.wire_journal_lookup(&idem)?.flatten();
                        return Ok(ExecOutcome::Replayed(recorded));
                    }
                    Err(e) => return Err(e),
                };
                self.inner.wire_journaled.fetch_add(1, Ordering::Relaxed);
                let mut resp = AgentResponse {
                    server,
                    ..Default::default()
                };
                // Drop the journal insert's own result entry so the
                // response is indistinguishable from an unstamped execute.
                if !resp.server.results.is_empty() {
                    resp.server.results.remove(0);
                }
                self.pump(&mut resp)?;
                if contains_commit(sql) {
                    let deferred = self.flush_deferred()?;
                    resp.actions.extend(deferred.actions);
                }
                Ok(ExecOutcome::Fresh(resp))
            }
        }
    }

    /// Backfill the rendered response for a journaled request so a
    /// replay after process restart can answer verbatim.
    pub fn record_wire_response(&self, token: &str, seq: u64, line: &str) -> Result<()> {
        self.inner
            .persist
            .wire_journal_record(&format!("{token}#{seq}"), line)
    }

    /// Forget journal rows for `token` below `below_seq` (acknowledged
    /// prefix), or the whole session with `u64::MAX`.
    pub fn forget_wire_session(&self, token: &str, below_seq: u64) -> Result<()> {
        let below = i64::try_from(below_seq).unwrap_or(i64::MAX);
        self.inner.persist.wire_journal_prune(token, below)
    }
}

/// The transparency claim made concrete: an [`EcaClient`] is a drop-in
/// [`relsql::SqlEndpoint`], so any code written against the plain server
/// works unchanged through the agent (and silently gains active
/// capability). Only the direct server results are surfaced; rule-action
/// outputs are available through [`EcaClient::execute`].
impl relsql::SqlEndpoint for EcaClient {
    fn execute(&self, sql: &str, session: &SessionCtx) -> relsql::Result<BatchResult> {
        let client = EcaClient {
            agent: self.agent.clone(),
            ctx: session.clone(),
        };
        client
            .execute(sql)
            .map(|resp| resp.server)
            .map_err(|e| match e {
                AgentError::Sql(sql_err) => sql_err,
                other => relsql::Error::exec(other.to_string()),
            })
    }
}
