//! `eca-shell` — an isql-style interactive client for the Virtual Active
//! SQL Server.
//!
//! ```text
//! cargo run -p eca-core --bin eca_shell
//! ```
//!
//! Every line is a batch sent through the [`ActiveService`] surface — the
//! same API the `eca-serve` TCP server and the test suite drive: plain SQL
//! passes through, the extended `CREATE TRIGGER ... EVENT ...` syntax
//! creates ECA rules, and rule actions print as they fire. Meta commands:
//!
//! - `\events`, `\triggers` — agent introspection
//! - `\describe <event>` — operator tree of an event
//! - `\advance <seconds>` — advance virtual time (fires P/P*/PLUS rules)
//! - `\stats` — agent counters (including reliability repairs and, on a
//!   durable server, WAL/recovery counters)
//! - `\checkpoint` — snapshot the engine and truncate the WAL (durable only)
//! - `\drain` / `\resume` — quiesce the service / accept statements again
//! - `\deadletters` — inspect the action dead-letter queue
//! - `\requeue` — re-execute everything in the dead-letter queue
//! - `\sagas` — inspect the saga journal (step/compensation history)
//! - `\quit`
//!
//! Demo state (a `stock` table and the paper's Example 1/2 rules) is
//! preloaded with `--demo`. With `--data-dir PATH` the shell opens a
//! durable server there: rules and data survive restarts.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use eca_core::{ActiveService, AgentResponse, EcaAgent};
use relsql::{BatchResult, SessionCtx, SqlServer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let server = match &data_dir {
        Some(dir) => match SqlServer::open(dir, relsql::DurabilityConfig::default()) {
            Ok(server) => {
                let s = server.server_stats();
                println!(
                    "(recovered from {dir}: {} WAL record(s) replayed{})",
                    s.wal_records_replayed,
                    if s.wal_torn_tail > 0 {
                        ", torn tail trimmed"
                    } else {
                        ""
                    }
                );
                server
            }
            Err(e) => {
                eprintln!("cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => SqlServer::new(),
    };
    let agent = EcaAgent::with_defaults(Arc::clone(&server)).expect("agent start");
    // The shell drives the same service surface as the TCP server.
    let service: Arc<dyn ActiveService> = Arc::new(agent.clone());
    let ctx = SessionCtx::new("sentineldb", "sharma");

    if std::env::args().any(|a| a == "--demo") {
        preload_demo(service.as_ref(), &ctx);
        println!("(demo state loaded: table `stock`, events addStk/delStk, composite addDel)");
    }

    println!("eca-shell — type SQL or ECA commands; \\quit to exit, \\help for meta commands");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("eca> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('\\') {
            if !handle_meta(meta, &agent, service.as_ref()) {
                break;
            }
            continue;
        }
        match service.execute(line, &ctx) {
            Ok(resp) => render_response(&resp),
            Err(e) => eprintln!("error [{}]: {e}", e.code()),
        }
    }
}

fn preload_demo(service: &dyn ActiveService, ctx: &SessionCtx) {
    service
        .execute("create table stock (symbol varchar(10), price float)", ctx)
        .expect("demo preload");
    for ddl in [
        "create trigger t_addStk on stock for insert event addStk \
         as print 'trigger t_addStk on primitive event addStk occurs'",
        "create trigger t_delStk on stock for delete event delStk \
         as print 'trigger t_delStk on primitive event delStk occurs'",
        "create trigger t_and event addDel = delStk ^ addStk RECENT \
         as print 'composite addDel detected' select symbol, price from stock.inserted",
    ] {
        service.define_trigger(ddl, ctx).expect("demo preload");
    }
}

/// Returns false when the shell should exit.
fn handle_meta(meta: &str, agent: &EcaAgent, service: &dyn ActiveService) -> bool {
    let mut parts = meta.split_whitespace();
    match parts.next().unwrap_or("") {
        "quit" | "q" | "exit" => return false,
        "help" => {
            println!(
                "\\events  \\triggers  \\describe <event>  \\advance <seconds>  \\stats  \
                 \\checkpoint  \\drain  \\resume  \\deadletters  \\requeue  \\sagas  \\quit"
            );
        }
        "events" => {
            for e in agent.event_names() {
                println!("  {e}");
            }
        }
        "triggers" => {
            for t in agent.triggers() {
                println!(
                    "  {} on {} [{} {} prio {} via {:?}]",
                    t.name, t.event, t.coupling, t.context, t.priority, t.kind
                );
            }
        }
        "describe" => match parts.next() {
            Some(ev) => {
                // Try the name as given, then expanded.
                let expanded = format!("sentineldb.sharma.{ev}");
                match agent
                    .describe_event(ev)
                    .or_else(|| agent.describe_event(&expanded))
                {
                    Some(tree) => println!("  {tree}"),
                    None => println!("  unknown event '{ev}'"),
                }
            }
            None => println!("usage: \\describe <event>"),
        },
        "advance" => {
            let secs: i64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            match agent.advance_time(secs * 1_000_000) {
                Ok(resp) => {
                    println!(
                        "  advanced {secs}s; {} rule action(s) fired",
                        resp.actions.len()
                    );
                    render_response(&resp);
                }
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "stats" => {
            let s = service.stats();
            println!(
                "  eca commands: {}, notifications: {} (malformed {}), actions: {}",
                s.eca_commands, s.notifications, s.malformed_notifications, s.actions_executed
            );
            println!(
                "  reliability: {} drops detected, {} gaps repaired, {} duplicates suppressed",
                s.drops_detected, s.gaps_repaired, s.duplicates_suppressed
            );
            println!(
                "  actions: {} retries, {} dead-lettered",
                s.retries, s.dead_lettered
            );
            println!(
                "  sagas: {} started, {} committed, {} compensated, {} resumed \
                 ({} step(s), {} compensation(s) run)",
                s.sagas_started,
                s.sagas_committed,
                s.sagas_compensated,
                s.sagas_resumed,
                s.saga_steps_executed,
                s.saga_compensations
            );
            if let Some(c) = agent.channel_fault_counts() {
                println!(
                    "  chaos sink: {} dropped, {} duplicated, {} reordered, {} delayed, \
                     {} forwarded",
                    c.dropped, c.duplicated, c.reordered, c.delayed, c.forwarded
                );
            }
            let g = agent.gateway_stats();
            println!(
                "  gateway: {} forwarded, {} internal",
                g.forwarded, g.internal
            );
            let sv = agent.server().server_stats();
            println!(
                "  server: {} session(s) opened, {} statement(s) executed",
                sv.sessions_opened, sv.statements
            );
            println!(
                "  scheduler: {} snapshot read(s) (epoch {}), {} parallel, {} exclusive, \
                 {} lock wait(s)",
                sv.snapshot_reads,
                sv.snapshot_epoch,
                sv.batches_parallel,
                sv.batches_exclusive,
                sv.lock_waits
            );
            println!(
                "  executor: {} compiled, {} interpreted ({} expr / {} scope / {} disabled), \
                 {} vectorized batch(es) over {} row(s)",
                sv.exec_compiled,
                sv.exec_interpreted,
                sv.exec_fallback_expr,
                sv.exec_fallback_scope,
                sv.exec_fallback_disabled,
                sv.batches_vectorized,
                sv.rows_batched
            );
            println!(
                "  plans: {} parse hit(s) / {} miss(es), {} lowered hit(s) / {} miss(es)",
                sv.plan_cache_hits,
                sv.plan_cache_misses,
                sv.plan_lowered_hits,
                sv.plan_lowered_misses
            );
            if agent.server().is_durable() {
                println!(
                    "  wal: {} record(s) / {} byte(s) appended, {} fsync(s), \
                     {} group commit(s), {} checkpoint(s)",
                    s.wal_records,
                    s.wal_bytes,
                    s.wal_fsyncs,
                    s.wal_group_commits,
                    s.wal_checkpoints
                );
                println!(
                    "  recovery: {} record(s) replayed at open, torn tail: {}{}",
                    s.wal_records_replayed,
                    if s.wal_torn_tail > 0 { "yes" } else { "no" },
                    if agent.server().is_read_only() {
                        " — READ-ONLY after a storage failure"
                    } else {
                        ""
                    }
                );
            }
            println!("  led state size: {}", agent.led_state_size());
            if service.is_draining() {
                println!("  service: DRAINING (statements rejected; \\resume to lift)");
            }
        }
        "checkpoint" => match agent.server().checkpoint() {
            Ok(()) => println!("  checkpoint written; WAL truncated"),
            Err(e) => eprintln!("error: {e}"),
        },
        "drain" => {
            let report = service.drain(Duration::from_secs(2));
            println!(
                "  drained: quiescent={}, {} detached action(s) joined, {} outcome(s) in mailbox",
                report.quiescent, report.detached_joined, report.async_outcomes
            );
            println!("  statements are now rejected; \\resume to accept again");
        }
        "resume" => {
            service.resume();
            println!("  service resumed");
        }
        "deadletters" => {
            let letters = agent.dead_letters();
            if letters.is_empty() {
                println!("  dead-letter queue is empty");
            }
            for (i, dl) in letters.iter().enumerate() {
                println!(
                    "  [{i}] rule {} on {} ({:?}, {} attempt(s)): {}",
                    dl.request.rule, dl.request.event, dl.coupling, dl.attempts, dl.error
                );
            }
        }
        "sagas" => match agent.saga_journal() {
            Ok(rows) => {
                if rows.is_empty() {
                    println!("  saga journal is empty");
                }
                for r in &rows {
                    println!(
                        "  {} [{}] {} step {} -> {} ({})",
                        r.key, r.phase, r.rule, r.step, r.state, r.idem
                    );
                }
            }
            Err(e) => eprintln!("error: {e}"),
        },
        "requeue" => {
            let outcomes = agent.requeue_dead_letters();
            let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
            println!(
                "  requeued {} dead letter(s): {} succeeded, {failed} failed",
                outcomes.len(),
                outcomes.len() - failed
            );
        }
        other => println!("unknown meta command '\\{other}' — try \\help"),
    }
    true
}

fn render_response(resp: &AgentResponse) {
    for m in &resp.messages {
        println!("-- {m}");
    }
    render_batch(&resp.server);
    for action in &resp.actions {
        println!("== rule {} fired on {} ==", action.rule, action.event);
        match &action.result {
            Ok(batch) => render_batch(batch),
            Err(e) => eprintln!("   action error: {e}"),
        }
    }
}

fn render_batch(batch: &BatchResult) {
    for m in &batch.messages {
        println!("{m}");
    }
    for result in &batch.results {
        if result.columns.is_empty() {
            continue;
        }
        render_table(&result.columns, &result.rows);
    }
}

fn render_table(columns: &[std::sync::Arc<str>], rows: &[Vec<relsql::Value>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect();
    println!(" {}", line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!(" {}", sep.join("-+-"));
    for row in &rendered {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!(" {}", line.join(" | "));
    }
    println!("({} row(s))", rows.len());
}
