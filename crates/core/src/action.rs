//! The Action Handler (§5.5, Figure 16).
//!
//! The Rust analogue of the paper's `SybaseAction`/`NotiStr` machinery:
//! when the LED fires a rule, an [`ActionRequest`] (the `NotiStr` fields —
//! stored procedure, event name, context) plus the occurrence is executed
//! against the SQL server: first the `sysContext` rows are refreshed from
//! the occurrence's parameter list, then the trigger's stored procedure
//! runs. DETACHED actions get their own thread, exactly as the paper
//! spawns a thread per `SybaseAction` call.

use std::sync::Arc;
use std::thread::JoinHandle;

use led::{CouplingMode, Firing, Occurrence, ParameterContext};
use parking_lot::Mutex;
use relsql::{BatchResult, SessionCtx};

use crate::context_proc::sys_context_sql;
use crate::error::Result;
use crate::gateway::Gateway;

/// The paper's `NotiStr`: everything needed to invoke one SQL action.
#[derive(Debug, Clone)]
pub struct ActionRequest {
    /// `store_proc` — stored procedure implementing the action.
    pub proc_name: String,
    /// `eventName` — the detected event.
    pub event: String,
    /// `context` — parameter context used for the `sysContext` rows.
    pub context: ParameterContext,
    /// The triggering rule (for reporting).
    pub rule: String,
    pub occurrence: Occurrence,
}

impl ActionRequest {
    pub fn from_firing(firing: &Firing, proc_name: impl Into<String>) -> Self {
        ActionRequest {
            proc_name: proc_name.into(),
            event: firing.event.clone(),
            context: firing.context,
            rule: firing.rule.clone(),
            occurrence: firing.occurrence.clone(),
        }
    }
}

/// The result of one executed action.
#[derive(Debug, Clone)]
pub struct ActionOutcome {
    pub rule: String,
    pub event: String,
    pub coupling: CouplingMode,
    pub result: std::result::Result<BatchResult, String>,
}

/// Executes actions; detached ones on their own threads.
pub struct ActionHandler {
    gateway: Arc<Gateway>,
    /// Identity the action SQL runs under.
    session: SessionCtx,
    detached: Mutex<Vec<JoinHandle<()>>>,
    detached_outcomes: Arc<Mutex<Vec<ActionOutcome>>>,
}

impl ActionHandler {
    pub fn new(gateway: Arc<Gateway>) -> Self {
        ActionHandler {
            gateway,
            session: SessionCtx::new("master", "eca_agent"),
            detached: Mutex::new(Vec::new()),
            detached_outcomes: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Execute an action synchronously (IMMEDIATE and flushed DEFERRED
    /// rules) and return the outcome.
    pub fn execute(&self, request: &ActionRequest, coupling: CouplingMode) -> ActionOutcome {
        let result = self.run(request);
        ActionOutcome {
            rule: request.rule.clone(),
            event: request.event.clone(),
            coupling,
            result: result.map_err(|e| e.to_string()),
        }
    }

    /// Execute an action on its own thread (DETACHED coupling). The outcome
    /// lands in the detached-outcome mailbox.
    pub fn execute_detached(self: &Arc<Self>, request: ActionRequest) {
        let handler = Arc::clone(self);
        let outcomes = Arc::clone(&self.detached_outcomes);
        let handle = std::thread::spawn(move || {
            let outcome = handler.execute(&request, CouplingMode::Detached);
            outcomes.lock().push(outcome);
        });
        self.detached.lock().push(handle);
    }

    /// Join all outstanding detached actions and return their outcomes.
    pub fn wait_detached(&self) -> Vec<ActionOutcome> {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.detached.lock());
        for h in handles {
            let _ = h.join();
        }
        std::mem::take(&mut *self.detached_outcomes.lock())
    }

    /// Number of detached actions not yet joined.
    pub fn detached_pending(&self) -> usize {
        self.detached.lock().len()
    }

    fn run(&self, request: &ActionRequest) -> Result<BatchResult> {
        // Step 3 of §5.6: refresh sysContext from the LED's parameter list.
        let ctx_sql = sys_context_sql(&request.occurrence, request.context);
        if !ctx_sql.is_empty() {
            self.gateway.internal(&ctx_sql, &self.session)?;
        }
        // Step 4: run the stored procedure (context join + action).
        self.gateway
            .internal(&format!("execute {}", request.proc_name), &self.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use led::Param;
    use relsql::{SqlEndpoint, SqlServer};

    fn setup() -> (Arc<Gateway>, SessionCtx) {
        let server = SqlServer::new();
        let ctx = SessionCtx::new("db", "u");
        server
            .execute(
                "create table sysContext (tableName varchar(120) not null, \
                 context varchar(12) not null, vNo int not null)",
                &ctx,
            )
            .unwrap();
        (Arc::new(Gateway::new(server)), ctx)
    }

    fn request(proc_name: &str, occ: Occurrence) -> ActionRequest {
        ActionRequest {
            proc_name: proc_name.into(),
            event: "e".into(),
            context: ParameterContext::Recent,
            rule: "r".into(),
            occurrence: occ,
        }
    }

    #[test]
    fn execute_refreshes_syscontext_then_runs_proc() {
        let (gw, ctx) = setup();
        gw.internal("create table log (msg varchar(50))", &ctx).unwrap();
        gw.internal(
            "create procedure p as insert log select tableName from sysContext",
            &ctx,
        )
        .unwrap();
        let handler = ActionHandler::new(Arc::clone(&gw));
        let occ = Occurrence::point("e", 1, vec![Param::db("e", "shadow1", 5, 1)]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok());
        let r = gw.internal("select msg from log", &ctx).unwrap();
        assert_eq!(
            r.scalar(),
            Some(&relsql::Value::Str("shadow1".into()))
        );
    }

    #[test]
    fn failed_proc_reports_error_outcome() {
        let (gw, _ctx) = setup();
        let handler = ActionHandler::new(gw);
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("nosuch_proc", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_err());
        assert!(outcome.result.unwrap_err().contains("nosuch_proc"));
    }

    #[test]
    fn detached_actions_run_on_threads() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = Arc::new(ActionHandler::new(Arc::clone(&gw)));
        for _ in 0..4 {
            let occ = Occurrence::point("e", 1, vec![]);
            handler.execute_detached(request("p", occ));
        }
        let outcomes = handler.wait_detached();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        assert_eq!(handler.detached_pending(), 0);
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(4)));
    }
}
