//! The Action Handler (§5.5, Figure 16).
//!
//! The Rust analogue of the paper's `SybaseAction`/`NotiStr` machinery:
//! when the LED fires a rule, an [`ActionRequest`] (the `NotiStr` fields —
//! stored procedure, event name, context) plus the occurrence is executed
//! against the SQL server: first the `sysContext` rows are refreshed from
//! the occurrence's parameter list, then the trigger's stored procedure
//! runs. DETACHED actions get their own thread, exactly as the paper
//! spawns a thread per `SybaseAction` call.
//!
//! On top of the paper's fire-and-forget execution this handler layers a
//! reliability pipeline: transiently failing actions are retried under a
//! configurable [`RetryPolicy`] (exponential backoff with deterministic
//! jitter), panicking action paths are caught and reported as failed
//! outcomes instead of unwinding a thread away, and actions that exhaust
//! their attempts land in a [`DeadLetter`] queue that can be inspected and
//! requeued.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use led::{CouplingMode, Firing, Occurrence, ParameterContext};
use parking_lot::Mutex;
use relsql::{BatchResult, SessionCtx};

use crate::context_proc::sys_context_sql;
use crate::error::Result;
use crate::gateway::Gateway;

/// The paper's `NotiStr`: everything needed to invoke one SQL action.
#[derive(Debug, Clone)]
pub struct ActionRequest {
    /// `store_proc` — stored procedure implementing the action.
    pub proc_name: String,
    /// `eventName` — the detected event.
    pub event: String,
    /// `context` — parameter context used for the `sysContext` rows.
    pub context: ParameterContext,
    /// The triggering rule (for reporting).
    pub rule: String,
    pub occurrence: Occurrence,
}

impl ActionRequest {
    pub fn from_firing(firing: &Firing, proc_name: impl Into<String>) -> Self {
        ActionRequest {
            proc_name: proc_name.into(),
            event: firing.event.clone(),
            context: firing.context,
            rule: firing.rule.clone(),
            occurrence: firing.occurrence.clone(),
        }
    }
}

/// The result of one executed action.
#[derive(Debug, Clone)]
pub struct ActionOutcome {
    pub rule: String,
    pub event: String,
    pub coupling: CouplingMode,
    /// How many attempts were made (1 = succeeded or gave up first try).
    pub attempts: u32,
    pub result: std::result::Result<BatchResult, String>,
}

/// Retry behaviour for failing actions.
///
/// The default makes exactly one attempt and never sleeps — the paper's
/// original fire-once semantics. Backoff grows exponentially from
/// `base_backoff`, is capped at `max_backoff`, and carries a deterministic
/// jitter derived from the rule name and attempt number (so concurrent
/// retries de-synchronize without nondeterminism in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    pub fn retries(max_attempts: u32, base_backoff: Duration, max_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            max_backoff,
        }
    }

    /// The delay to sleep after `failed_attempt` (1-based) before the next
    /// try: `min(base * 2^(n-1), max)` plus up to 25% deterministic jitter.
    pub fn backoff_after(&self, rule: &str, failed_attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = failed_attempt.saturating_sub(1).min(16);
        let raw = self.base_backoff.saturating_mul(1u32 << exp);
        let capped = raw.min(self.max_backoff.max(self.base_backoff));
        let span = capped.as_nanos() as u64 / 4;
        let jitter = if span == 0 {
            0
        } else {
            let mut h = DefaultHasher::new();
            rule.hash(&mut h);
            failed_attempt.hash(&mut h);
            h.finish() % (span + 1)
        };
        capped + Duration::from_nanos(jitter)
    }
}

/// An action that exhausted its retry budget (or panicked out of every
/// attempt), parked for inspection and manual requeue.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    pub request: ActionRequest,
    pub coupling: CouplingMode,
    pub error: String,
    pub attempts: u32,
}

/// Test/chaos hook: invoked before each attempt with the request and the
/// 1-based attempt number; returning `Some(err)` fails that attempt,
/// panicking simulates a crashing action path.
pub type FaultInjector = Arc<dyn Fn(&ActionRequest, u32) -> Option<String> + Send + Sync>;

struct DetachedHandle {
    handle: JoinHandle<()>,
    rule: String,
    event: String,
}

/// Executes actions; detached ones on their own threads.
pub struct ActionHandler {
    gateway: Arc<Gateway>,
    /// Identity the action SQL runs under.
    session: SessionCtx,
    policy: RetryPolicy,
    injector: Mutex<Option<FaultInjector>>,
    detached: Mutex<Vec<DetachedHandle>>,
    detached_outcomes: Arc<Mutex<Vec<ActionOutcome>>>,
    dead_letters: Mutex<Vec<DeadLetter>>,
    retries: AtomicU64,
    dead_lettered: AtomicU64,
}

impl ActionHandler {
    pub fn new(gateway: Arc<Gateway>) -> Self {
        Self::with_policy(gateway, RetryPolicy::default())
    }

    pub fn with_policy(gateway: Arc<Gateway>, policy: RetryPolicy) -> Self {
        ActionHandler {
            gateway,
            session: SessionCtx::new("master", "eca_agent"),
            policy,
            injector: Mutex::new(None),
            detached: Mutex::new(Vec::new()),
            detached_outcomes: Arc::new(Mutex::new(Vec::new())),
            dead_letters: Mutex::new(Vec::new()),
            retries: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
        }
    }

    /// Install (or clear) the per-attempt fault injector.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        *self.injector.lock() = injector;
    }

    /// Execute an action synchronously (IMMEDIATE and flushed DEFERRED
    /// rules) and return the outcome, retrying per the policy. An outcome
    /// that is still failed after the last attempt is also dead-lettered.
    pub fn execute(&self, request: &ActionRequest, coupling: CouplingMode) -> ActionOutcome {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        let mut last_err;
        loop {
            attempt += 1;
            match self.attempt(request, attempt) {
                Ok(batch) => {
                    return ActionOutcome {
                        rule: request.rule.clone(),
                        event: request.event.clone(),
                        coupling,
                        attempts: attempt,
                        result: Ok(batch),
                    }
                }
                Err(e) => last_err = e,
            }
            if attempt >= max_attempts {
                break;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            let delay = self.policy.backoff_after(&request.rule, attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        self.dead_lettered.fetch_add(1, Ordering::Relaxed);
        self.dead_letters.lock().push(DeadLetter {
            request: request.clone(),
            coupling,
            error: last_err.clone(),
            attempts: attempt,
        });
        ActionOutcome {
            rule: request.rule.clone(),
            event: request.event.clone(),
            coupling,
            attempts: attempt,
            result: Err(last_err),
        }
    }

    /// One attempt: fault injection, then the real SQL, with panics caught
    /// and converted into ordinary errors.
    fn attempt(
        &self,
        request: &ActionRequest,
        attempt: u32,
    ) -> std::result::Result<BatchResult, String> {
        let injector = self.injector.lock().clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inject) = &injector {
                if let Some(err) = inject(request, attempt) {
                    return Err(err);
                }
            }
            self.run(request).map_err(|e| e.to_string())
        }));
        match outcome {
            Ok(r) => r,
            Err(panic) => Err(panic_message(panic)),
        }
    }

    /// Execute an action on its own thread (DETACHED coupling). The outcome
    /// lands in the detached-outcome mailbox.
    pub fn execute_detached(self: &Arc<Self>, request: ActionRequest) {
        let handler = Arc::clone(self);
        let outcomes = Arc::clone(&self.detached_outcomes);
        let rule = request.rule.clone();
        let event = request.event.clone();
        let handle = std::thread::spawn(move || {
            let outcome = handler.execute(&request, CouplingMode::Detached);
            outcomes.lock().push(outcome);
        });
        self.detached.lock().push(DetachedHandle {
            handle,
            rule,
            event,
        });
    }

    /// Join all outstanding detached actions and return their outcomes. A
    /// thread that died without reporting (should be unreachable — attempts
    /// catch panics — but threads can still be killed) yields a failed
    /// outcome rather than vanishing.
    pub fn wait_detached(&self) -> Vec<ActionOutcome> {
        let handles: Vec<DetachedHandle> = std::mem::take(&mut *self.detached.lock());
        for h in handles {
            if h.handle.join().is_err() {
                self.detached_outcomes.lock().push(ActionOutcome {
                    rule: h.rule,
                    event: h.event,
                    coupling: CouplingMode::Detached,
                    attempts: 0,
                    result: Err("detached action thread panicked before reporting".into()),
                });
            }
        }
        std::mem::take(&mut *self.detached_outcomes.lock())
    }

    /// Number of detached actions not yet joined.
    pub fn detached_pending(&self) -> usize {
        self.detached.lock().len()
    }

    /// Snapshot of the dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().clone()
    }

    /// Drain the dead-letter queue and re-execute every entry (with the
    /// full retry policy again); entries that fail again re-enter the
    /// queue. Returns the requeue outcomes.
    pub fn requeue_dead_letters(&self) -> Vec<ActionOutcome> {
        let letters: Vec<DeadLetter> = std::mem::take(&mut *self.dead_letters.lock());
        letters
            .into_iter()
            .map(|dl| self.execute(&dl.request, dl.coupling))
            .collect()
    }

    /// Retries performed (attempts beyond the first, across all actions).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Actions dead-lettered (cumulative; requeued failures count again).
    pub fn dead_letter_count(&self) -> u64 {
        self.dead_lettered.load(Ordering::Relaxed)
    }

    fn run(&self, request: &ActionRequest) -> Result<BatchResult> {
        // Step 3 of §5.6: refresh sysContext from the LED's parameter list.
        let ctx_sql = sys_context_sql(&request.occurrence, request.context);
        if !ctx_sql.is_empty() {
            self.gateway.internal(&ctx_sql, &self.session)?;
        }
        // Step 4: run the stored procedure (context join + action).
        self.gateway
            .internal(&format!("execute {}", request.proc_name), &self.session)
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("action panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("action panicked: {s}")
    } else {
        "action panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use led::Param;
    use relsql::{SqlEndpoint, SqlServer};

    fn setup() -> (Arc<Gateway>, SessionCtx) {
        let server = SqlServer::new();
        let ctx = SessionCtx::new("db", "u");
        server
            .execute(
                "create table sysContext (tableName varchar(120) not null, \
                 context varchar(12) not null, vNo int not null)",
                &ctx,
            )
            .unwrap();
        (Arc::new(Gateway::new(server)), ctx)
    }

    fn request(proc_name: &str, occ: Occurrence) -> ActionRequest {
        ActionRequest {
            proc_name: proc_name.into(),
            event: "e".into(),
            context: ParameterContext::Recent,
            rule: "r".into(),
            occurrence: occ,
        }
    }

    #[test]
    fn execute_refreshes_syscontext_then_runs_proc() {
        let (gw, ctx) = setup();
        gw.internal("create table log (msg varchar(50))", &ctx)
            .unwrap();
        gw.internal(
            "create procedure p as insert log select tableName from sysContext",
            &ctx,
        )
        .unwrap();
        let handler = ActionHandler::new(Arc::clone(&gw));
        let occ = Occurrence::point("e", 1, vec![Param::db("e", "shadow1", 5, 1)]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok());
        assert_eq!(outcome.attempts, 1);
        let r = gw.internal("select msg from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Str("shadow1".into())));
    }

    #[test]
    fn failed_proc_reports_error_outcome_and_dead_letters() {
        let (gw, _ctx) = setup();
        let handler = ActionHandler::new(gw);
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("nosuch_proc", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_err());
        assert!(outcome.result.unwrap_err().contains("nosuch_proc"));
        let letters = handler.dead_letters();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].attempts, 1);
        assert_eq!(handler.dead_letter_count(), 1);
    }

    #[test]
    fn detached_actions_run_on_threads() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = Arc::new(ActionHandler::new(Arc::clone(&gw)));
        for _ in 0..4 {
            let occ = Occurrence::point("e", 1, vec![]);
            handler.execute_detached(request("p", occ));
        }
        let outcomes = handler.wait_detached();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        assert_eq!(handler.detached_pending(), 0);
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(4)));
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = ActionHandler::with_policy(
            Arc::clone(&gw),
            RetryPolicy::retries(5, Duration::ZERO, Duration::ZERO),
        );
        // Fail the first two attempts, then let the action through.
        handler.set_fault_injector(Some(Arc::new(|_, attempt| {
            (attempt <= 2).then(|| format!("transient glitch #{attempt}"))
        })));
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok());
        assert_eq!(outcome.attempts, 3);
        assert_eq!(handler.retry_count(), 2);
        assert!(handler.dead_letters().is_empty());
        // The action ran exactly once: failed attempts never reached SQL.
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(1)));
    }

    #[test]
    fn exhausted_retries_dead_letter_then_requeue_succeeds() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = ActionHandler::with_policy(
            Arc::clone(&gw),
            RetryPolicy::retries(2, Duration::ZERO, Duration::ZERO),
        );
        handler.set_fault_injector(Some(Arc::new(|_, _| Some("outage".into()))));
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert_eq!(outcome.attempts, 2);
        assert!(outcome.result.is_err());
        assert_eq!(handler.dead_letters().len(), 1);
        // The outage clears; requeue drains the queue and the action runs.
        handler.set_fault_injector(None);
        let requeued = handler.requeue_dead_letters();
        assert_eq!(requeued.len(), 1);
        assert!(requeued[0].result.is_ok());
        assert!(handler.dead_letters().is_empty());
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(1)));
    }

    #[test]
    fn panicking_action_yields_failed_outcome_not_a_dead_thread() {
        let (gw, _ctx) = setup();
        let handler = Arc::new(ActionHandler::new(gw));
        handler.set_fault_injector(Some(Arc::new(|req: &ActionRequest, _| {
            panic!("boom in {}", req.proc_name)
        })));
        // Synchronous path.
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ.clone()), CouplingMode::Immediate);
        let err = outcome.result.unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("boom in p"), "{err}");
        // Detached path: the panic must surface as an outcome, not vanish
        // in wait_detached (regression for the swallowed-join bug).
        handler.execute_detached(request("p", occ));
        let outcomes = handler.wait_detached();
        assert_eq!(outcomes.len(), 1);
        let err = outcomes[0].result.as_ref().unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert_eq!(handler.dead_letter_count(), 2);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::retries(8, Duration::from_millis(10), Duration::from_millis(40));
        let b1 = p.backoff_after("rule", 1);
        let b2 = p.backoff_after("rule", 2);
        let b3 = p.backoff_after("rule", 3);
        let b4 = p.backoff_after("rule", 4);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(13));
        assert!(b2 >= Duration::from_millis(20) && b2 < Duration::from_millis(25));
        assert!(b3 >= Duration::from_millis(40) && b3 < Duration::from_millis(50));
        assert!(
            b4 >= Duration::from_millis(40) && b4 < Duration::from_millis(50),
            "capped"
        );
        assert_eq!(b2, p.backoff_after("rule", 2), "deterministic");
        assert_ne!(
            p.backoff_after("rule_a", 2),
            p.backoff_after("rule_b", 2),
            "jitter varies by rule"
        );
        assert_eq!(RetryPolicy::default().backoff_after("r", 1), Duration::ZERO);
    }
}
