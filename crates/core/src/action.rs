//! The Action Handler (§5.5, Figure 16).
//!
//! The Rust analogue of the paper's `SybaseAction`/`NotiStr` machinery:
//! when the LED fires a rule, an [`ActionRequest`] (the `NotiStr` fields —
//! stored procedure, event name, context) plus the occurrence is executed
//! against the SQL server: first the `sysContext` rows are refreshed from
//! the occurrence's parameter list, then the trigger's stored procedure
//! runs. DETACHED actions get their own thread, exactly as the paper
//! spawns a thread per `SybaseAction` call.
//!
//! On top of the paper's fire-and-forget execution this handler layers a
//! reliability pipeline: transiently failing actions are retried under a
//! configurable [`RetryPolicy`] (exponential backoff with deterministic
//! jitter, optional per-attempt wall-clock timeout), panicking action
//! paths are caught and reported as failed outcomes instead of unwinding
//! a thread away, and actions that exhaust their attempts land in a
//! [`DeadLetter`] queue — mirrored into the durable `SysDeadLetter` table
//! when the agent runs on persistent storage, so `\deadletters` and
//! `\requeue` keep working across process lives.
//!
//! Rules whose action is a saga declaration ([`crate::saga::SagaSpec`])
//! are routed to the [`SagaExecutor`] instead of the single-procedure
//! path; see `saga.rs` and DESIGN.md §12.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use led::{CouplingMode, Firing, Occurrence, Param, ParameterContext};
use parking_lot::Mutex;
use relsql::{BatchResult, SessionCtx};

use crate::codegen::sql_quote;
use crate::context_proc::sys_context_sql;
use crate::error::Result;
use crate::gateway::Gateway;
use crate::saga::{
    encode_params, occurrence_vno, SagaDisposition, SagaExecutor, SagaRun, SagaSpec,
};

/// The paper's `NotiStr`: everything needed to invoke one SQL action.
#[derive(Debug, Clone)]
pub struct ActionRequest {
    /// `store_proc` — stored procedure implementing the action.
    pub proc_name: String,
    /// `eventName` — the detected event.
    pub event: String,
    /// `context` — parameter context used for the `sysContext` rows.
    pub context: ParameterContext,
    /// The triggering rule (for reporting).
    pub rule: String,
    pub occurrence: Occurrence,
    /// When the rule's action is a saga, its step list; `None` for the
    /// paper's single-procedure actions.
    pub saga: Option<Arc<SagaSpec>>,
}

impl ActionRequest {
    pub fn from_firing(firing: &Firing, proc_name: impl Into<String>) -> Self {
        ActionRequest {
            proc_name: proc_name.into(),
            event: firing.event.clone(),
            context: firing.context,
            rule: firing.rule.clone(),
            occurrence: firing.occurrence.clone(),
            saga: None,
        }
    }
}

/// The result of one executed action.
#[derive(Debug, Clone)]
pub struct ActionOutcome {
    pub rule: String,
    pub event: String,
    pub coupling: CouplingMode,
    /// How many attempts were made (1 = succeeded or gave up first try).
    /// For sagas this counts step/compensation attempts across the run.
    pub attempts: u32,
    pub result: std::result::Result<BatchResult, String>,
    /// How the saga ended, when the action was one; lets clients tell
    /// "saga compensated" (settled, by design) from "action dead-lettered".
    pub saga: Option<SagaDisposition>,
}

/// Retry behaviour for failing actions.
///
/// The default makes exactly one attempt and never sleeps — the paper's
/// original fire-once semantics. Backoff grows exponentially from
/// `base_backoff`, is capped at `max_backoff`, and carries a deterministic
/// jitter derived from the rule name and attempt number (so concurrent
/// retries de-synchronize without nondeterminism in tests). When
/// `attempt_timeout` is set, each attempt is abandoned after that much
/// wall-clock time and counts as a failure — a hung step fails over to
/// retry/compensation instead of stalling the pump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Per-attempt wall-clock deadline; `None` = wait forever.
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    pub fn retries(max_attempts: u32, base_backoff: Duration, max_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            max_backoff,
            attempt_timeout: None,
        }
    }

    /// Builder: bound each attempt by a wall-clock deadline.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = Some(timeout);
        self
    }

    /// The delay to sleep after `failed_attempt` (1-based) before the next
    /// try: `min(base * 2^(n-1), max)` plus up to 25% deterministic jitter.
    pub fn backoff_after(&self, rule: &str, failed_attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = failed_attempt.saturating_sub(1).min(16);
        let raw = self.base_backoff.saturating_mul(1u32 << exp);
        let capped = raw.min(self.max_backoff.max(self.base_backoff));
        let span = capped.as_nanos() as u64 / 4;
        let jitter = if span == 0 {
            0
        } else {
            let mut h = DefaultHasher::new();
            rule.hash(&mut h);
            failed_attempt.hash(&mut h);
            h.finish() % (span + 1)
        };
        capped + Duration::from_nanos(jitter)
    }
}

/// An action that exhausted its retry budget (or panicked out of every
/// attempt), parked for inspection and manual requeue.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    pub request: ActionRequest,
    pub coupling: CouplingMode,
    pub error: String,
    pub attempts: u32,
}

/// The `SysDeadLetter` row mirroring one dead letter (satellite: the
/// queue survives a cold restart). Occurrence params are text-encoded via
/// [`encode_params`]; the saga flag lets recovery re-attach the step list.
fn dead_letter_insert_sql(dl: &DeadLetter) -> String {
    format!(
        "insert SysDeadLetter values ({}, {}, {}, {}, {}, {}, {}, {}, {})",
        sql_quote(&dl.request.rule),
        sql_quote(&dl.request.event),
        sql_quote(&dl.request.proc_name),
        sql_quote(dl.coupling.as_str()),
        sql_quote(dl.request.context.as_str()),
        occurrence_vno(&dl.request.occurrence),
        dl.attempts,
        sql_quote(&dl.error),
        sql_quote(&encode_params(&dl.request.occurrence)),
    )
}

/// Test/chaos hook: invoked before each attempt with the request and the
/// 1-based attempt number; returning `Some(err)` fails that attempt,
/// panicking simulates a crashing action path. Saga step attempts flow
/// through the same injector, with `proc_name` set to the step procedure.
pub type FaultInjector = Arc<dyn Fn(&ActionRequest, u32) -> Option<String> + Send + Sync>;

struct DetachedHandle {
    handle: JoinHandle<()>,
    rule: String,
    event: String,
}

/// Executes actions; detached ones on their own threads.
pub struct ActionHandler {
    gateway: Arc<Gateway>,
    /// Identity the action SQL runs under.
    session: SessionCtx,
    policy: RetryPolicy,
    injector: Arc<Mutex<Option<FaultInjector>>>,
    saga: SagaExecutor,
    detached: Mutex<Vec<DetachedHandle>>,
    detached_outcomes: Arc<Mutex<Vec<ActionOutcome>>>,
    dead_letters: Mutex<Vec<DeadLetter>>,
    /// When set (durable agents), dead letters are mirrored into the
    /// `SysDeadLetter` table so they survive a cold restart.
    durable_dlq: AtomicBool,
    retries: Arc<AtomicU64>,
    dead_lettered: AtomicU64,
}

impl ActionHandler {
    pub fn new(gateway: Arc<Gateway>) -> Self {
        Self::with_policy(gateway, RetryPolicy::default())
    }

    pub fn with_policy(gateway: Arc<Gateway>, policy: RetryPolicy) -> Self {
        // Live reads: action/saga batches react to datagrams enqueued
        // mid-batch, before the triggering batch publishes its MVCC
        // versions, so their reads must see live rows (see `SessionCtx`).
        let session = SessionCtx::new("master", "eca_agent").with_live_reads();
        let injector: Arc<Mutex<Option<FaultInjector>>> = Arc::new(Mutex::new(None));
        let retries = Arc::new(AtomicU64::new(0));
        let saga = SagaExecutor::new(
            Arc::clone(&gateway),
            session.clone(),
            policy.clone(),
            Arc::clone(&injector),
            Arc::clone(&retries),
        );
        ActionHandler {
            gateway,
            session,
            policy,
            injector,
            saga,
            detached: Mutex::new(Vec::new()),
            detached_outcomes: Arc::new(Mutex::new(Vec::new())),
            dead_letters: Mutex::new(Vec::new()),
            durable_dlq: AtomicBool::new(false),
            retries,
            dead_lettered: AtomicU64::new(0),
        }
    }

    /// Install (or clear) the per-attempt fault injector (shared with the
    /// saga executor).
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        *self.injector.lock() = injector;
    }

    /// The saga executor (crash hook installation, counters, journal
    /// inspection).
    pub fn saga_executor(&self) -> &SagaExecutor {
        &self.saga
    }

    /// Mirror dead letters into the durable `SysDeadLetter` table from now
    /// on (called by the agent once the system tables exist).
    pub fn set_durable_dead_letters(&self, on: bool) {
        self.durable_dlq.store(on, Ordering::Relaxed);
    }

    /// Execute an action synchronously (IMMEDIATE and flushed DEFERRED
    /// rules) and return the outcome, retrying per the policy. An outcome
    /// that is still failed after the last attempt is also dead-lettered.
    /// Saga-valued requests route to the saga executor.
    pub fn execute(&self, request: &ActionRequest, coupling: CouplingMode) -> ActionOutcome {
        if let Some(spec) = &request.saga {
            return self.execute_saga(request, &Arc::clone(spec), coupling);
        }
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        let mut last_err;
        loop {
            attempt += 1;
            match self.attempt(request, attempt) {
                Ok(batch) => {
                    return ActionOutcome {
                        rule: request.rule.clone(),
                        event: request.event.clone(),
                        coupling,
                        attempts: attempt,
                        result: Ok(batch),
                        saga: None,
                    }
                }
                Err(e) => last_err = e,
            }
            if attempt >= max_attempts {
                break;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            let delay = self.policy.backoff_after(&request.rule, attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        self.dead_letter(DeadLetter {
            request: request.clone(),
            coupling,
            error: last_err.clone(),
            attempts: attempt,
        });
        ActionOutcome {
            rule: request.rule.clone(),
            event: request.event.clone(),
            coupling,
            attempts: attempt,
            result: Err(last_err),
            saga: None,
        }
    }

    /// Run a saga-valued request through the executor. A `Compensated`
    /// outcome is settled by design and is NOT dead-lettered; a `Parked`
    /// one (compensation failure) is, so `\requeue` can resume it.
    fn execute_saga(
        &self,
        request: &ActionRequest,
        spec: &Arc<SagaSpec>,
        coupling: CouplingMode,
    ) -> ActionOutcome {
        let run = SagaRun {
            rule: &request.rule,
            event: &request.event,
            vno: occurrence_vno(&request.occurrence),
            spec,
            occurrence: request.occurrence.clone(),
            context_sql: Some(sys_context_sql(&request.occurrence, request.context)),
            coupling,
        };
        let outcome = self.saga.execute(&run);
        if let Err(err) = &outcome.result {
            if !matches!(outcome.saga, Some(SagaDisposition::Compensated { .. })) {
                self.dead_letter(DeadLetter {
                    request: request.clone(),
                    coupling,
                    error: err.clone(),
                    attempts: outcome.attempts,
                });
            }
        }
        outcome
    }

    /// Resume an in-flight saga found in the journal at cold restart. The
    /// occurrence is synthetic (a single param carrying the journaled
    /// `vNo`): the journal plan is never `Fresh` here, so no context
    /// refresh happens and the params are only used for keying.
    pub fn resume_saga(
        &self,
        rule: &str,
        event: &str,
        vno: i64,
        spec: &Arc<SagaSpec>,
        coupling: CouplingMode,
    ) -> ActionOutcome {
        let request = ActionRequest {
            proc_name: String::new(),
            event: event.to_string(),
            context: ParameterContext::Recent,
            rule: rule.to_string(),
            occurrence: Occurrence::point(event, 0, vec![Param::db(event, "", vno, 0)]),
            saga: Some(Arc::clone(spec)),
        };
        self.execute_saga(&request, spec, coupling)
    }

    fn dead_letter(&self, dl: DeadLetter) {
        self.dead_lettered.fetch_add(1, Ordering::Relaxed);
        if self.durable_dlq.load(Ordering::Relaxed) {
            // Best effort: a failed mirror write must not mask the action
            // error itself (the in-memory queue still holds the letter).
            let _ = self
                .gateway
                .internal(&dead_letter_insert_sql(&dl), &self.session);
        }
        self.dead_letters.lock().push(dl);
    }

    /// One attempt: fault injection, then the real SQL (under the
    /// per-attempt deadline when one is configured), with panics caught
    /// and converted into ordinary errors.
    fn attempt(
        &self,
        request: &ActionRequest,
        attempt: u32,
    ) -> std::result::Result<BatchResult, String> {
        let injector = self.injector.lock().clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The injector runs inside the timed region: a hung dependency
            // (simulated by a sleeping injector) counts against the deadline.
            match self.policy.attempt_timeout {
                None => {
                    if let Some(inject) = &injector {
                        if let Some(err) = inject(request, attempt) {
                            return Err(err);
                        }
                    }
                    run_action(&self.gateway, &self.session, request).map_err(|e| e.to_string())
                }
                Some(t) => {
                    let gw = Arc::clone(&self.gateway);
                    let sess = self.session.clone();
                    let req = request.clone();
                    run_with_timeout(t, move || {
                        if let Some(inject) = &injector {
                            if let Some(err) = inject(&req, attempt) {
                                return Err(err);
                            }
                        }
                        run_action(&gw, &sess, &req).map_err(|e| e.to_string())
                    })
                }
            }
        }));
        match outcome {
            Ok(r) => r,
            Err(panic) => Err(panic_message(panic)),
        }
    }

    /// Execute an action on its own thread (DETACHED coupling). The outcome
    /// lands in the detached-outcome mailbox.
    pub fn execute_detached(self: &Arc<Self>, request: ActionRequest) {
        let handler = Arc::clone(self);
        let outcomes = Arc::clone(&self.detached_outcomes);
        let rule = request.rule.clone();
        let event = request.event.clone();
        let handle = std::thread::spawn(move || {
            let outcome = handler.execute(&request, CouplingMode::Detached);
            outcomes.lock().push(outcome);
        });
        self.detached.lock().push(DetachedHandle {
            handle,
            rule,
            event,
        });
    }

    /// Join all outstanding detached actions and return their outcomes. A
    /// thread that died without reporting (should be unreachable — attempts
    /// catch panics — but threads can still be killed) yields a failed
    /// outcome rather than vanishing.
    pub fn wait_detached(&self) -> Vec<ActionOutcome> {
        let handles: Vec<DetachedHandle> = std::mem::take(&mut *self.detached.lock());
        for h in handles {
            if h.handle.join().is_err() {
                self.detached_outcomes.lock().push(ActionOutcome {
                    rule: h.rule,
                    event: h.event,
                    coupling: CouplingMode::Detached,
                    attempts: 0,
                    result: Err("detached action thread panicked before reporting".into()),
                    saga: None,
                });
            }
        }
        std::mem::take(&mut *self.detached_outcomes.lock())
    }

    /// Number of detached actions not yet joined.
    pub fn detached_pending(&self) -> usize {
        self.detached.lock().len()
    }

    /// Snapshot of the dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().clone()
    }

    /// Adopt dead letters recovered from the durable table at cold restart
    /// (already persisted — not re-mirrored, not re-counted).
    pub fn seed_dead_letters(&self, letters: Vec<DeadLetter>) {
        self.dead_letters.lock().extend(letters);
    }

    /// Drain the dead-letter queue and re-execute every entry (with the
    /// full retry policy again); entries that fail again re-enter the
    /// queue (and the durable mirror). Returns the requeue outcomes.
    pub fn requeue_dead_letters(&self) -> Vec<ActionOutcome> {
        let letters: Vec<DeadLetter> = std::mem::take(&mut *self.dead_letters.lock());
        if self.durable_dlq.load(Ordering::Relaxed) && !letters.is_empty() {
            let _ = self.gateway.internal("delete SysDeadLetter", &self.session);
        }
        letters
            .into_iter()
            .map(|dl| self.execute(&dl.request, dl.coupling))
            .collect()
    }

    /// Retries performed (attempts beyond the first, across all actions
    /// and saga steps).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Actions dead-lettered (cumulative; requeued failures count again).
    pub fn dead_letter_count(&self) -> u64 {
        self.dead_lettered.load(Ordering::Relaxed)
    }
}

/// The single-procedure action body (steps 3–4 of §5.6): refresh
/// `sysContext` from the LED's parameter list, then run the stored
/// procedure (context join + action).
fn run_action(
    gateway: &Gateway,
    session: &SessionCtx,
    request: &ActionRequest,
) -> Result<BatchResult> {
    let ctx_sql = sys_context_sql(&request.occurrence, request.context);
    if !ctx_sql.is_empty() {
        gateway.internal(&ctx_sql, session)?;
    }
    gateway.internal(&format!("execute {}", request.proc_name), session)
}

/// One saga step/compensation attempt: fault injection, then the step's
/// `EXECUTE` + journal-row batch as a single server call (one WAL record),
/// under the per-attempt deadline. Panics are caught here — the saga
/// crash hook fires *outside* this function, so chaos-induced process
/// death still unwinds the whole executor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attempt_batch(
    gateway: &Arc<Gateway>,
    session: &SessionCtx,
    injector: Option<FaultInjector>,
    request: &ActionRequest,
    attempt: u32,
    timeout: Option<Duration>,
    sql: String,
) -> std::result::Result<BatchResult, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| match timeout {
        None => {
            if let Some(inject) = &injector {
                if let Some(err) = inject(request, attempt) {
                    return Err(err);
                }
            }
            gateway.internal(&sql, session).map_err(|e| e.to_string())
        }
        Some(t) => {
            let gw = Arc::clone(gateway);
            let sess = session.clone();
            let req = request.clone();
            run_with_timeout(t, move || {
                if let Some(inject) = &injector {
                    if let Some(err) = inject(&req, attempt) {
                        return Err(err);
                    }
                }
                gw.internal(&sql, &sess).map_err(|e| e.to_string())
            })
        }
    }));
    match outcome {
        Ok(r) => r,
        Err(panic) => Err(panic_message(panic)),
    }
}

/// Run `f` on a worker thread and give up after `timeout`. An abandoned
/// attempt's thread keeps running to completion in the background (the
/// engine has no statement kill switch) — its effects, if any, land under
/// the same idempotency protections as a crash, and the worker's result
/// is discarded.
pub(crate) fn run_with_timeout(
    timeout: Duration,
    f: impl FnOnce() -> std::result::Result<BatchResult, String> + Send + 'static,
) -> std::result::Result<BatchResult, String> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let r = catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|p| Err(panic_message(p)));
        let _ = tx.send(r);
    });
    match rx.recv_timeout(timeout) {
        Ok(r) => r,
        Err(_) => Err(format!(
            "action attempt exceeded its {}ms deadline and was abandoned",
            timeout.as_millis()
        )),
    }
}

pub(crate) fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("action panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("action panicked: {s}")
    } else {
        "action panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use led::Param;
    use relsql::{SqlEndpoint, SqlServer};

    fn setup() -> (Arc<Gateway>, SessionCtx) {
        let server = SqlServer::new();
        let ctx = SessionCtx::new("db", "u");
        server
            .execute(
                "create table sysContext (tableName varchar(120) not null, \
                 context varchar(12) not null, vNo int not null)",
                &ctx,
            )
            .unwrap();
        (Arc::new(Gateway::new(server)), ctx)
    }

    fn request(proc_name: &str, occ: Occurrence) -> ActionRequest {
        ActionRequest {
            proc_name: proc_name.into(),
            event: "e".into(),
            context: ParameterContext::Recent,
            rule: "r".into(),
            occurrence: occ,
            saga: None,
        }
    }

    #[test]
    fn execute_refreshes_syscontext_then_runs_proc() {
        let (gw, ctx) = setup();
        gw.internal("create table log (msg varchar(50))", &ctx)
            .unwrap();
        gw.internal(
            "create procedure p as insert log select tableName from sysContext",
            &ctx,
        )
        .unwrap();
        let handler = ActionHandler::new(Arc::clone(&gw));
        let occ = Occurrence::point("e", 1, vec![Param::db("e", "shadow1", 5, 1)]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok());
        assert_eq!(outcome.attempts, 1);
        let r = gw.internal("select msg from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Str("shadow1".into())));
    }

    #[test]
    fn failed_proc_reports_error_outcome_and_dead_letters() {
        let (gw, _ctx) = setup();
        let handler = ActionHandler::new(gw);
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("nosuch_proc", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_err());
        assert!(outcome.result.unwrap_err().contains("nosuch_proc"));
        let letters = handler.dead_letters();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].attempts, 1);
        assert_eq!(handler.dead_letter_count(), 1);
    }

    #[test]
    fn detached_actions_run_on_threads() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = Arc::new(ActionHandler::new(Arc::clone(&gw)));
        for _ in 0..4 {
            let occ = Occurrence::point("e", 1, vec![]);
            handler.execute_detached(request("p", occ));
        }
        let outcomes = handler.wait_detached();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        assert_eq!(handler.detached_pending(), 0);
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(4)));
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = ActionHandler::with_policy(
            Arc::clone(&gw),
            RetryPolicy::retries(5, Duration::ZERO, Duration::ZERO),
        );
        // Fail the first two attempts, then let the action through.
        handler.set_fault_injector(Some(Arc::new(|_, attempt| {
            (attempt <= 2).then(|| format!("transient glitch #{attempt}"))
        })));
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok());
        assert_eq!(outcome.attempts, 3);
        assert_eq!(handler.retry_count(), 2);
        assert!(handler.dead_letters().is_empty());
        // The action ran exactly once: failed attempts never reached SQL.
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(1)));
    }

    #[test]
    fn exhausted_retries_dead_letter_then_requeue_succeeds() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = ActionHandler::with_policy(
            Arc::clone(&gw),
            RetryPolicy::retries(2, Duration::ZERO, Duration::ZERO),
        );
        handler.set_fault_injector(Some(Arc::new(|_, _| Some("outage".into()))));
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert_eq!(outcome.attempts, 2);
        assert!(outcome.result.is_err());
        assert_eq!(handler.dead_letters().len(), 1);
        // The outage clears; requeue drains the queue and the action runs.
        handler.set_fault_injector(None);
        let requeued = handler.requeue_dead_letters();
        assert_eq!(requeued.len(), 1);
        assert!(requeued[0].result.is_ok());
        assert!(handler.dead_letters().is_empty());
        let r = gw.internal("select count(*) from log", &ctx).unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(1)));
    }

    #[test]
    fn panicking_action_yields_failed_outcome_not_a_dead_thread() {
        let (gw, _ctx) = setup();
        let handler = Arc::new(ActionHandler::new(gw));
        handler.set_fault_injector(Some(Arc::new(|req: &ActionRequest, _| {
            panic!("boom in {}", req.proc_name)
        })));
        // Synchronous path.
        let occ = Occurrence::point("e", 1, vec![]);
        let outcome = handler.execute(&request("p", occ.clone()), CouplingMode::Immediate);
        let err = outcome.result.unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("boom in p"), "{err}");
        // Detached path: the panic must surface as an outcome, not vanish
        // in wait_detached (regression for the swallowed-join bug).
        handler.execute_detached(request("p", occ));
        let outcomes = handler.wait_detached();
        assert_eq!(outcomes.len(), 1);
        let err = outcomes[0].result.as_ref().unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert_eq!(handler.dead_letter_count(), 2);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::retries(8, Duration::from_millis(10), Duration::from_millis(40));
        let b1 = p.backoff_after("rule", 1);
        let b2 = p.backoff_after("rule", 2);
        let b3 = p.backoff_after("rule", 3);
        let b4 = p.backoff_after("rule", 4);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(13));
        assert!(b2 >= Duration::from_millis(20) && b2 < Duration::from_millis(25));
        assert!(b3 >= Duration::from_millis(40) && b3 < Duration::from_millis(50));
        assert!(
            b4 >= Duration::from_millis(40) && b4 < Duration::from_millis(50),
            "capped"
        );
        assert_eq!(b2, p.backoff_after("rule", 2), "deterministic");
        assert_ne!(
            p.backoff_after("rule_a", 2),
            p.backoff_after("rule_b", 2),
            "jitter varies by rule"
        );
        assert_eq!(RetryPolicy::default().backoff_after("r", 1), Duration::ZERO);
    }

    #[test]
    fn hung_attempt_times_out_and_fails_over_to_retry() {
        let (gw, ctx) = setup();
        gw.internal("create table log (a int)", &ctx).unwrap();
        gw.internal("create procedure p as insert log values (1)", &ctx)
            .unwrap();
        let handler = ActionHandler::with_policy(
            Arc::clone(&gw),
            RetryPolicy::retries(2, Duration::ZERO, Duration::ZERO)
                .with_attempt_timeout(Duration::from_millis(50)),
        );
        // First attempt hangs well past the deadline; second sails through.
        handler.set_fault_injector(Some(Arc::new(|_, attempt| {
            if attempt == 1 {
                std::thread::sleep(Duration::from_secs(2));
            }
            None
        })));
        let occ = Occurrence::point("e", 1, vec![]);
        let start = std::time::Instant::now();
        let outcome = handler.execute(&request("p", occ), CouplingMode::Immediate);
        assert!(outcome.result.is_ok(), "{:?}", outcome.result);
        assert_eq!(outcome.attempts, 2);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "the hung attempt must be abandoned, not awaited"
        );
    }

    #[test]
    fn timeout_error_names_the_deadline() {
        let err = run_with_timeout(Duration::from_millis(10), || {
            std::thread::sleep(Duration::from_secs(1));
            Ok(BatchResult::default())
        })
        .unwrap_err();
        assert!(err.contains("10ms"), "{err}");
        assert!(err.contains("abandoned"), "{err}");
    }

    #[test]
    fn dead_letter_sql_parses_and_quotes() {
        let dl = DeadLetter {
            request: request(
                "db.u.p",
                Occurrence::point("e", 1, vec![Param::db("e", "s", 3, 1)]),
            ),
            coupling: CouplingMode::Immediate,
            error: "it's broken".into(),
            attempts: 2,
        };
        let sql = dead_letter_insert_sql(&dl);
        relsql::parser::parse_script(&sql).unwrap();
        assert!(sql.contains("'it''s broken'"), "{sql}");
        assert!(sql.contains("'IMMEDIATE'"), "{sql}");
        assert!(sql.contains("'s,3,1'"), "{sql}");
    }
}
