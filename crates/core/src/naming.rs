//! Name expansion (paper §5.1).
//!
//! Every user-visible object name is expanded once, at parse time, into the
//! system-wide internal form `DatabaseName.userName.objectName`; the LED,
//! the system tables and all generated SQL only ever see internal names.
//! Derived names (shadow tables, tmp tables, stored procedures, version
//! tables) follow the paper's conventions: Figure 11 derives
//! `tablename_inserted` / `tablename_deleted` and `trigger__Proc`.

use relsql::SessionCtx;

/// Expand a user-supplied object name to its internal form.
///
/// - `name` → `db.user.name`
/// - `owner.name` → `db.owner.name` (the `[owner.]` of Figures 9/10/12)
/// - `a.b.c` (already fully qualified) → unchanged
pub fn internal(session: &SessionCtx, name: &str) -> String {
    let parts: Vec<&str> = name.split('.').collect();
    match parts.len() {
        1 => format!("{}.{}.{}", session.database, session.user, name),
        2 => format!("{}.{}.{}", session.database, parts[0], parts[1]),
        _ => name.to_string(),
    }
}

/// The base (unqualified) part of an internal name.
pub fn base(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

/// The `db.user.` prefix of an internal name (without trailing dot parts).
pub fn prefix(internal_name: &str) -> String {
    match internal_name.rsplit_once('.') {
        Some((p, _)) => p.to_string(),
        None => String::new(),
    }
}

/// Shadow table holding inserted tuples for a primitive event
/// (per-event rather than per-table — see DESIGN.md §5 for why this
/// deviates from Figure 11's `tablename_inserted`).
pub fn shadow_inserted(event_internal: &str) -> String {
    format!("{event_internal}_inserted")
}

/// Shadow table holding deleted tuples for a primitive event.
pub fn shadow_deleted(event_internal: &str) -> String {
    format!("{event_internal}_deleted")
}

/// The single-row version helper table for an event (the paper's shared
/// `Version` table, made per-event to avoid cross-event races).
pub fn version_table(event_internal: &str) -> String {
    format!("{event_internal}_ver")
}

/// Stored procedure implementing a trigger's action (Figure 11:
/// `sentineldb.sharma.t_addStk__Proc`).
pub fn action_proc(trigger_internal: &str) -> String {
    format!("{trigger_internal}__Proc")
}

/// The native SQL trigger the agent installs for a primitive event. One per
/// event (not per user trigger), because Sybase allows only one trigger per
/// (table, operation) slot while the agent supports many triggers per event.
pub fn native_trigger(event_internal: &str) -> String {
    format!("{event_internal}__evtrig")
}

/// Context tmp table for `<table>.inserted` references in action SQL
/// (§5.6); `table_internal` is the internal name of the *user* table.
pub fn tmp_inserted(table_internal: &str) -> String {
    format!("{table_internal}_inserted_tmp")
}

/// Context tmp table for `<table>.deleted` references.
pub fn tmp_deleted(table_internal: &str) -> String {
    format!("{table_internal}_deleted_tmp")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionCtx {
        SessionCtx::new("sentineldb", "sharma")
    }

    #[test]
    fn expansion_rules() {
        let s = session();
        assert_eq!(internal(&s, "addStk"), "sentineldb.sharma.addStk");
        assert_eq!(internal(&s, "bob.addStk"), "sentineldb.bob.addStk");
        assert_eq!(internal(&s, "otherdb.alice.addStk"), "otherdb.alice.addStk");
    }

    #[test]
    fn base_and_prefix() {
        assert_eq!(base("sentineldb.sharma.stock"), "stock");
        assert_eq!(base("stock"), "stock");
        assert_eq!(prefix("sentineldb.sharma.stock"), "sentineldb.sharma");
        assert_eq!(prefix("stock"), "");
    }

    #[test]
    fn derived_names_match_paper_conventions() {
        assert_eq!(
            action_proc("sentineldb.sharma.t_addStk"),
            "sentineldb.sharma.t_addStk__Proc"
        );
        assert_eq!(
            shadow_inserted("sentineldb.sharma.addStk"),
            "sentineldb.sharma.addStk_inserted"
        );
        assert_eq!(
            shadow_deleted("sentineldb.sharma.delStk"),
            "sentineldb.sharma.delStk_deleted"
        );
        assert_eq!(
            tmp_inserted("sentineldb.sharma.stock"),
            "sentineldb.sharma.stock_inserted_tmp"
        );
        assert_eq!(
            tmp_deleted("sentineldb.sharma.stock"),
            "sentineldb.sharma.stock_deleted_tmp"
        );
        assert_eq!(
            version_table("sentineldb.sharma.addStk"),
            "sentineldb.sharma.addStk_ver"
        );
        assert_eq!(
            native_trigger("sentineldb.sharma.addStk"),
            "sentineldb.sharma.addStk__evtrig"
        );
    }
}
