//! The Event Notifier (§5.4, Figure 15).
//!
//! Native triggers call `syb_sendmsg()` with a payload of the form
//!
//! ```text
//! <user> <table> <operation> begin <event> <vNo>
//! ```
//!
//! (the paper's Figure 11 payload, extended with the occurrence number so
//! the agent never has to read `SysPrimitiveEvent` back — see DESIGN.md).
//! The Notification Listener decodes datagrams into
//! [`Notification`]s; the agent turns those into LED signals.

use relsql::notify::Datagram;

/// A decoded primitive-event notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    pub user: String,
    pub table: String,
    pub operation: String,
    /// Internal event name.
    pub event: String,
    /// Occurrence number stamped into the shadow rows.
    pub vno: i64,
}

/// Encode a notification into the Figure 11 payload form — the inverse of
/// [`decode`], used by the agent when it synthesizes an occurrence that
/// was repaired from the durable tables rather than received off the wire.
pub fn encode(n: &Notification) -> String {
    format!(
        "{} {} {} begin {} {}",
        n.user, n.table, n.operation, n.event, n.vno
    )
}

/// Decode a datagram payload. Returns `None` for malformed messages —
/// UDP semantics mean the notifier must tolerate garbage, not crash.
pub fn decode(datagram: &Datagram) -> Option<Notification> {
    let fields: Vec<&str> = datagram.payload.split_whitespace().collect();
    if fields.len() != 6 || fields[3] != "begin" {
        return None;
    }
    Some(Notification {
        user: fields[0].to_string(),
        table: fields[1].to_string(),
        operation: fields[2].to_string(),
        event: fields[4].to_string(),
        vno: fields[5].parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg(payload: &str) -> Datagram {
        Datagram {
            host: "127.0.0.1".into(),
            port: 10006,
            payload: payload.into(),
            seq: 0,
        }
    }

    #[test]
    fn decode_well_formed() {
        let n = decode(&dg("sharma stock insert begin sentineldb.sharma.addStk 7")).unwrap();
        assert_eq!(n.user, "sharma");
        assert_eq!(n.table, "stock");
        assert_eq!(n.operation, "insert");
        assert_eq!(n.event, "sentineldb.sharma.addStk");
        assert_eq!(n.vno, 7);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let n = Notification {
            user: "sharma".into(),
            table: "stock".into(),
            operation: "insert".into(),
            event: "sentineldb.sharma.addStk".into(),
            vno: 42,
        };
        assert_eq!(decode(&dg(&encode(&n))), Some(n));
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in [
            "",
            "too few fields",
            "a b c nobegin e 7",
            "a b c begin e notanumber",
            "a b c begin e 7 extra",
        ] {
            assert_eq!(decode(&dg(bad)), None, "{bad:?}");
        }
    }
}
