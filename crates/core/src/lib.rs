//! # eca-core — the ECA Agent
//!
//! Reproduction of the primary contribution of Chakravarthy & Li, *"An
//! Agent-Based Approach to Extending the Native Active Capability of
//! Relational Database Systems"* (ICDE 1999): a mediator between clients
//! and a passive SQL server that provides **full active-database
//! semantics** — named reusable events, composite events in the Snoop
//! language, all four parameter contexts, multiple triggers per event,
//! rule persistence and recovery — *without modifying the server or the
//! clients*.
//!
//! The agent speaks plain SQL to a [`relsql::SqlServer`] (the Sybase
//! stand-in), detects composite events with a [`led::Detector`], and is
//! driven by `syb_sendmsg` datagrams emitted from generated native
//! triggers.
//!
//! ```
//! use eca_core::{AgentConfig, EcaAgent};
//! use relsql::SqlServer;
//!
//! let server = SqlServer::new();
//! let agent = EcaAgent::with_defaults(std::sync::Arc::clone(&server)).unwrap();
//! let client = agent.client("sentineldb", "sharma");
//!
//! client.execute("create table stock (symbol varchar(10), price float)").unwrap();
//! // The paper's Example 1: a named, reusable primitive event + trigger.
//! client.execute(
//!     "create trigger t_addStk on stock for insert \
//!      event addStk \
//!      as print 'trigger t_addStk on primitive event addStk occurs'",
//! ).unwrap();
//! let resp = client.execute("insert stock values ('IBM', 104.5)").unwrap();
//! assert_eq!(resp.actions.len(), 0); // native path: action ran inside the server
//! assert!(resp.server.messages.iter().any(|m| m.contains("t_addStk")));
//! let _ = AgentConfig::default();
//! ```

pub mod action;
pub mod agent;
pub mod baseline;
pub mod codegen;
pub mod context_proc;
pub mod eca_parser;
pub mod error;
pub mod filter;
pub mod gateway;
pub mod ged;
pub mod naming;
pub mod notifier;
pub mod persist;
pub mod registry;
pub mod reliability;
pub mod saga;
pub mod service;

pub use action::{
    ActionHandler, ActionOutcome, ActionRequest, DeadLetter, FaultInjector, RetryPolicy,
};
pub use agent::{
    AgentConfig, AgentConfigBuilder, AgentResponse, AgentStats, ChannelFaultCounts, EcaAgent,
    EcaClient, ExecOutcome,
};
pub use baseline::{EmbeddedCheckClient, PollingMonitor, Situation};
pub use eca_parser::{parse_eca, EcaCommand, TriggerClauses};
pub use error::{AgentError, EcaError, EcaErrorKind, Result};
pub use filter::{classify, Classification, EcaKind};
pub use ged::{GedStats, GlobalEventDetector, GlobalOutcome};
pub use persist::PersistentManager;
pub use registry::{Registry, TriggerKind};
pub use reliability::{Admission, ReliabilityTracker};
pub use relsql::notify::FaultPlan;
pub use saga::{
    plan_from_journal, saga_key, SagaBoundary, SagaCrashHook, SagaDisposition, SagaJournalRow,
    SagaPlan, SagaSpec, SagaStep,
};
pub use service::{ActiveService, DrainReport};
