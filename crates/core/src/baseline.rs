//! The rejected alternatives from §1, implemented as baselines for
//! experiment E10: **polling** and **embedded situation checks**.
//!
//! Both monitor the database for situations without any active capability —
//! polling re-queries on a schedule (wasted queries, bounded detection
//! latency), embedded checks bolt condition tests onto every application
//! statement (no modularity, per-statement overhead). The ECA Agent is the
//! paper's answer to both.

use relsql::{BatchResult, Result, Session, Value};

/// A situation to watch: a query whose result changing (or predicate
/// becoming true) constitutes "detection".
#[derive(Debug, Clone)]
pub struct Situation {
    /// Identifier for reporting.
    pub name: String,
    /// A SELECT whose first scalar is compared across polls.
    pub probe_sql: String,
    /// Action executed when the situation is detected.
    pub action_sql: String,
}

/// Polling monitor: re-runs every situation probe on each `poll()` call and
/// fires the action when the probed value changed since the last poll.
pub struct PollingMonitor {
    session: Session,
    situations: Vec<Situation>,
    last: Vec<Option<Value>>,
    polls: u64,
    queries: u64,
    detections: u64,
}

impl PollingMonitor {
    pub fn new(session: Session, situations: Vec<Situation>) -> Self {
        let n = situations.len();
        PollingMonitor {
            session,
            situations,
            last: vec![None; n],
            polls: 0,
            queries: 0,
            detections: 0,
        }
    }

    /// Run one polling round; returns the names of situations detected.
    pub fn poll(&mut self) -> Result<Vec<String>> {
        self.polls += 1;
        let mut detected = Vec::new();
        for (i, s) in self.situations.iter().enumerate() {
            self.queries += 1;
            let r = self.session.execute(&s.probe_sql)?;
            let current = r.scalar().cloned();
            let changed = match (&self.last[i], &current) {
                (Some(a), Some(b)) => a != b,
                (None, Some(_)) => false, // first observation is the baseline
                _ => false,
            };
            if changed {
                self.detections += 1;
                self.queries += 1;
                self.session.execute(&s.action_sql)?;
                detected.push(s.name.clone());
            }
            self.last[i] = current;
        }
        Ok(detected)
    }

    /// (polls, probe+action queries issued, detections) — the waste metric.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.polls, self.queries, self.detections)
    }
}

/// Embedded situation check: the §1 "extra code in all applications"
/// approach. Every DML the application issues is followed by explicit
/// condition checks, inline, in application code.
pub struct EmbeddedCheckClient {
    session: Session,
    checks: Vec<Situation>,
    statements: u64,
    check_queries: u64,
    detections: u64,
}

impl EmbeddedCheckClient {
    pub fn new(session: Session, checks: Vec<Situation>) -> Self {
        EmbeddedCheckClient {
            session,
            checks,
            statements: 0,
            check_queries: 0,
            detections: 0,
        }
    }

    /// Execute application SQL, then run every situation check inline —
    /// the condition is re-evaluated whether or not this statement could
    /// have affected it (the application cannot know, in general).
    pub fn execute(&mut self, sql: &str) -> Result<(BatchResult, Vec<String>)> {
        self.statements += 1;
        let result = self.session.execute(sql)?;
        let mut detected = Vec::new();
        for s in &self.checks {
            self.check_queries += 1;
            let r = self.session.execute(&s.probe_sql)?;
            if r.scalar().is_some_and(Value::is_truthy) {
                self.detections += 1;
                self.check_queries += 1;
                self.session.execute(&s.action_sql)?;
                detected.push(s.name.clone());
            }
        }
        Ok((result, detected))
    }

    /// (application statements, check queries issued, detections).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.statements, self.check_queries, self.detections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsql::SqlServer;

    fn setup() -> Session {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table stock (symbol varchar(8), price float)")
            .unwrap();
        s.execute("create table alerts (n int)").unwrap();
        s
    }

    #[test]
    fn polling_detects_only_at_poll_time() {
        let s = setup();
        let mut monitor = PollingMonitor::new(
            s.clone(),
            vec![Situation {
                name: "stock_count".into(),
                probe_sql: "select count(*) from stock".into(),
                action_sql: "insert alerts values (1)".into(),
            }],
        );
        // Baseline poll.
        assert!(monitor.poll().unwrap().is_empty());
        // Change happens between polls — invisible until the next poll.
        s.execute("insert stock values ('IBM', 1.0)").unwrap();
        let detected = monitor.poll().unwrap();
        assert_eq!(detected, vec!["stock_count"]);
        // No change: poll wastes a query and detects nothing.
        assert!(monitor.poll().unwrap().is_empty());
        let (polls, queries, detections) = monitor.stats();
        assert_eq!(polls, 3);
        assert_eq!(detections, 1);
        assert_eq!(queries, 3 + 1); // 3 probes + 1 action
    }

    #[test]
    fn embedded_checks_run_after_every_statement() {
        let s = setup();
        let mut client = EmbeddedCheckClient::new(
            s.clone(),
            vec![Situation {
                name: "expensive".into(),
                probe_sql: "select count(*) from stock where price > 100".into(),
                action_sql: "insert alerts values (1)".into(),
            }],
        );
        let (_, detected) = client
            .execute("insert stock values ('CHEAP', 1.0)")
            .unwrap();
        assert!(detected.is_empty());
        let (_, detected) = client
            .execute("insert stock values ('PRICY', 500.0)")
            .unwrap();
        assert_eq!(detected, vec!["expensive"]);
        let (stmts, checks, detections) = client.stats();
        assert_eq!(stmts, 2);
        assert_eq!(detections, 1);
        // One probe per statement plus one action.
        assert_eq!(checks, 2 + 1);
    }

    #[test]
    fn polling_interval_bounds_latency() {
        // The crux of E10: k changes between two polls collapse into one
        // detection — polling undercounts bursty events.
        let s = setup();
        let mut monitor = PollingMonitor::new(
            s.clone(),
            vec![Situation {
                name: "count".into(),
                probe_sql: "select count(*) from stock".into(),
                action_sql: "insert alerts values (1)".into(),
            }],
        );
        monitor.poll().unwrap();
        for i in 0..5 {
            s.execute(&format!("insert stock values ('S{i}', 1.0)"))
                .unwrap();
        }
        let detected = monitor.poll().unwrap();
        assert_eq!(detected.len(), 1, "five events, one detection");
    }
}
