//! SQL code generation (Figures 11 and 14).
//!
//! Everything the agent installs in the SQL server is plain SQL produced
//! here: shadow tables, version helper tables, stored procedures with
//! context processing, and the native trigger that stamps shadow rows and
//! sends the `syb_sendmsg` notification.
//!
//! One deliberate deviation from Figure 11, documented in DESIGN.md: the
//! native trigger is named per *event* (not per user trigger) and executes
//! the procedures of **all** IMMEDIATE triggers on that event, because
//! Sybase permits only one native trigger per (table, operation) while the
//! agent supports many triggers per event (contribution #4).

use led::ParameterContext;
use relsql::lexer::{tokenize, TokenKind};

use crate::naming;
use crate::registry::{PrimitiveEventInfo, ShadowKind};

/// Escape a string for inclusion in a single-quoted SQL literal.
pub fn sql_quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// DDL for the agent's system tables (Figures 5, 6, 7 and 17).
///
/// Two documented extensions over the paper's schemas: name columns are
/// widened from `varchar(30)` to `varchar(120)` so fully-qualified internal
/// names never truncate, and `SysEcaTrigger` carries the trigger-level
/// coupling/context/priority/kind needed for faithful recovery (the paper's
/// schema loses them).
pub fn system_tables_ddl() -> Vec<(&'static str, String)> {
    vec![
        (
            "SysPrimitiveEvent",
            "create table SysPrimitiveEvent (\
             dbName varchar(120) null, userName varchar(120) null, \
             eventName varchar(120) null, tableName varchar(120) null, \
             operation varchar(20) null, timeStamp datetime null, vNo int null)\n\
             create hash index ix_SysPrimitiveEvent_event on SysPrimitiveEvent (eventName)"
                .to_string(),
        ),
        (
            "SysCompositeEvent",
            "create table SysCompositeEvent (\
             dbName varchar(120) null, userName varchar(120) null, \
             eventName varchar(120) null, eventDescribe text null, \
             timeStamp datetime null, coupling char(10) null, \
             context char(10) null, priority char(10) null)\n\
             create hash index ix_SysCompositeEvent_event on SysCompositeEvent (eventName)"
                .to_string(),
        ),
        (
            "SysEcaTrigger",
            "create table SysEcaTrigger (\
             dbName varchar(120) null, userName varchar(120) null, \
             triggerName varchar(120) null, triggerProc text null, \
             timeStamp datetime null, eventName varchar(120) null, \
             coupling char(10) null, context char(12) null, \
             priority int null, kind char(10) null)\n\
             create hash index ix_SysEcaTrigger_name on SysEcaTrigger (triggerName)"
                .to_string(),
        ),
        (
            "sysContext",
            "create table sysContext (\
             tableName varchar(120) not null, context varchar(12) not null, \
             vNo int not null)\n\
             create hash index ix_sysContext_table on sysContext (tableName)"
                .to_string(),
        ),
        (
            "SysAgentWatermark",
            "create table SysAgentWatermark (\
             eventName varchar(120) not null, hwm int not null)\n\
             create hash index ix_SysAgentWatermark_event on SysAgentWatermark (eventName)"
                .to_string(),
        ),
        (
            "SysSagaStep",
            "create table SysSagaStep (\
             triggerName varchar(120) not null, stepIdx int not null, \
             stepProc varchar(160) not null, compProc varchar(160) null)\n\
             create hash index ix_SysSagaStep_trigger on SysSagaStep (triggerName)"
                .to_string(),
        ),
        (
            "SysSagaJournal",
            // Deliberately no timestamp column: a saga resumed after a
            // crash must journal byte-identically to an uninterrupted run
            // (DESIGN.md §12), and post-recovery clock values differ.
            "create table SysSagaJournal (\
             sagaKey varchar(200) not null, triggerName varchar(120) not null, \
             eventName varchar(120) not null, vNo int not null, \
             stepIdx int not null, phase char(8) not null, \
             state char(12) not null, idemKey varchar(240) not null)\n\
             create hash index ix_SysSagaJournal_key on SysSagaJournal (sagaKey)"
                .to_string(),
        ),
        (
            "SysWireJournal",
            // The serve layer's exactly-once EXEC journal (DESIGN.md §16).
            // One row per stamped wire request; the insert is prepended to
            // the client batch so journal row + user effects commit in one
            // WAL record, and the unique index turns a re-submitted seq
            // into a duplicate-key error the agent maps to a replay. No
            // timestamp column for the same reason as `SysSagaJournal`:
            // a replayed request must journal byte-identically.
            "create table SysWireJournal (\
             idemKey varchar(200) not null, sessionToken varchar(120) not null, \
             reqSeq int not null, response text null)\n\
             create unique hash index ux_SysWireJournal on SysWireJournal (idemKey)"
                .to_string(),
        ),
        (
            "SysDeadLetter",
            "create table SysDeadLetter (\
             triggerName varchar(120) not null, eventName varchar(120) not null, \
             procName varchar(160) not null, coupling char(10) not null, \
             context char(12) not null, vNo int not null, attempts int not null, \
             errorText text not null, params text not null)\n\
             create hash index ix_SysDeadLetter_trigger on SysDeadLetter (triggerName)"
                .to_string(),
        ),
    ]
}

/// Setup DDL for a new primitive event: the two shadow tables (Figure 11
/// creates both), each `= table schema + vNo`, plus the single-row version
/// helper table initialized to 0.
///
/// Each shadow table gets a hash index on `vNo`: every generated action
/// procedure selects the triggering tuples with `shadow.vNo = <current>`,
/// and the shadow tables only grow — without the index that equality probe
/// would degrade into a scan of the event's entire history.
pub fn primitive_event_setup(info: &PrimitiveEventInfo, table_sql: &str) -> String {
    format!(
        "select * into {ins} from {t} where 1=2\n\
         alter table {ins} add vNo int null\n\
         create hash index {ins}_vix on {ins} (vNo)\n\
         select * into {del} from {t} where 1=2\n\
         alter table {del} add vNo int null\n\
         create hash index {del}_vix on {del} (vNo)\n\
         create table {ver} (vNo int not null)\n\
         insert {ver} values (0)",
        ins = info.shadow_inserted,
        del = info.shadow_deleted,
        ver = info.version_table,
        t = table_sql,
    )
}

/// The native SQL trigger installed for a primitive event (Figure 11).
///
/// Body order: bump the event's occurrence number, refresh the version
/// helper, stamp the affected rows into the shadow table(s), notify the
/// agent over `syb_sendmsg`, then execute the IMMEDIATE trigger procedures
/// in priority order.
pub fn native_trigger_sql(
    info: &PrimitiveEventInfo,
    table_sql: &str,
    user: &str,
    host: &str,
    port: u16,
    immediate_procs: &[String],
) -> String {
    let mut body = String::new();
    body.push_str(&format!(
        "create trigger {name} on {t} for {op} as\n",
        name = naming::native_trigger(&info.name),
        t = table_sql,
        op = info.operation,
    ));
    // Bump the event's own version counter first so shadow rows carry the
    // occurrence number this firing is known by. Earlier versions routed
    // the bump through the shared SysPrimitiveEvent table, which would put
    // that one table in every evented DML's lock footprint and serialize
    // otherwise-disjoint batches; the per-event `{ver}` single-row table
    // keeps footprints disjoint (the Persistent Manager reads it back for
    // durable-vNo recovery).
    body.push_str(&format!(
        "update {ver} set vNo = vNo + 1\n",
        ver = info.version_table,
    ));
    for (shadow, kind) in info.stamped_shadows() {
        let pseudo = match kind {
            ShadowKind::Inserted => "inserted",
            ShadowKind::Deleted => "deleted",
        };
        body.push_str(&format!(
            "insert {shadow} select * from {pseudo}, {ver}\n",
            ver = info.version_table,
        ));
    }
    // Notification payload (§5.4): "<user> <table> <op> begin <event> <vNo>".
    body.push_str(&format!(
        "select syb_sendmsg({host}, {port}, {prefix} + str(vNo)) from {ver}\n",
        host = sql_quote(host),
        prefix = sql_quote(&format!(
            "{user} {table} {op} begin {event} ",
            table = table_sql,
            op = info.operation,
            event = info.name,
        )),
        ver = info.version_table,
    ));
    for proc in immediate_procs {
        body.push_str(&format!("execute {proc}\n"));
    }
    body
}

/// A `<table>.inserted` / `<table>.deleted` reference found in action SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextRef {
    /// Internal name of the user table.
    pub table: String,
    pub kind: ShadowKind,
}

/// Rewrite the `TableName.inserted` / `TableName.deleted` context accessors
/// (§5.6) in action SQL into their internal tmp-table names, returning the
/// rewritten SQL and the distinct references found.
///
/// `expand` maps a user-level table name to its internal form.
pub fn rewrite_context_refs(
    action: &str,
    expand: impl Fn(&str) -> String,
) -> (String, Vec<ContextRef>) {
    let tokens = match tokenize(action) {
        Ok(t) => t,
        Err(_) => return (action.to_string(), Vec::new()),
    };
    // Find ident (dot ident)* chains ending in .inserted/.deleted and
    // replace them textually, back to front so positions stay valid.
    let mut spans: Vec<(usize, usize, String, ContextRef)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenKind::Ident(_) = tokens[i].kind {
            // Walk the dotted chain.
            let start = i;
            let mut parts: Vec<&str> = Vec::new();
            let mut j = i;
            while let TokenKind::Ident(s) = &tokens[j].kind {
                parts.push(s);
                if matches!(tokens.get(j + 1).map(|t| &t.kind), Some(TokenKind::Dot))
                    && matches!(
                        tokens.get(j + 2).map(|t| &t.kind),
                        Some(TokenKind::Ident(_))
                    )
                {
                    j += 2;
                } else {
                    break;
                }
            }
            let last = parts.last().copied().unwrap_or("");
            let kind = if last.eq_ignore_ascii_case("inserted") {
                Some(ShadowKind::Inserted)
            } else if last.eq_ignore_ascii_case("deleted") {
                Some(ShadowKind::Deleted)
            } else {
                None
            };
            if let Some(kind) = kind {
                if parts.len() >= 2 {
                    let table_user = parts[..parts.len() - 1].join(".");
                    let table = expand(&table_user);
                    let tmp = match kind {
                        ShadowKind::Inserted => naming::tmp_inserted(&table),
                        ShadowKind::Deleted => naming::tmp_deleted(&table),
                    };
                    let begin = tokens[start].pos;
                    let end = tokens[j].pos
                        + match &tokens[j].kind {
                            TokenKind::Ident(s) => s.len(),
                            _ => 0,
                        };
                    spans.push((begin, end, tmp, ContextRef { table, kind }));
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    let mut out = action.to_string();
    let mut refs: Vec<ContextRef> = Vec::new();
    for (begin, end, tmp, r) in spans.iter().rev() {
        out.replace_range(*begin..*end, tmp);
        if !refs.contains(r) {
            refs.push(r.clone());
        }
    }
    refs.reverse();
    (out, refs)
}

/// DDL creating a context tmp table as an empty clone of a shadow table.
pub fn tmp_table_ddl(tmp: &str, shadow: &str) -> String {
    format!("select * into {tmp} from {shadow} where 1=2")
}

/// One (shadow → tmp) context-processing source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSource {
    pub tmp: String,
    pub shadow: String,
}

/// The action procedure for an LED-dispatched trigger (Figure 14): context
/// processing joins each relevant shadow table with `sysContext` on
/// `(tableName, vNo)`, refills the tmp tables, then runs the action.
pub fn led_action_proc(
    proc_name: &str,
    context: ParameterContext,
    sources: &[ContextSource],
    rewritten_action: &str,
) -> String {
    let mut body = format!("create procedure {proc_name} as\n");
    let mut cleared: Vec<&str> = Vec::new();
    for s in sources {
        if !cleared.contains(&s.tmp.as_str()) {
            body.push_str(&format!("delete {}\n", s.tmp));
            cleared.push(&s.tmp);
        }
    }
    for s in sources {
        body.push_str(&format!(
            "insert {tmp} select {shadow}.* from {shadow}, sysContext \
             where sysContext.context = {ctx} and sysContext.tableName = {sh} \
             and {shadow}.vNo = sysContext.vNo\n",
            tmp = s.tmp,
            shadow = s.shadow,
            ctx = sql_quote(context.as_str()),
            sh = sql_quote(&s.shadow),
        ));
    }
    body.push_str(rewritten_action);
    body.push('\n');
    body
}

/// The action procedure for a native-embedded (Figure 11) trigger: context
/// processing joins the shadow with the event's version helper (the current
/// occurrence), then runs the action.
pub fn native_action_proc(
    proc_name: &str,
    info: &PrimitiveEventInfo,
    refs: &[ContextRef],
    rewritten_action: &str,
) -> String {
    let mut body = format!("create procedure {proc_name} as\n");
    for r in refs {
        let (tmp, shadow) = match r.kind {
            ShadowKind::Inserted => (naming::tmp_inserted(&r.table), info.shadow_inserted.clone()),
            ShadowKind::Deleted => (naming::tmp_deleted(&r.table), info.shadow_deleted.clone()),
        };
        body.push_str(&format!(
            "delete {tmp}\n\
             insert {tmp} select {shadow}.* from {shadow}, {ver} \
             where {shadow}.vNo = {ver}.vNo\n",
            ver = info.version_table,
        ));
    }
    body.push_str(rewritten_action);
    body.push('\n');
    body
}

/// INSERT statements persisting a primitive event (Figure 11's generated
/// `insert SysPrimitiveEvent ...`).
pub fn persist_primitive_sql(
    db: &str,
    user: &str,
    info: &PrimitiveEventInfo,
    table_sql: &str,
) -> String {
    format!(
        "insert SysPrimitiveEvent values ({}, {}, {}, {}, {}, getdate(), 0)",
        sql_quote(db),
        sql_quote(user),
        sql_quote(&info.name),
        sql_quote(table_sql),
        sql_quote(info.operation.as_str()),
    )
}

/// INSERT persisting a composite event (Figure 14's generated insert).
pub fn persist_composite_sql(
    db: &str,
    user: &str,
    event: &str,
    expr_src: &str,
    coupling: &str,
    context: &str,
    priority: i32,
) -> String {
    format!(
        "insert SysCompositeEvent values ({}, {}, {}, {}, getdate(), {}, {}, {})",
        sql_quote(db),
        sql_quote(user),
        sql_quote(event),
        sql_quote(expr_src),
        sql_quote(coupling),
        sql_quote(context),
        sql_quote(&priority.to_string()),
    )
}

/// INSERT persisting a trigger row.
#[allow(clippy::too_many_arguments)]
pub fn persist_trigger_sql(
    db: &str,
    user: &str,
    trigger: &str,
    proc: &str,
    event: &str,
    coupling: &str,
    context: &str,
    priority: i32,
    kind: &str,
) -> String {
    format!(
        "insert SysEcaTrigger values ({}, {}, {}, {}, getdate(), {}, {}, {}, {}, {})",
        sql_quote(db),
        sql_quote(user),
        sql_quote(trigger),
        sql_quote(proc),
        sql_quote(event),
        sql_quote(coupling),
        sql_quote(context),
        priority,
        sql_quote(kind),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsql::ast::TriggerOp;

    fn info() -> PrimitiveEventInfo {
        PrimitiveEventInfo {
            name: "sentineldb.sharma.addStk".into(),
            table: "sentineldb.sharma.stock".into(),
            operation: TriggerOp::Insert,
            shadow_inserted: "sentineldb.sharma.addStk_inserted".into(),
            shadow_deleted: "sentineldb.sharma.addStk_deleted".into(),
            version_table: "sentineldb.sharma.addStk_ver".into(),
        }
    }

    #[test]
    fn sql_quote_escapes() {
        assert_eq!(sql_quote("a'b"), "'a''b'");
        assert_eq!(sql_quote("plain"), "'plain'");
    }

    #[test]
    fn system_tables_parse() {
        for (name, ddl) in system_tables_ddl() {
            let stmts =
                relsql::parser::parse_script(&ddl).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Each entry carries the CREATE TABLE plus its lookup-key index.
            assert_eq!(stmts.len(), 2, "{name}");
            assert!(
                matches!(stmts[1], relsql::ast::Stmt::CreateIndex { .. }),
                "{name}: second statement should create the lookup index"
            );
        }
    }

    #[test]
    fn setup_sql_parses_and_mentions_figure_11_artifacts() {
        let sql = primitive_event_setup(&info(), "stock");
        relsql::parser::parse_script(&sql).unwrap();
        assert!(
            sql.contains("select * into sentineldb.sharma.addStk_inserted from stock where 1=2")
        );
        assert!(sql.contains("add vNo int null"));
        assert!(sql.contains("insert sentineldb.sharma.addStk_ver values (0)"));
    }

    #[test]
    fn native_trigger_shape() {
        let sql = native_trigger_sql(
            &info(),
            "stock",
            "sharma",
            "128.227.205.215",
            10006,
            &["sentineldb.sharma.t_addStk__Proc".to_string()],
        );
        relsql::parser::parse_script(&sql).unwrap();
        assert!(sql.contains("create trigger sentineldb.sharma.addStk__evtrig on stock for insert"));
        assert!(sql.contains("update sentineldb.sharma.addStk_ver set vNo = vNo + 1"));
        // The bump must stay off the shared SysPrimitiveEvent table so DML
        // on different evented tables keeps disjoint lock footprints.
        assert!(!sql.contains("update SysPrimitiveEvent"));
        assert!(sql.contains("insert sentineldb.sharma.addStk_inserted select * from inserted"));
        assert!(sql.contains("syb_sendmsg('128.227.205.215', 10006"));
        assert!(sql.contains("begin sentineldb.sharma.addStk "));
        assert!(sql.contains("execute sentineldb.sharma.t_addStk__Proc"));
        // Insert-only event must not touch the deleted shadow.
        assert!(!sql.contains("from deleted"));
    }

    #[test]
    fn native_trigger_update_op_stamps_both_shadows() {
        let mut i = info();
        i.operation = TriggerOp::Update;
        let sql = native_trigger_sql(&i, "stock", "u", "h", 1, &[]);
        assert!(sql.contains("select * from inserted"));
        assert!(sql.contains("select * from deleted"));
    }

    #[test]
    fn rewrite_example_2_action() {
        // §5.3: `select symbol, price from stock.inserted`
        let expand = |t: &str| format!("sentineldb.sharma.{t}");
        let (out, refs) = rewrite_context_refs("select symbol, price from stock.inserted", expand);
        assert_eq!(
            out,
            "select symbol, price from sentineldb.sharma.stock_inserted_tmp"
        );
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].table, "sentineldb.sharma.stock");
        assert_eq!(refs[0].kind, ShadowKind::Inserted);
    }

    #[test]
    fn rewrite_multiple_and_qualified_refs() {
        let expand = |t: &str| {
            if t.matches('.').count() >= 2 {
                t.to_string()
            } else {
                format!("db.u.{t}")
            }
        };
        let (out, refs) = rewrite_context_refs(
            "select * from stock.inserted, db.u.orders.deleted where stock.inserted.vNo > 0",
            expand,
        );
        assert!(out.contains("db.u.stock_inserted_tmp,"));
        assert!(out.contains("db.u.orders_deleted_tmp"));
        // The qualified column ref `stock.inserted.vNo` — its chain ends in
        // `vNo`, not inserted/deleted, so it is left alone. (Users access
        // tmp columns through the rewritten FROM alias semantics instead.)
        assert!(out.contains("stock.inserted.vNo"));
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn rewrite_no_refs_is_identity() {
        let (out, refs) =
            rewrite_context_refs("select * from stock where a = 1", |t| t.to_string());
        assert_eq!(out, "select * from stock where a = 1");
        assert!(refs.is_empty());
    }

    #[test]
    fn rewrite_does_not_touch_plain_inserted() {
        // Bare `inserted` (no table qualifier) is the native pseudo-table.
        let (out, refs) =
            rewrite_context_refs("insert log select * from inserted", |t| t.to_string());
        assert_eq!(out, "insert log select * from inserted");
        assert!(refs.is_empty());
    }

    #[test]
    fn led_proc_matches_figure_14_shape() {
        let sources = [ContextSource {
            tmp: "sentineldb.sharma.stock_inserted_tmp".into(),
            shadow: "sentineldb.sharma.addStk_inserted".into(),
        }];
        let sql = led_action_proc(
            "sentineldb.sharma.t_and__Proc",
            ParameterContext::Recent,
            &sources,
            "select symbol, price from sentineldb.sharma.stock_inserted_tmp",
        );
        relsql::parser::parse_script(&sql).unwrap();
        assert!(sql.contains("create procedure sentineldb.sharma.t_and__Proc"));
        assert!(sql.contains("delete sentineldb.sharma.stock_inserted_tmp"));
        assert!(sql.contains("sysContext.context = 'RECENT'"));
        assert!(sql.contains("sysContext.tableName = 'sentineldb.sharma.addStk_inserted'"));
        assert!(sql.contains(".vNo = sysContext.vNo"));
    }

    #[test]
    fn led_proc_clears_each_tmp_once() {
        let sources = [
            ContextSource {
                tmp: "t_tmp".into(),
                shadow: "s1".into(),
            },
            ContextSource {
                tmp: "t_tmp".into(),
                shadow: "s2".into(),
            },
        ];
        let sql = led_action_proc("p", ParameterContext::Chronicle, &sources, "print 'x'");
        assert_eq!(sql.matches("delete t_tmp").count(), 1);
        assert_eq!(sql.matches("insert t_tmp").count(), 2);
    }

    #[test]
    fn native_proc_joins_version_table() {
        let refs = [ContextRef {
            table: "sentineldb.sharma.stock".into(),
            kind: ShadowKind::Inserted,
        }];
        let sql = native_action_proc(
            "sentineldb.sharma.t_addStk__Proc",
            &info(),
            &refs,
            "select * from sentineldb.sharma.stock_inserted_tmp",
        );
        relsql::parser::parse_script(&sql).unwrap();
        assert!(sql.contains("sentineldb.sharma.addStk_ver"));
        assert!(sql.contains(".vNo = sentineldb.sharma.addStk_ver.vNo"));
    }

    #[test]
    fn persist_statements_parse() {
        let i = info();
        for sql in [
            persist_primitive_sql("sentineldb", "sharma", &i, "stock"),
            persist_composite_sql(
                "sentineldb",
                "sharma",
                "sentineldb.sharma.addDel",
                "(a ^ b)",
                "IMMEDIATE",
                "RECENT",
                0,
            ),
            persist_trigger_sql(
                "sentineldb",
                "sharma",
                "sentineldb.sharma.t_and",
                "sentineldb.sharma.t_and__Proc",
                "sentineldb.sharma.addDel",
                "IMMEDIATE",
                "RECENT",
                0,
                "led",
            ),
        ] {
            relsql::parser::parse_script(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn tmp_ddl_parses() {
        let sql = tmp_table_ddl("a_tmp", "a_shadow");
        relsql::parser::parse_script(&sql).unwrap();
        assert_eq!(sql, "select * into a_tmp from a_shadow where 1=2");
    }
}
