//! The Persistent Manager (§4, Figure 8).
//!
//! Runs over its own high-privilege connection to the SQL server and owns
//! the agent's system tables (`SysPrimitiveEvent`, `SysCompositeEvent`,
//! `SysEcaTrigger`, `sysContext`, `SysAgentWatermark`, `SysSagaStep`,
//! `SysSagaJournal`, `SysWireJournal`, `SysDeadLetter`). All ECA rules are
//! persisted through
//! here and restored from here when the agent starts over an existing
//! database; the watermark table additionally records, per event, the
//! highest occurrence number the agent has raised, so a restarted agent
//! can replay occurrences it missed while down. The saga tables record
//! step lists and the per-instance execution journal (DESIGN.md §12);
//! the dead-letter table mirrors the action handler's queue so parked
//! actions survive a cold restart.

use std::collections::HashMap;
use std::sync::Arc;

use relsql::{BatchResult, Session, SqlServer, Value};

use crate::codegen::{sql_quote, system_tables_ddl};
use crate::error::{AgentError, Result};
use crate::saga::SagaJournalRow;

/// A `SysPrimitiveEvent` row, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedPrimitive {
    pub db: String,
    pub user: String,
    pub event: String,
    pub table: String,
    pub operation: String,
    pub vno: i64,
}

/// A `SysCompositeEvent` row, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedComposite {
    pub db: String,
    pub user: String,
    pub event: String,
    pub expr_src: String,
    pub coupling: String,
    pub context: String,
    pub priority: i32,
}

/// A `SysEcaTrigger` row, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedTrigger {
    pub db: String,
    pub user: String,
    pub name: String,
    pub proc_name: String,
    pub event: String,
    pub coupling: String,
    pub context: String,
    pub priority: i32,
    pub kind: String,
}

/// A `SysSagaStep` row, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedSagaStep {
    pub trigger: String,
    pub step_idx: i64,
    pub step_proc: String,
    pub comp_proc: Option<String>,
}

/// A `SysDeadLetter` row, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedDeadLetter {
    pub trigger: String,
    pub event: String,
    pub proc_name: String,
    pub coupling: String,
    pub context: String,
    pub vno: i64,
    pub attempts: i64,
    pub error: String,
    pub params: String,
}

/// The Persistent Manager.
pub struct PersistentManager {
    session: Session,
}

impl PersistentManager {
    /// Open the manager's privileged connection (the paper grants it DBA so
    /// it can create system tables).
    pub fn new(server: &Arc<SqlServer>) -> Self {
        PersistentManager {
            // Live reads: the manager is queried from the agent's pump,
            // which reacts to datagrams enqueued before the triggering
            // batch publishes its MVCC versions (see `SessionCtx`).
            session: server.session("master", "eca_admin").with_live_reads(),
        }
    }

    /// Create any missing system tables. Returns how many were created.
    pub fn ensure_system_tables(&self) -> Result<usize> {
        let mut created = 0;
        for (name, ddl) in system_tables_ddl() {
            let exists = self.session.server().snapshot().database().has_table(name);
            if !exists {
                self.session.execute(&ddl)?;
                created += 1;
            }
        }
        Ok(created)
    }

    /// Run arbitrary SQL on the manager's connection.
    pub fn run(&self, sql: &str) -> Result<BatchResult> {
        self.session.execute(sql).map_err(AgentError::from)
    }

    pub fn delete_trigger_row(&self, trigger: &str) -> Result<()> {
        self.run(&format!(
            "delete SysEcaTrigger where triggerName = {}",
            sql_quote(trigger)
        ))?;
        Ok(())
    }

    pub fn delete_primitive_row(&self, event: &str) -> Result<()> {
        self.run(&format!(
            "delete SysPrimitiveEvent where eventName = {}",
            sql_quote(event)
        ))?;
        Ok(())
    }

    pub fn delete_composite_row(&self, event: &str) -> Result<()> {
        self.run(&format!(
            "delete SysCompositeEvent where eventName = {}",
            sql_quote(event)
        ))?;
        Ok(())
    }

    /// Load the per-event notification high-water marks.
    pub fn load_watermarks(&self) -> Result<std::collections::HashMap<String, i64>> {
        let r = self.run("select eventName, hwm from SysAgentWatermark")?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(std::collections::HashMap::new()),
        };
        rows.iter()
            .map(|row| Ok((str_at(row, 0)?, int_at(row, 1)?)))
            .collect()
    }

    /// Upsert one event's high-water mark.
    ///
    /// Written through engine state directly rather than as a
    /// delete-then-insert batch: the exactly-once pump write-behinds a
    /// watermark after nearly every statement, and `SysAgentWatermark` is
    /// one shared table — two scheduled batches on it per statement would
    /// re-serialize every client the per-table lock scheduler just made
    /// parallel. The table is owned exclusively by this manager, so the
    /// row lock alone makes the upsert atomic; a missing table (system
    /// tables not ensured yet) falls back to the SQL path for its error.
    ///
    /// On a *durable* server the direct-write shortcut would bypass the
    /// WAL — the watermark would vanish on a crash and recovery would
    /// re-fire actions the agent already acknowledged. There the upsert
    /// goes through the logged SQL path instead: slower (one exclusive
    /// batch per save), but the watermark survives hard process death,
    /// which is the whole point of opening from a data dir.
    pub fn save_watermark(&self, event: &str, hwm: i64) -> Result<()> {
        // Live-row write (not `snapshot`) on purpose: `with_table_rows_mut`
        // republishes the table's MVCC version when the guard drops, so
        // snapshot readers see the new watermark too.
        let updated = !self.session.server().is_durable()
            && self
                .session
                .server()
                .with_table_rows_mut("sysagentwatermark", |rows| {
                    match rows
                        .iter_mut()
                        .find(|r| matches!(r.first(), Some(Value::Str(ev)) if ev == event))
                    {
                        Some(row) => row[1] = Value::Int(hwm),
                        None => rows.push(vec![Value::Str(event.to_string()), Value::Int(hwm)]),
                    }
                })
                .is_some();
        if updated {
            return Ok(());
        }
        self.run(&format!(
            "delete SysAgentWatermark where eventName = {ev}\n\
             insert SysAgentWatermark values ({ev}, {hwm})",
            ev = sql_quote(event),
        ))?;
        Ok(())
    }

    pub fn delete_watermark_row(&self, event: &str) -> Result<()> {
        self.run(&format!(
            "delete SysAgentWatermark where eventName = {}",
            sql_quote(event)
        ))?;
        Ok(())
    }

    /// Probe the wire-journal for an idempotency key (DESIGN.md §16).
    ///
    /// `None` — the key was never journaled (the request is fresh).
    /// `Some(None)` — journaled, effects applied, but the rendered
    /// response was never backfilled (a crash hit the window between
    /// applying and recording; the caller answers with a placeholder).
    /// `Some(Some(line))` — journaled with its recorded response line.
    pub fn wire_journal_lookup(&self, idem_key: &str) -> Result<Option<Option<String>>> {
        let r = self.run(&format!(
            "select response from SysWireJournal where idemKey = {}",
            sql_quote(idem_key)
        ))?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(None),
        };
        match rows.first().map(|row| row.first()) {
            None => Ok(None),
            Some(Some(Value::Str(s))) => Ok(Some(Some(s.clone()))),
            Some(_) => Ok(Some(None)),
        }
    }

    /// Backfill the rendered response line for a journaled request. A
    /// separate (second) WAL record on purpose: the effects + journal row
    /// committed atomically already, and a crash before this backfill only
    /// degrades a replay to a placeholder — never to a re-application.
    pub fn wire_journal_record(&self, idem_key: &str, line: &str) -> Result<()> {
        self.run(&format!(
            "update SysWireJournal set response = {} where idemKey = {}",
            sql_quote(line),
            sql_quote(idem_key)
        ))?;
        Ok(())
    }

    /// Drop journal rows a session no longer needs: everything below
    /// `below_seq` for `token` (the client acknowledged past them), or the
    /// whole session when `below_seq` is `i64::MAX` (QUIT / expiry).
    pub fn wire_journal_prune(&self, token: &str, below_seq: i64) -> Result<()> {
        self.run(&format!(
            "delete SysWireJournal where sessionToken = {} and reqSeq < {below_seq}",
            sql_quote(token)
        ))?;
        Ok(())
    }

    /// The durable occurrence counters — the reliability layer's source of
    /// truth for anti-entropy sweeps.
    ///
    /// The native trigger bumps each event's single-row `{event}_ver` table
    /// (not the shared `SysPrimitiveEvent`, which would serialize disjoint
    /// DML under per-table lock scheduling), so the live counter lives
    /// there; `SysPrimitiveEvent.vNo` is the definition-time seed and the
    /// fallback when the version table is missing (e.g. a half-installed
    /// event).
    /// Reads a [`SqlServer::snapshot`] (like `ensure_system_tables`)
    /// instead of issuing SQL: the exactly-once pump calls this on every
    /// anti-entropy pass, and a scheduled `select` per event would both pay
    /// per-batch scheduling overhead and contend on the very version tables
    /// every evented DML holds in its lock footprint — serializing the
    /// disjoint-table batches the scheduler exists to parallelize. The
    /// snapshot pins *live* rows (not the published MVCC versions), so a
    /// counter bumped by a batch that has executed but not yet published is
    /// still visible — `observe_durable` must never see a counter below a
    /// vNo the admission tracker already admitted, or it would read the dip
    /// as a rollback and re-fire the action.
    pub fn load_durable_vnos(&self) -> Result<Vec<(String, i64)>> {
        let snap = self.session.server().snapshot();
        Ok({
            let db = snap.database();
            let spe = match db.table("sysprimitiveevent") {
                Some(t) => t,
                None => return Ok(Vec::new()),
            };
            let (ev_i, vno_i) = match (spe.schema.index_of("eventName"), spe.schema.index_of("vNo"))
            {
                (Some(e), Some(v)) => (e, v),
                _ => return Ok(Vec::new()),
            };
            let seeds: Vec<(String, i64)> = spe
                .rows()
                .iter()
                .filter_map(|row| match (row.get(ev_i), row.get(vno_i)) {
                    (Some(Value::Str(ev)), Some(Value::Int(seed))) => Some((ev.clone(), *seed)),
                    _ => None,
                })
                .collect();
            let mut out: Vec<(String, i64)> = seeds
                .into_iter()
                .map(|(event, seed)| {
                    let key = relsql::catalog::name_key(&crate::naming::version_table(&event));
                    let live = db.table(&key).and_then(|t| {
                        t.rows().first().and_then(|row| match row.first() {
                            Some(Value::Int(n)) => Some(*n),
                            _ => None,
                        })
                    });
                    (event, live.unwrap_or(seed))
                })
                .collect();
            out.sort();
            out
        })
    }

    pub fn load_primitives(&self) -> Result<Vec<PersistedPrimitive>> {
        let r = self.run(
            "select dbName, userName, eventName, tableName, operation, vNo \
             from SysPrimitiveEvent order by eventName",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        rows.iter()
            .map(|row| {
                let event = str_at(row, 2)?;
                // Same live-counter-over-seed rule as `load_durable_vnos`.
                let vno = self
                    .run(&format!(
                        "select vNo from {}",
                        crate::naming::version_table(&event)
                    ))
                    .ok()
                    .and_then(|r| {
                        r.last_select()
                            .and_then(|q| q.rows.first())
                            .and_then(|row| int_at(row, 0).ok())
                    })
                    .unwrap_or(int_at(row, 5)?);
                Ok(PersistedPrimitive {
                    db: str_at(row, 0)?,
                    user: str_at(row, 1)?,
                    event,
                    table: str_at(row, 3)?,
                    operation: str_at(row, 4)?,
                    vno,
                })
            })
            .collect()
    }

    pub fn load_composites(&self) -> Result<Vec<PersistedComposite>> {
        let r = self.run(
            "select dbName, userName, eventName, eventDescribe, coupling, context, priority \
             from SysCompositeEvent order by timeStamp",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        rows.iter()
            .map(|row| {
                Ok(PersistedComposite {
                    db: str_at(row, 0)?,
                    user: str_at(row, 1)?,
                    event: str_at(row, 2)?,
                    expr_src: str_at(row, 3)?,
                    coupling: str_at(row, 4)?,
                    context: str_at(row, 5)?,
                    priority: str_at(row, 6)?.trim().parse().unwrap_or(0),
                })
            })
            .collect()
    }

    pub fn load_triggers(&self) -> Result<Vec<PersistedTrigger>> {
        let r = self.run(
            "select dbName, userName, triggerName, triggerProc, eventName, \
             coupling, context, priority, kind \
             from SysEcaTrigger order by timeStamp",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        rows.iter()
            .map(|row| {
                Ok(PersistedTrigger {
                    db: str_at(row, 0)?,
                    user: str_at(row, 1)?,
                    name: str_at(row, 2)?,
                    proc_name: str_at(row, 3)?,
                    event: str_at(row, 4)?,
                    coupling: str_at(row, 5)?,
                    context: str_at(row, 6)?,
                    priority: int_at(row, 7)? as i32,
                    kind: str_at(row, 8)?,
                })
            })
            .collect()
    }

    /// Load every trigger's persisted saga step list, keyed by trigger
    /// name, each list in step order.
    pub fn load_saga_steps(&self) -> Result<HashMap<String, Vec<PersistedSagaStep>>> {
        let r = self.run(
            "select triggerName, stepIdx, stepProc, compProc \
             from SysSagaStep order by triggerName, stepIdx",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(HashMap::new()),
        };
        let mut out: HashMap<String, Vec<PersistedSagaStep>> = HashMap::new();
        for row in rows {
            let step = PersistedSagaStep {
                trigger: str_at(row, 0)?,
                step_idx: int_at(row, 1)?,
                step_proc: str_at(row, 2)?,
                comp_proc: match row.get(3) {
                    Some(Value::Null) | None => None,
                    _ => Some(str_at(row, 3)?),
                },
            };
            out.entry(step.trigger.clone()).or_default().push(step);
        }
        Ok(out)
    }

    pub fn delete_saga_steps(&self, trigger: &str) -> Result<()> {
        self.run(&format!(
            "delete SysSagaStep where triggerName = {}",
            sql_quote(trigger)
        ))?;
        Ok(())
    }

    /// The full saga journal, in insertion order (recovery groups it by
    /// saga key itself).
    pub fn load_saga_journal(&self) -> Result<Vec<SagaJournalRow>> {
        let r = self.run(
            "select sagaKey, triggerName, eventName, vNo, stepIdx, phase, state, idemKey \
             from SysSagaJournal",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        Ok(rows
            .iter()
            .filter_map(|r| SagaJournalRow::decode(r))
            .collect())
    }

    /// The durable dead-letter mirror, in insertion order.
    pub fn load_dead_letters(&self) -> Result<Vec<PersistedDeadLetter>> {
        let r = self.run(
            "select triggerName, eventName, procName, coupling, context, \
             vNo, attempts, errorText, params from SysDeadLetter",
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        rows.iter()
            .map(|row| {
                Ok(PersistedDeadLetter {
                    trigger: str_at(row, 0)?,
                    event: str_at(row, 1)?,
                    proc_name: str_at(row, 2)?,
                    coupling: str_at(row, 3)?,
                    context: str_at(row, 4)?,
                    vno: int_at(row, 5)?,
                    attempts: int_at(row, 6)?,
                    error: str_at(row, 7)?,
                    params: str_at(row, 8)?,
                })
            })
            .collect()
    }
}

fn str_at(row: &[Value], i: usize) -> Result<String> {
    match row.get(i) {
        Some(Value::Str(s)) => Ok(s.trim().to_string()),
        Some(Value::Null) => Ok(String::new()),
        other => Err(AgentError::Recovery(format!(
            "expected string in system table column {i}, found {other:?}"
        ))),
    }
}

fn int_at(row: &[Value], i: usize) -> Result<i64> {
    match row.get(i) {
        Some(Value::Int(n)) => Ok(*n),
        Some(Value::Null) => Ok(0),
        other => Err(AgentError::Recovery(format!(
            "expected int in system table column {i}, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_creates_all_nine_tables_idempotently() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        assert_eq!(pm.ensure_system_tables().unwrap(), 9);
        assert_eq!(pm.ensure_system_tables().unwrap(), 0);
        for t in [
            "SysPrimitiveEvent",
            "SysCompositeEvent",
            "SysEcaTrigger",
            "sysContext",
            "SysAgentWatermark",
            "SysSagaStep",
            "SysSagaJournal",
            "SysWireJournal",
            "SysDeadLetter",
        ] {
            assert!(server.snapshot().database().has_table(t), "{t}");
        }
    }

    #[test]
    fn saga_steps_roundtrip_grouped_and_ordered() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysSagaStep values ('db.u.t1', 1, 'db.u.p2', null)\n\
             insert SysSagaStep values ('db.u.t1', 0, 'db.u.p1', 'db.u.c1')\n\
             insert SysSagaStep values ('db.u.t2', 0, 'db.u.q1', null)",
        )
        .unwrap();
        let steps = pm.load_saga_steps().unwrap();
        assert_eq!(steps.len(), 2);
        let t1 = &steps["db.u.t1"];
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].step_idx, 0, "ordered by stepIdx");
        assert_eq!(t1[0].comp_proc.as_deref(), Some("db.u.c1"));
        assert_eq!(t1[1].comp_proc, None);
        pm.delete_saga_steps("db.u.t1").unwrap();
        assert_eq!(pm.load_saga_steps().unwrap().len(), 1);
    }

    #[test]
    fn saga_journal_and_dead_letters_roundtrip() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysSagaJournal values \
             ('db.u.t#3', 'db.u.t', 'db.u.e', 3, -1, 'saga', 'started', 'db.u.t#3/saga-1')",
        )
        .unwrap();
        let journal = pm.load_saga_journal().unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(journal[0].key, "db.u.t#3");
        assert_eq!(journal[0].step, -1);
        // char() padding is trimmed on load.
        assert_eq!(journal[0].phase, "saga");
        assert_eq!(journal[0].state, "started");
        pm.run(
            "insert SysDeadLetter values \
             ('db.u.t', 'db.u.e', 'db.u.p', 'IMMEDIATE', 'RECENT', 3, 2, 'boom', 's,3,1')",
        )
        .unwrap();
        let letters = pm.load_dead_letters().unwrap();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].coupling, "IMMEDIATE");
        assert_eq!(letters[0].vno, 3);
        assert_eq!(letters[0].params, "s,3,1");
    }

    #[test]
    fn watermark_upsert_load_delete_roundtrip() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        assert!(pm.load_watermarks().unwrap().is_empty());
        pm.save_watermark("db.u.e", 3).unwrap();
        pm.save_watermark("db.u.e", 7).unwrap(); // upsert replaces
        pm.save_watermark("db.u.f", 1).unwrap();
        let wm = pm.load_watermarks().unwrap();
        assert_eq!(wm.len(), 2);
        assert_eq!(wm.get("db.u.e"), Some(&7));
        assert_eq!(wm.get("db.u.f"), Some(&1));
        pm.delete_watermark_row("db.u.e").unwrap();
        assert_eq!(pm.load_watermarks().unwrap().len(), 1);
    }

    #[test]
    fn durable_vnos_read_back_from_primitive_rows() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysPrimitiveEvent values \
             ('db', 'u', 'db.u.e', 'stock', 'insert', getdate(), 4)",
        )
        .unwrap();
        assert_eq!(
            pm.load_durable_vnos().unwrap(),
            vec![("db.u.e".to_string(), 4)]
        );
    }

    #[test]
    fn durable_vnos_prefer_live_version_table_over_seed() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysPrimitiveEvent values \
             ('db', 'u', 'db.u.e', 'stock', 'insert', getdate(), 4)",
        )
        .unwrap();
        // The native trigger bumps db.u.e_ver, not SysPrimitiveEvent.
        pm.run("create table db.u.e_ver (vNo int not null)\ninsert db.u.e_ver values (9)")
            .unwrap();
        assert_eq!(
            pm.load_durable_vnos().unwrap(),
            vec![("db.u.e".to_string(), 9)]
        );
    }

    #[test]
    fn roundtrip_primitive_rows() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysPrimitiveEvent values \
             ('sentineldb', 'sharma', 'sentineldb.sharma.addStk', 'stock', 'insert', getdate(), 4)",
        )
        .unwrap();
        let rows = pm.load_primitives().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].event, "sentineldb.sharma.addStk");
        assert_eq!(rows[0].operation, "insert");
        assert_eq!(rows[0].vno, 4);
    }

    #[test]
    fn roundtrip_composite_rows() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysCompositeEvent values \
             ('db', 'u', 'db.u.addDel', '(db.u.delStk ^ db.u.addStk)', getdate(), \
              'IMMEDIATE', 'RECENT', '3')",
        )
        .unwrap();
        let rows = pm.load_composites().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].expr_src, "(db.u.delStk ^ db.u.addStk)");
        assert_eq!(rows[0].priority, 3);
        // char(10) padding is trimmed.
        assert_eq!(rows[0].context, "RECENT");
    }

    #[test]
    fn roundtrip_trigger_rows_and_delete() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        pm.run(
            "insert SysEcaTrigger values \
             ('db', 'u', 'db.u.t1', 'db.u.t1__Proc', getdate(), 'db.u.e', \
              'DETACHED', 'CHRONICLE', 7, 'led')",
        )
        .unwrap();
        let rows = pm.load_triggers().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "db.u.t1");
        assert_eq!(rows[0].kind, "led");
        assert_eq!(rows[0].priority, 7);
        pm.delete_trigger_row("db.u.t1").unwrap();
        assert!(pm.load_triggers().unwrap().is_empty());
    }

    #[test]
    fn empty_tables_load_empty() {
        let server = SqlServer::new();
        let pm = PersistentManager::new(&server);
        pm.ensure_system_tables().unwrap();
        assert!(pm.load_primitives().unwrap().is_empty());
        assert!(pm.load_composites().unwrap().is_empty());
        assert!(pm.load_triggers().unwrap().is_empty());
    }
}
