//! Global Event Detector (GED) — the paper's §6 future work:
//! "support heterogeneous distributed active capability by using this
//! approach to enhance native capability and use a global event detector
//! for events and rules across application/systems."
//!
//! Each participating site is an [`EcaAgent`] over its own SQL server. A
//! site *exports* events; exported occurrences stream into the GED's own
//! Snoop detector under the global name `event::site` (the
//! `Eventname::AppId` form the Snoop BNF already provides). Global
//! composite events combine events from different sites; global rules run
//! their SQL action on a designated site, through that site's agent — so
//! cross-site actions enjoy the same transparency as local ones.
//!
//! Time: sites have independent clocks, so the GED orders occurrences by
//! arrival on its own logical counter (a deliberate simplification of
//! distributed time; see DESIGN.md). Unlike the agents' local rules, global
//! events and rules are *not* persisted — there is no global system
//! database to persist them in; re-register them at startup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use led::{Detector, Firing, Param, ParameterContext, RuleSpec};
use parking_lot::Mutex;
use relsql::BatchResult;

use crate::agent::EcaAgent;
use crate::error::{AgentError, Result};

/// A global rule: event + action SQL + the site the action runs on.
#[derive(Debug, Clone)]
struct GlobalRule {
    action_site: String,
    action_sql: String,
}

struct SiteEntry {
    agent: EcaAgent,
}

/// GED counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GedStats {
    /// Occurrences received from all sites.
    pub occurrences: u64,
    /// Global rule actions executed.
    pub actions: u64,
    /// Re-delivered occurrences (same global event + `vNo`) suppressed.
    pub duplicates_suppressed: u64,
}

/// A global rule action outcome.
#[derive(Debug)]
pub struct GlobalOutcome {
    pub rule: String,
    pub event: String,
    pub site: String,
    pub result: std::result::Result<BatchResult, String>,
}

struct GedInner {
    led: Mutex<Detector>,
    sites: Mutex<HashMap<String, SiteEntry>>,
    rules: Mutex<HashMap<String, GlobalRule>>,
    /// Arrival-order logical clock.
    clock: AtomicI64,
    /// Per-global-event `vNo` high-water marks: if a site's agent (or the
    /// link to it) re-delivers an occurrence, the GED suppresses it rather
    /// than firing global rules twice. Gap *repair* stays with the site
    /// agents — only they can read their durable tables.
    seen_vnos: Mutex<HashMap<String, i64>>,
    occurrences: AtomicU64,
    actions: AtomicU64,
    duplicates_suppressed: AtomicU64,
    /// Outcomes of global actions, for inspection by the application.
    outcomes: Mutex<Vec<GlobalOutcome>>,
}

/// The Global Event Detector. Cheap to clone (shared state).
#[derive(Clone)]
pub struct GlobalEventDetector {
    inner: Arc<GedInner>,
}

impl Default for GlobalEventDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalEventDetector {
    pub fn new() -> Self {
        GlobalEventDetector {
            inner: Arc::new(GedInner {
                led: Mutex::new(Detector::new()),
                sites: Mutex::new(HashMap::new()),
                rules: Mutex::new(HashMap::new()),
                clock: AtomicI64::new(0),
                seen_vnos: Mutex::new(HashMap::new()),
                occurrences: AtomicU64::new(0),
                actions: AtomicU64::new(0),
                duplicates_suppressed: AtomicU64::new(0),
                outcomes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a site (an agent + its server) under a global site name.
    pub fn attach_site(&self, site: &str, agent: &EcaAgent) -> Result<()> {
        let mut sites = self.inner.sites.lock();
        if sites.contains_key(site) {
            return Err(AgentError::Naming(format!(
                "site '{site}' already attached"
            )));
        }
        sites.insert(
            site.to_string(),
            SiteEntry {
                agent: agent.clone(),
            },
        );
        Ok(())
    }

    /// Export a site's event to the GED: occurrences of `event_internal`
    /// on `site` will be raised globally as `event_internal::site`.
    pub fn export_event(&self, site: &str, event_internal: &str) -> Result<()> {
        let agent = {
            let sites = self.inner.sites.lock();
            sites
                .get(site)
                .map(|e| e.agent.clone())
                .ok_or_else(|| AgentError::Naming(format!("unknown site '{site}'")))?
        };
        if !agent.event_names().contains(&event_internal.to_string()) {
            return Err(AgentError::Naming(format!(
                "event '{event_internal}' is not defined on site '{site}'"
            )));
        }
        let global_name = global_event_name(event_internal, site);
        self.inner
            .led
            .lock()
            .define_primitive(&global_name)
            .map_err(AgentError::from)?;
        // Subscribe: forward matching occurrences into the global detector.
        let ged = self.clone();
        let wanted = event_internal.to_string();
        let gname = global_name.clone();
        agent.add_occurrence_listener(Arc::new(move |event, params, _site_ts| {
            if event == wanted {
                ged.raise(&gname, params.to_vec());
            }
        }));
        Ok(())
    }

    /// Define a global composite event over exported (`event::site`) and
    /// previously defined global events.
    pub fn define_global_event(
        &self,
        name: &str,
        expr_src: &str,
        context: ParameterContext,
    ) -> Result<()> {
        let expr = snoop::parse(expr_src)?;
        self.inner
            .led
            .lock()
            .define_composite(name, &expr, context)
            .map_err(AgentError::from)
    }

    /// Attach a global rule: when `event` is detected, run `action_sql` on
    /// `action_site` (through that site's agent, as an ordinary client).
    pub fn add_global_rule(
        &self,
        rule: &str,
        event: &str,
        action_site: &str,
        action_sql: &str,
    ) -> Result<()> {
        if !self.inner.sites.lock().contains_key(action_site) {
            return Err(AgentError::Naming(format!(
                "unknown action site '{action_site}'"
            )));
        }
        self.inner
            .led
            .lock()
            .add_rule(RuleSpec::new(rule, event))
            .map_err(AgentError::from)?;
        self.inner.rules.lock().insert(
            rule.to_string(),
            GlobalRule {
                action_site: action_site.to_string(),
                action_sql: action_sql.to_string(),
            },
        );
        Ok(())
    }

    /// Drop a global rule.
    pub fn drop_global_rule(&self, rule: &str) -> Result<()> {
        self.inner
            .led
            .lock()
            .drop_rule(rule)
            .map_err(AgentError::from)?;
        self.inner.rules.lock().remove(rule);
        Ok(())
    }

    fn raise(&self, global_event: &str, params: Vec<Param>) {
        self.inner.occurrences.fetch_add(1, Ordering::Relaxed);
        if let Some(vno) = params.first().and_then(|p| p.vno) {
            let mut seen = self.inner.seen_vnos.lock();
            let hwm = seen.entry(global_event.to_string()).or_insert(0);
            if vno <= *hwm {
                self.inner
                    .duplicates_suppressed
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            *hwm = vno;
        }
        let ts = self.inner.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let firings = match self.inner.led.lock().signal(global_event, params, ts) {
            Ok(f) => f,
            Err(_) => return, // event not globally registered (stale)
        };
        for f in firings {
            self.execute_global(&f);
        }
    }

    fn execute_global(&self, firing: &Firing) {
        let rule = match self.inner.rules.lock().get(&firing.rule).cloned() {
            Some(r) => r,
            None => return,
        };
        let agent = match self
            .inner
            .sites
            .lock()
            .get(&rule.action_site)
            .map(|e| e.agent.clone())
        {
            Some(a) => a,
            None => return,
        };
        self.inner.actions.fetch_add(1, Ordering::Relaxed);
        let client = agent.client("master", "ged");
        let result = client
            .execute(&rule.action_sql)
            .map(|r| r.server)
            .map_err(|e| e.to_string());
        self.inner.outcomes.lock().push(GlobalOutcome {
            rule: firing.rule.clone(),
            event: firing.event.clone(),
            site: rule.action_site,
            result,
        });
    }

    /// Drain the global action outcomes recorded so far.
    pub fn take_outcomes(&self) -> Vec<GlobalOutcome> {
        std::mem::take(&mut *self.inner.outcomes.lock())
    }

    pub fn stats(&self) -> GedStats {
        GedStats {
            occurrences: self.inner.occurrences.load(Ordering::Relaxed),
            actions: self.inner.actions.load(Ordering::Relaxed),
            duplicates_suppressed: self.inner.duplicates_suppressed.load(Ordering::Relaxed),
        }
    }

    /// Globally registered event names.
    pub fn event_names(&self) -> Vec<String> {
        self.inner.led.lock().event_names()
    }
}

/// The global name of a site's exported event (`Eventname::AppId` form).
pub fn global_event_name(event_internal: &str, site: &str) -> String {
    format!("{event_internal}::{site}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsql::{SqlServer, Value};

    fn site(db: &str) -> (EcaAgent, crate::agent::EcaClient) {
        let server = SqlServer::new();
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client(db, "u");
        client.execute("create table t (a int)").unwrap();
        client
            .execute("create trigger tr on t for insert event ev as print 'x'")
            .unwrap();
        (agent, client)
    }

    #[test]
    fn attach_and_export() {
        let ged = GlobalEventDetector::new();
        let (a1, _c1) = site("db1");
        ged.attach_site("site1", &a1).unwrap();
        assert!(ged.attach_site("site1", &a1).is_err(), "duplicate site");
        ged.export_event("site1", "db1.u.ev").unwrap();
        assert!(ged.event_names().contains(&"db1.u.ev::site1".to_string()));
        assert!(ged.export_event("site1", "db1.u.nosuch").is_err());
        assert!(ged.export_event("ghost", "db1.u.ev").is_err());
    }

    #[test]
    fn cross_site_composite_fires_action_on_third_site() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        let (a2, c2) = site("db2");
        ged.attach_site("s1", &a1).unwrap();
        ged.attach_site("s2", &a2).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        ged.export_event("s2", "db2.u.ev").unwrap();
        // Global AND across the two sites; action lands on site 2.
        ged.define_global_event(
            "bothSites",
            "db1.u.ev::s1 ^ db2.u.ev::s2",
            ParameterContext::Recent,
        )
        .unwrap();
        c2.execute("create table global_log (n int)").unwrap();
        ged.add_global_rule("gr1", "bothSites", "s2", "insert global_log values (1)")
            .unwrap();

        c1.execute("insert t values (1)").unwrap();
        assert_eq!(ged.stats().actions, 0, "one side only");
        c2.execute("insert t values (2)").unwrap();
        assert_eq!(ged.stats().actions, 1);
        let outcomes = ged.take_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_ok());
        let r = c2.execute("select count(*) from global_log").unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn global_rule_on_exported_primitive() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        ged.attach_site("s1", &a1).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        c1.execute("create table mirror (n int)").unwrap();
        ged.add_global_rule("gr", "db1.u.ev::s1", "s1", "insert mirror values (1)")
            .unwrap();
        for _ in 0..3 {
            c1.execute("insert t values (1)").unwrap();
        }
        assert_eq!(ged.stats().occurrences, 3);
        assert_eq!(ged.stats().actions, 3);
        let r = c1.execute("select count(*) from mirror").unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn drop_global_rule_stops_actions() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        ged.attach_site("s1", &a1).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        ged.add_global_rule("gr", "db1.u.ev::s1", "s1", "print 'x'")
            .unwrap();
        c1.execute("insert t values (1)").unwrap();
        assert_eq!(ged.stats().actions, 1);
        ged.drop_global_rule("gr").unwrap();
        c1.execute("insert t values (2)").unwrap();
        assert_eq!(ged.stats().actions, 1, "no more actions after drop");
        assert!(ged.drop_global_rule("gr").is_err());
    }

    #[test]
    fn duplicate_site_delivery_is_suppressed() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        ged.attach_site("s1", &a1).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        ged.add_global_rule("gr", "db1.u.ev::s1", "s1", "print 'x'")
            .unwrap();
        c1.execute("insert t values (1)").unwrap();
        assert_eq!(ged.stats().actions, 1);
        // A flaky link re-delivers the same occurrence (same vNo).
        ged.raise("db1.u.ev::s1", vec![Param::db("db1.u.ev", "shadow", 1, 0)]);
        assert_eq!(ged.stats().occurrences, 2, "received and counted");
        assert_eq!(ged.stats().duplicates_suppressed, 1);
        assert_eq!(ged.stats().actions, 1, "but not fired twice");
    }

    #[test]
    fn unknown_action_site_rejected() {
        let ged = GlobalEventDetector::new();
        let (a1, _c1) = site("db1");
        ged.attach_site("s1", &a1).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        assert!(ged
            .add_global_rule("gr", "db1.u.ev::s1", "mars", "print 'x'")
            .is_err());
    }

    #[test]
    fn cross_site_sequence_orders_by_arrival() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        let (a2, c2) = site("db2");
        ged.attach_site("s1", &a1).unwrap();
        ged.attach_site("s2", &a2).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        ged.export_event("s2", "db2.u.ev").unwrap();
        ged.define_global_event(
            "s1_then_s2",
            "db1.u.ev::s1 ; db2.u.ev::s2",
            ParameterContext::Recent,
        )
        .unwrap();
        ged.add_global_rule("gr", "s1_then_s2", "s1", "print 'seq'")
            .unwrap();
        // Wrong order: s2 first.
        c2.execute("insert t values (1)").unwrap();
        c1.execute("insert t values (1)").unwrap();
        assert_eq!(ged.stats().actions, 0);
        // Right order.
        c2.execute("insert t values (2)").unwrap();
        assert_eq!(ged.stats().actions, 1);
    }

    #[test]
    fn params_carry_site_shadow_tables() {
        let ged = GlobalEventDetector::new();
        let (a1, c1) = site("db1");
        ged.attach_site("s1", &a1).unwrap();
        ged.export_event("s1", "db1.u.ev").unwrap();
        ged.add_global_rule("gr", "db1.u.ev::s1", "s1", "print 'x'")
            .unwrap();
        c1.execute("insert t values (9)").unwrap();
        // The occurrence forwarded to the GED still references the site's
        // shadow table and vNo, so global actions *could* fetch rows.
        let outcomes = ged.take_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].site, "s1");
    }
}
