//! Exactly-once admission over the lossy notification channel.
//!
//! The paper (§6) leaves `syb_sendmsg` reliability open: datagrams can be
//! dropped, duplicated, reordered or delayed. The agent closes the gap by
//! treating the channel as a *wake-up hint* and the database as the source
//! of truth: the native trigger durably bumps the event's occurrence
//! number (`vNo` in `SysPrimitiveEvent`) and stamps the shadow rows
//! *before* the datagram is sent, so every occurrence is recoverable even
//! if its datagram never arrives.
//!
//! This module keeps a per-event **high-water mark** (the highest `vNo`
//! whose occurrence has been raised into the LED) and classifies each
//! arriving `(event, vNo)`:
//!
//! - `vNo > hwm` — fresh; any skipped numbers in `hwm+1..vNo` are gaps to
//!   synthesize from the durable shadow rows, in `vNo` order.
//! - `vNo <= hwm` and previously synthesized — the late arrival of a
//!   datagram whose occurrence a gap repair already raised; ignore it.
//! - `vNo <= hwm` otherwise — a duplicate delivery; suppress it.
//!
//! An anti-entropy sweep ([`ReliabilityTracker::observe_durable`])
//! compares the durable counter against the high-water mark and repairs
//! occurrences whose datagram never arrived at all. Derived counters:
//! `drops_detected = gaps_repaired - late_arrivals` (repairs whose
//! datagram eventually showed up were delays, not drops).

use std::collections::{HashMap, HashSet};

/// How an arriving `(event, vNo)` datagram should be handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// New occurrence; synthesize `missing` (ascending, possibly empty)
    /// before raising the arrived occurrence itself.
    Fresh { missing: Vec<i64> },
    /// Same occurrence delivered again — suppress.
    Duplicate,
    /// Datagram of an occurrence a gap repair already raised — suppress.
    LateArrival,
}

#[derive(Debug, Default)]
struct EventState {
    /// Highest `vNo` raised into the LED (occurrences start at 1).
    hwm: i64,
    /// `vNo`s raised by gap repair whose datagram has not arrived (yet).
    synthesized: HashSet<i64>,
}

/// Per-event high-water-mark tracker (see module docs).
#[derive(Debug, Default)]
pub struct ReliabilityTracker {
    events: HashMap<String, EventState>,
    /// Events whose hwm changed since the last [`take_dirty`] call.
    dirty: HashSet<String>,
    gaps_repaired: u64,
    duplicates_suppressed: u64,
    late_arrivals: u64,
}

impl ReliabilityTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `event` with an initial high-water mark, without counting
    /// anything (used at event creation and recovery). Does not mark the
    /// event dirty.
    pub fn seed_event(&mut self, event: &str, hwm: i64) {
        let st = self.events.entry(event.to_string()).or_default();
        st.hwm = hwm;
        st.synthesized.clear();
    }

    /// Forget a dropped event's state.
    pub fn forget_event(&mut self, event: &str) {
        self.events.remove(event);
        self.dirty.remove(event);
    }

    /// Current high-water mark of an event, if tracked.
    pub fn hwm(&self, event: &str) -> Option<i64> {
        self.events.get(event).map(|s| s.hwm)
    }

    /// Classify an arriving datagram (see [`Admission`]).
    pub fn admit(&mut self, event: &str, vno: i64) -> Admission {
        let st = self.events.entry(event.to_string()).or_default();
        if vno <= st.hwm {
            if st.synthesized.remove(&vno) {
                self.late_arrivals += 1;
                Admission::LateArrival
            } else {
                self.duplicates_suppressed += 1;
                Admission::Duplicate
            }
        } else {
            let missing: Vec<i64> = (st.hwm + 1..vno).collect();
            for &m in &missing {
                st.synthesized.insert(m);
            }
            self.gaps_repaired += missing.len() as u64;
            st.hwm = vno;
            self.dirty.insert(event.to_string());
            Admission::Fresh { missing }
        }
    }

    /// Anti-entropy: reconcile with the durable occurrence counter.
    /// Returns the `vNo`s to synthesize, in ascending order.
    ///
    /// A durable counter *below* the high-water mark means a transaction
    /// rolled back after its datagram went out (the paper's phantom
    /// notification); the mark regresses so the re-used numbers admit as
    /// fresh occurrences again.
    pub fn observe_durable(&mut self, event: &str, durable: i64) -> Vec<i64> {
        let st = self.events.entry(event.to_string()).or_default();
        if durable < st.hwm {
            st.hwm = durable;
            st.synthesized.retain(|&v| v <= durable);
            self.dirty.insert(event.to_string());
            return Vec::new();
        }
        if durable == st.hwm {
            return Vec::new();
        }
        let missing: Vec<i64> = (st.hwm + 1..=durable).collect();
        for &m in &missing {
            st.synthesized.insert(m);
        }
        self.gaps_repaired += missing.len() as u64;
        st.hwm = durable;
        self.dirty.insert(event.to_string());
        missing
    }

    /// Drain the set of events whose high-water mark changed, with their
    /// current marks — the write-behind set for `SysAgentWatermark`.
    pub fn take_dirty(&mut self) -> Vec<(String, i64)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .filter_map(|e| self.events.get(&e).map(|s| (e.clone(), s.hwm)))
            .collect()
    }

    pub fn gaps_repaired(&self) -> u64 {
        self.gaps_repaired
    }

    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    pub fn late_arrivals(&self) -> u64 {
        self.late_arrivals
    }

    /// Repairs whose datagram never arrived: actual channel drops.
    pub fn drops_detected(&self) -> u64 {
        self.gaps_repaired.saturating_sub(self.late_arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_arrivals_are_fresh_with_no_gaps() {
        let mut t = ReliabilityTracker::new();
        t.seed_event("e", 0);
        for v in 1..=5 {
            assert_eq!(t.admit("e", v), Admission::Fresh { missing: vec![] });
        }
        assert_eq!(t.hwm("e"), Some(5));
        assert_eq!(t.gaps_repaired(), 0);
        assert_eq!(t.duplicates_suppressed(), 0);
    }

    #[test]
    fn duplicate_is_suppressed() {
        let mut t = ReliabilityTracker::new();
        t.admit("e", 1);
        assert_eq!(t.admit("e", 1), Admission::Duplicate);
        assert_eq!(t.duplicates_suppressed(), 1);
        assert_eq!(t.hwm("e"), Some(1));
    }

    #[test]
    fn gap_is_repaired_then_late_arrival_suppressed() {
        let mut t = ReliabilityTracker::new();
        t.admit("e", 1);
        // 2 and 3 skipped: their datagrams are in flight or lost.
        assert_eq!(
            t.admit("e", 4),
            Admission::Fresh {
                missing: vec![2, 3]
            }
        );
        assert_eq!(t.gaps_repaired(), 2);
        assert_eq!(t.drops_detected(), 2);
        // 3's datagram shows up late: a delay, not a drop.
        assert_eq!(t.admit("e", 3), Admission::LateArrival);
        assert_eq!(t.late_arrivals(), 1);
        assert_eq!(t.drops_detected(), 1);
        // A second copy of 3 is now an ordinary duplicate.
        assert_eq!(t.admit("e", 3), Admission::Duplicate);
    }

    #[test]
    fn durable_sweep_repairs_fully_dropped_occurrences() {
        let mut t = ReliabilityTracker::new();
        t.seed_event("e", 0);
        assert_eq!(t.observe_durable("e", 3), vec![1, 2, 3]);
        assert_eq!(t.hwm("e"), Some(3));
        assert_eq!(t.gaps_repaired(), 3);
        assert!(t.observe_durable("e", 3).is_empty(), "idempotent");
    }

    #[test]
    fn durable_regression_resets_after_rollback() {
        let mut t = ReliabilityTracker::new();
        t.admit("e", 1); // phantom: the transaction rolled back
        assert!(t.observe_durable("e", 0).is_empty());
        assert_eq!(t.hwm("e"), Some(0));
        // The re-used occurrence number is fresh again.
        assert_eq!(t.admit("e", 1), Admission::Fresh { missing: vec![] });
    }

    #[test]
    fn dirty_tracking_feeds_write_behind() {
        let mut t = ReliabilityTracker::new();
        t.seed_event("a", 0);
        t.seed_event("b", 0);
        assert!(t.take_dirty().is_empty(), "seeding is not dirty");
        t.admit("a", 1);
        t.admit("a", 2);
        t.observe_durable("b", 5);
        let mut dirty = t.take_dirty();
        dirty.sort();
        assert_eq!(dirty, vec![("a".to_string(), 2), ("b".to_string(), 5)]);
        assert!(t.take_dirty().is_empty());
    }

    #[test]
    fn forget_event_clears_state() {
        let mut t = ReliabilityTracker::new();
        t.admit("e", 3);
        t.forget_event("e");
        assert_eq!(t.hwm("e"), None);
        assert!(t.take_dirty().is_empty());
    }

    #[test]
    fn seed_does_not_replay_old_occurrences() {
        let mut t = ReliabilityTracker::new();
        t.seed_event("e", 10);
        assert_eq!(t.admit("e", 10), Admission::Duplicate);
        assert_eq!(t.admit("e", 11), Admission::Fresh { missing: vec![] });
    }
}
