//! In-memory registry of agent-managed events and triggers.
//!
//! The registry is the agent's working view of the metadata that the
//! Persistent Manager stores in the system tables (Figures 5–7); it is
//! rebuilt from those tables on recovery.

use std::collections::HashMap;
use std::sync::Arc;

use led::{CouplingMode, ParameterContext};
use relsql::ast::TriggerOp;

use crate::error::{AgentError, Result};
use crate::saga::SagaSpec;

/// A primitive event: a (table, operation) pair with named, reusable
/// identity (the thing native Sybase cannot do — §2.2).
#[derive(Debug, Clone)]
pub struct PrimitiveEventInfo {
    /// Internal event name (`db.user.event`).
    pub name: String,
    /// Internal name of the watched user table.
    pub table: String,
    pub operation: TriggerOp,
    /// Shadow and helper tables generated for this event.
    pub shadow_inserted: String,
    pub shadow_deleted: String,
    pub version_table: String,
}

impl PrimitiveEventInfo {
    /// Shadow tables this event stamps for its operation.
    pub fn stamped_shadows(&self) -> Vec<(&str, ShadowKind)> {
        match self.operation {
            TriggerOp::Insert => vec![(self.shadow_inserted.as_str(), ShadowKind::Inserted)],
            TriggerOp::Delete => vec![(self.shadow_deleted.as_str(), ShadowKind::Deleted)],
            TriggerOp::Update => vec![
                (self.shadow_inserted.as_str(), ShadowKind::Inserted),
                (self.shadow_deleted.as_str(), ShadowKind::Deleted),
            ],
        }
    }
}

/// Which pseudo-table a shadow corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowKind {
    Inserted,
    Deleted,
}

/// A composite event defined through Snoop.
#[derive(Debug, Clone)]
pub struct CompositeEventInfo {
    pub name: String,
    /// The Snoop expression over *internal* names (as persisted in
    /// `SysCompositeEvent.eventDescribe`).
    pub expr_src: String,
    pub context: ParameterContext,
}

/// How a trigger's action is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// `EXECUTE proc` embedded in the event's native SQL trigger —
    /// the Figure 11 path (primitive event, IMMEDIATE coupling).
    Native,
    /// Registered as an LED rule, dispatched via Event Notifier → Action
    /// Handler — the Figure 14 path.
    Led,
}

/// An agent-managed trigger (ECA rule).
#[derive(Debug, Clone)]
pub struct TriggerInfo {
    pub name: String,
    pub event: String,
    pub proc_name: String,
    pub kind: TriggerKind,
    pub coupling: CouplingMode,
    pub context: ParameterContext,
    pub priority: i32,
    /// When the action is a saga, its ordered step/compensation list
    /// (DESIGN.md §12); `None` for single-procedure actions. Saga-valued
    /// triggers are always [`TriggerKind::Led`] — the executor owns the
    /// journal protocol, so the action is never embedded natively.
    pub saga: Option<Arc<SagaSpec>>,
}

/// The registry proper.
#[derive(Debug, Default)]
pub struct Registry {
    primitives: HashMap<String, PrimitiveEventInfo>,
    composites: HashMap<String, CompositeEventInfo>,
    triggers: HashMap<String, TriggerInfo>,
    /// (table_key, op) -> event name; enforces one event per slot.
    slots: HashMap<(String, TriggerOp), String>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    // -------------------------------------------------------------- events

    pub fn add_primitive(&mut self, info: PrimitiveEventInfo) -> Result<()> {
        if self.has_event(&info.name) {
            return Err(AgentError::Naming(format!(
                "event '{}' already exists",
                info.name
            )));
        }
        let slot = (info.table.to_ascii_lowercase(), info.operation);
        if let Some(existing) = self.slots.get(&slot) {
            return Err(AgentError::Naming(format!(
                "event '{existing}' already watches {} on '{}' — reuse it instead",
                info.operation, info.table
            )));
        }
        self.slots.insert(slot, info.name.clone());
        self.primitives.insert(info.name.clone(), info);
        Ok(())
    }

    pub fn add_composite(&mut self, info: CompositeEventInfo) -> Result<()> {
        if self.has_event(&info.name) {
            return Err(AgentError::Naming(format!(
                "event '{}' already exists",
                info.name
            )));
        }
        self.composites.insert(info.name.clone(), info);
        Ok(())
    }

    pub fn has_event(&self, name: &str) -> bool {
        self.primitives.contains_key(name) || self.composites.contains_key(name)
    }

    pub fn primitive(&self, name: &str) -> Option<&PrimitiveEventInfo> {
        self.primitives.get(name)
    }

    pub fn composite(&self, name: &str) -> Option<&CompositeEventInfo> {
        self.composites.get(name)
    }

    pub fn primitive_for_slot(&self, table: &str, op: TriggerOp) -> Option<&PrimitiveEventInfo> {
        self.slots
            .get(&(table.to_ascii_lowercase(), op))
            .and_then(|name| self.primitives.get(name))
    }

    pub fn event_count(&self) -> (usize, usize) {
        (self.primitives.len(), self.composites.len())
    }

    /// The transitive *primitive* constituents of an event (an event may be
    /// built from other composites — contribution #2, event reuse).
    pub fn primitive_constituents(&self, event: &str) -> Vec<&PrimitiveEventInfo> {
        let mut out: Vec<&PrimitiveEventInfo> = Vec::new();
        let mut stack = vec![event.to_string()];
        let mut seen = Vec::new();
        while let Some(name) = stack.pop() {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name.clone());
            if let Some(p) = self.primitives.get(&name) {
                if !out.iter().any(|e| e.name == p.name) {
                    out.push(p);
                }
            } else if let Some(c) = self.composites.get(&name) {
                if let Ok(expr) = snoop::parse(&c.expr_src) {
                    for r in expr.references() {
                        stack.push(r.key());
                    }
                }
            }
        }
        out
    }

    /// Composite events that (directly) reference `event`.
    pub fn dependents_of(&self, event: &str) -> Vec<&CompositeEventInfo> {
        self.composites
            .values()
            .filter(|c| {
                snoop::parse(&c.expr_src)
                    .map(|e| e.references().iter().any(|r| r.key() == event))
                    .unwrap_or(false)
            })
            .collect()
    }

    pub fn remove_primitive(&mut self, name: &str) -> Option<PrimitiveEventInfo> {
        let info = self.primitives.remove(name)?;
        self.slots
            .remove(&(info.table.to_ascii_lowercase(), info.operation));
        Some(info)
    }

    pub fn remove_composite(&mut self, name: &str) -> Option<CompositeEventInfo> {
        self.composites.remove(name)
    }

    // ------------------------------------------------------------ triggers

    pub fn add_trigger(&mut self, info: TriggerInfo) -> Result<()> {
        if self.triggers.contains_key(&info.name) {
            return Err(AgentError::Naming(format!(
                "trigger '{}' already exists",
                info.name
            )));
        }
        self.triggers.insert(info.name.clone(), info);
        Ok(())
    }

    pub fn trigger(&self, name: &str) -> Option<&TriggerInfo> {
        self.triggers.get(name)
    }

    pub fn remove_trigger(&mut self, name: &str) -> Option<TriggerInfo> {
        self.triggers.remove(name)
    }

    /// Triggers on a given event, in insertion-independent (name) order.
    pub fn triggers_on(&self, event: &str) -> Vec<&TriggerInfo> {
        let mut v: Vec<&TriggerInfo> = self
            .triggers
            .values()
            .filter(|t| t.event == event)
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Native-embedded (Figure 11 path) triggers on a primitive event, in
    /// descending priority then name order — the order their `EXECUTE`
    /// lines appear in the regenerated native trigger.
    pub fn native_triggers_on(&self, event: &str) -> Vec<&TriggerInfo> {
        let mut v: Vec<&TriggerInfo> = self
            .triggers
            .values()
            .filter(|t| t.event == event && t.kind == TriggerKind::Native)
            .collect();
        v.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.name.cmp(&b.name)));
        v
    }

    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    pub fn trigger_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.triggers.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(name: &str, table: &str, op: TriggerOp) -> PrimitiveEventInfo {
        PrimitiveEventInfo {
            name: name.into(),
            table: table.into(),
            operation: op,
            shadow_inserted: format!("{name}_inserted"),
            shadow_deleted: format!("{name}_deleted"),
            version_table: format!("{name}_ver"),
        }
    }

    fn trig(name: &str, event: &str, kind: TriggerKind, priority: i32) -> TriggerInfo {
        TriggerInfo {
            name: name.into(),
            event: event.into(),
            proc_name: format!("{name}__Proc"),
            kind,
            coupling: CouplingMode::Immediate,
            context: ParameterContext::Recent,
            priority,
            saga: None,
        }
    }

    #[test]
    fn slot_uniqueness() {
        let mut r = Registry::new();
        r.add_primitive(prim("e1", "db.u.stock", TriggerOp::Insert))
            .unwrap();
        let err = r
            .add_primitive(prim("e2", "DB.U.STOCK", TriggerOp::Insert))
            .unwrap_err();
        assert!(err.to_string().contains("reuse"));
        // A different operation is a different slot.
        r.add_primitive(prim("e3", "db.u.stock", TriggerOp::Delete))
            .unwrap();
        assert_eq!(
            r.primitive_for_slot("db.u.stock", TriggerOp::Insert)
                .unwrap()
                .name,
            "e1"
        );
    }

    #[test]
    fn stamped_shadows_per_operation() {
        let p = prim("e", "t", TriggerOp::Update);
        let shadows = p.stamped_shadows();
        assert_eq!(shadows.len(), 2);
        assert_eq!(prim("e", "t", TriggerOp::Insert).stamped_shadows().len(), 1);
        assert_eq!(
            prim("e", "t", TriggerOp::Delete).stamped_shadows()[0].1,
            ShadowKind::Deleted
        );
    }

    #[test]
    fn transitive_constituents() {
        let mut r = Registry::new();
        r.add_primitive(prim("a", "t1", TriggerOp::Insert)).unwrap();
        r.add_primitive(prim("b", "t2", TriggerOp::Delete)).unwrap();
        r.add_composite(CompositeEventInfo {
            name: "ab".into(),
            expr_src: "a ^ b".into(),
            context: ParameterContext::Recent,
        })
        .unwrap();
        r.add_composite(CompositeEventInfo {
            name: "abc".into(),
            expr_src: "ab ; a".into(),
            context: ParameterContext::Recent,
        })
        .unwrap();
        let names: Vec<&str> = r
            .primitive_constituents("abc")
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn dependents() {
        let mut r = Registry::new();
        r.add_primitive(prim("a", "t1", TriggerOp::Insert)).unwrap();
        r.add_composite(CompositeEventInfo {
            name: "c".into(),
            expr_src: "a | a".into(),
            context: ParameterContext::Recent,
        })
        .unwrap();
        assert_eq!(r.dependents_of("a").len(), 1);
        assert!(r.dependents_of("c").is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        r.add_primitive(prim("e", "t", TriggerOp::Insert)).unwrap();
        assert!(r
            .add_composite(CompositeEventInfo {
                name: "e".into(),
                expr_src: "x".into(),
                context: ParameterContext::Recent,
            })
            .is_err());
        r.add_trigger(trig("tr", "e", TriggerKind::Native, 0))
            .unwrap();
        assert!(r.add_trigger(trig("tr", "e", TriggerKind::Led, 0)).is_err());
    }

    #[test]
    fn native_triggers_ordered_by_priority() {
        let mut r = Registry::new();
        r.add_trigger(trig("t_low", "e", TriggerKind::Native, 1))
            .unwrap();
        r.add_trigger(trig("t_high", "e", TriggerKind::Native, 9))
            .unwrap();
        r.add_trigger(trig("t_led", "e", TriggerKind::Led, 99))
            .unwrap();
        let order: Vec<&str> = r
            .native_triggers_on("e")
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(order, vec!["t_high", "t_low"]);
        assert_eq!(r.triggers_on("e").len(), 3);
    }

    #[test]
    fn removal() {
        let mut r = Registry::new();
        r.add_primitive(prim("e", "t", TriggerOp::Insert)).unwrap();
        r.add_trigger(trig("tr", "e", TriggerKind::Native, 0))
            .unwrap();
        assert!(r.remove_trigger("tr").is_some());
        assert!(r.remove_trigger("tr").is_none());
        assert!(r.remove_primitive("e").is_some());
        // The slot is free again.
        r.add_primitive(prim("e2", "t", TriggerOp::Insert)).unwrap();
    }
}
