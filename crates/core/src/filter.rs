//! The Language Filter (Figure 2).
//!
//! All client commands flow through here. ECA commands — the extended
//! `CREATE TRIGGER ... EVENT ...` syntax, `DROP TRIGGER` on agent-managed
//! triggers, and the `DROP EVENT` extension — are separated out for the ECA
//! Parser; everything else passes through to the Gateway Open Server
//! untouched (full transparency, §3).

use relsql::lexer::{tokenize, TokenKind};

/// Classification of one client batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// An ECA command the agent must interpret.
    Eca(EcaKind),
    /// Plain SQL, forwarded verbatim to the SQL server.
    PassThrough,
}

/// Which kind of ECA command was recognized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcaKind {
    /// `create trigger ... event ...` (any of the Figure 9/10/12 forms).
    CreateTrigger,
    /// `drop trigger <name>` — routed to the agent, which falls back to
    /// pass-through when the trigger is not agent-managed.
    DropTrigger,
    /// `drop event <name>` — agent extension.
    DropEvent,
}

/// Classify a client batch.
///
/// A `create trigger` is an ECA command iff an `event` keyword appears
/// before the body-introducing `as` (native Sybase trigger syntax has no
/// EVENT clause). Unlexable input is passed through so the server produces
/// its own error message.
pub fn classify(sql: &str) -> Classification {
    // Fast path: every ECA command starts with CREATE or DROP, so plain DML
    // (the hot path under the plan cache) skips the full lex entirely.
    match first_word(sql) {
        Some(w) if w.eq_ignore_ascii_case("create") || w.eq_ignore_ascii_case("drop") => {}
        _ => return Classification::PassThrough,
    }
    let tokens = match tokenize(sql) {
        Ok(t) => t,
        Err(_) => return Classification::PassThrough,
    };
    let words: Vec<&TokenKind> = tokens.iter().map(|t| &t.kind).collect();
    if words.len() < 2 {
        return Classification::PassThrough;
    }
    if words[0].is_kw("create") && words[1].is_kw("trigger") {
        for w in &words[2..] {
            if w.is_kw("as") {
                break;
            }
            if w.is_kw("event") {
                return Classification::Eca(EcaKind::CreateTrigger);
            }
        }
        return Classification::PassThrough;
    }
    if words[0].is_kw("drop") && words[1].is_kw("trigger") {
        return Classification::Eca(EcaKind::DropTrigger);
    }
    if words[0].is_kw("drop") && words[1].is_kw("event") {
        return Classification::Eca(EcaKind::DropEvent);
    }
    Classification::PassThrough
}

/// Does the batch contain a COMMIT at the top level? Used by the agent to
/// flush DEFERRED rule actions at transaction boundaries.
pub fn contains_commit(sql: &str) -> bool {
    // Fast path: no "commit" substring anywhere (case-insensitive) means no
    // COMMIT token; only near-matches pay for the lex that rules out string
    // literals and longer identifiers.
    if !contains_ignore_case(sql, b"commit") {
        return false;
    }
    match tokenize(sql) {
        Ok(tokens) => tokens.iter().any(|t| t.kind.is_kw("commit")),
        Err(_) => false,
    }
}

/// First SQL word of a batch, skipping whitespace and `--` / `/* */`
/// comments. `None` when the batch opens with something other than a word.
fn first_word(sql: &str) -> Option<&str> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            return Some(&sql[start..i]);
        } else {
            return None;
        }
    }
    None
}

fn contains_ignore_case(haystack: &str, needle: &[u8]) -> bool {
    haystack
        .as_bytes()
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_trigger_passes_through() {
        // No EVENT clause: native Sybase syntax.
        assert_eq!(
            classify("create trigger t on stock for insert as print 'x'"),
            Classification::PassThrough
        );
    }

    #[test]
    fn primitive_eca_trigger_detected() {
        // Figure 9 / Example 1.
        let sql = "create trigger t_addStk on stock for insert\n\
                   event addStk\n\
                   as print 'fired' select * from stock";
        assert_eq!(classify(sql), Classification::Eca(EcaKind::CreateTrigger));
    }

    #[test]
    fn composite_eca_trigger_detected() {
        // Figure 12 / Example 2.
        let sql = "create trigger t_and event addDel = delStk ^ addStk RECENT as print 'x'";
        assert_eq!(classify(sql), Classification::Eca(EcaKind::CreateTrigger));
    }

    #[test]
    fn event_keyword_inside_body_does_not_confuse() {
        // `event` appearing only after AS is action SQL, not a clause.
        let sql = "create trigger t on stock for insert as insert event_log values (1)";
        assert_eq!(classify(sql), Classification::PassThrough);
    }

    #[test]
    fn drop_forms() {
        assert_eq!(
            classify("drop trigger t_addStk"),
            Classification::Eca(EcaKind::DropTrigger)
        );
        assert_eq!(
            classify("drop event addStk"),
            Classification::Eca(EcaKind::DropEvent)
        );
        assert_eq!(classify("drop table t"), Classification::PassThrough);
    }

    #[test]
    fn plain_sql_passes_through() {
        for sql in [
            "select * from stock",
            "insert stock values (1)",
            "create table t (a int)",
            "",
            "   ",
        ] {
            assert_eq!(classify(sql), Classification::PassThrough, "{sql:?}");
        }
    }

    #[test]
    fn unlexable_input_passes_through() {
        assert_eq!(classify("select ~~~ garbage"), Classification::PassThrough);
    }

    #[test]
    fn commit_detection() {
        assert!(contains_commit("begin tran insert t values (1) commit"));
        assert!(contains_commit("COMMIT TRAN"));
        assert!(!contains_commit("insert t values (1)"));
        // String literals do not count.
        assert!(!contains_commit("print 'commit'"));
        // Substring near-matches fall through to the lexer and are rejected.
        assert!(!contains_commit("select c from committee"));
    }

    #[test]
    fn fast_path_skips_leading_comments() {
        // The pre-lex word scan must see through comments, or ECA commands
        // behind a comment would be misrouted to the server.
        let sql = "-- rule install\n/* batch 7 */ create trigger t on s for insert\n\
                   event e\nas print 'x'";
        assert_eq!(classify(sql), Classification::Eca(EcaKind::CreateTrigger));
        assert_eq!(first_word("  /* x */ -- y\n  select 1"), Some("select"));
        assert_eq!(first_word("123"), None);
        assert_eq!(first_word(""), None);
    }
}
