//! Transactional action sagas (DESIGN.md §12).
//!
//! A rule's action can be declared as an ordered list of step/compensation
//! pairs instead of a single stored procedure:
//!
//! ```text
//! as saga
//!    step p_reserve compensate p_release
//!    step p_charge  compensate p_refund
//!    step p_ship
//! ```
//!
//! Each forward step runs as **one server batch** — `EXECUTE <step_proc>`
//! followed by the `SysSagaJournal` "done" row — so on a durable server
//! the step's side effects and its journal record share a single WAL
//! record: at every crash point the step either happened (the WAL record
//! is fsynced and replays exactly once) or never happened at all. The
//! journal row carries a deterministic idempotency key (rule + occurrence
//! `vNo` + step index), so a retried, requeued or replayed saga probes the
//! journal and never double-applies a step.
//!
//! When a forward step exhausts its retry budget, a `failed` marker is
//! journaled and the compensations of every applied step run in reverse
//! order (each with the same retry/backoff/timeout policy). On cold
//! restart [`crate::EcaAgent::open`] scans the journal for in-flight sagas
//! and deterministically resumes forward (no `failed` marker) or
//! compensates backward (marker present), skipping every step or
//! compensation that already has a `done` row.
//!
//! The journal deliberately has **no timestamp column**: a resumed run
//! must produce a journal byte-identical to an uninterrupted one, and
//! post-recovery statements see different virtual-clock values.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use led::{CouplingMode, Occurrence};
use parking_lot::Mutex;
use relsql::{BatchResult, SessionCtx, Value};

use crate::action::{attempt_batch, ActionOutcome, ActionRequest, FaultInjector, RetryPolicy};
use crate::codegen::sql_quote;
use crate::error::{EcaError, Result};
use crate::gateway::Gateway;

/// One forward step and its optional compensation, both user-created
/// stored procedures (internal names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaStep {
    pub proc: String,
    pub compensation: Option<String>,
}

/// A parsed saga declaration: an ordered list of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaSpec {
    pub steps: Vec<SagaStep>,
}

impl SagaSpec {
    /// Parse an action body of the form
    /// `saga step <proc> [compensate <proc>] step <proc> ...`.
    ///
    /// Returns `Ok(None)` when the body is not a saga declaration (does
    /// not start with the `saga` keyword); `expand` maps each procedure
    /// name to its internal form (§5.1 name expansion).
    pub fn parse_action(body: &str, expand: &dyn Fn(&str) -> String) -> Result<Option<SagaSpec>> {
        let mut tokens = body.split_whitespace().peekable();
        match tokens.peek() {
            Some(t) if t.eq_ignore_ascii_case("saga") => {
                tokens.next();
            }
            _ => return Ok(None),
        }
        let mut steps: Vec<SagaStep> = Vec::new();
        while let Some(tok) = tokens.next() {
            if !tok.eq_ignore_ascii_case("step") {
                return Err(EcaError::EcaSyntax(format!(
                    "saga action: expected 'step', found '{tok}'"
                )));
            }
            let proc = tokens.next().ok_or_else(|| {
                EcaError::EcaSyntax("saga action: 'step' needs a procedure name".into())
            })?;
            let mut step = SagaStep {
                proc: expand(proc),
                compensation: None,
            };
            if let Some(next) = tokens.peek() {
                if next.eq_ignore_ascii_case("compensate") {
                    tokens.next();
                    let comp = tokens.next().ok_or_else(|| {
                        EcaError::EcaSyntax(
                            "saga action: 'compensate' needs a procedure name".into(),
                        )
                    })?;
                    step.compensation = Some(expand(comp));
                }
            }
            steps.push(step);
        }
        if steps.is_empty() {
            return Err(EcaError::EcaSyntax(
                "saga action: at least one step is required".into(),
            ));
        }
        Ok(Some(SagaSpec { steps }))
    }
}

/// The saga instance key: rule + triggering occurrence number. One firing
/// of one rule is one saga.
pub fn saga_key(rule: &str, vno: i64) -> String {
    format!("{rule}#{vno}")
}

/// The per-unit idempotency key journaled with every step/compensation
/// (rule id + occurrence vNo + phase + step index).
pub fn idem_key(rule: &str, vno: i64, phase: &str, step: i64) -> String {
    format!("{rule}#{vno}/{phase}{step}")
}

/// The triggering occurrence number of a firing: the highest constituent
/// `vNo` in its parameter list (a primitive occurrence has exactly one).
pub fn occurrence_vno(occurrence: &Occurrence) -> i64 {
    occurrence
        .params
        .iter()
        .filter_map(|p| p.vno)
        .max()
        .unwrap_or(0)
}

// Journal phase / state vocabulary (stored in char columns, trimmed on
// load). `saga` rows bracket the instance; `forward` / `comp` rows record
// individual units.
pub const PHASE_SAGA: &str = "saga";
pub const PHASE_FORWARD: &str = "forward";
pub const PHASE_COMP: &str = "comp";
pub const STATE_STARTED: &str = "started";
pub const STATE_DONE: &str = "done";
pub const STATE_FAILED: &str = "failed";
pub const STATE_COMMITTED: &str = "committed";
pub const STATE_COMPENSATED: &str = "compensated";

/// How a saga execution ended, attached to its [`ActionOutcome`] so
/// clients (shell, serve) can tell "saga compensated" from "action
/// dead-lettered".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SagaDisposition {
    /// All forward steps applied; terminal `committed` row journaled.
    Committed { steps: u32 },
    /// The journal already held a terminal row (duplicate firing, requeue
    /// of a settled saga, or post-recovery re-raise): nothing re-applied.
    AlreadySettled,
    /// A forward step failed and every applied step was compensated;
    /// terminal `compensated` row journaled. **Not** dead-lettered — the
    /// saga is settled.
    Compensated {
        failed_step: u32,
        compensations: u32,
    },
    /// A compensation itself failed: the saga is parked in-flight (journal
    /// unterminated) and the action is dead-lettered; a requeue or restart
    /// resumes compensation where it stopped.
    Parked { failed_step: u32 },
}

/// One decoded `SysSagaJournal` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaJournalRow {
    pub key: String,
    pub rule: String,
    pub event: String,
    pub vno: i64,
    pub step: i64,
    pub phase: String,
    pub state: String,
    pub idem: String,
}

impl SagaJournalRow {
    /// Decode a `select sagaKey, triggerName, eventName, vNo, stepIdx,
    /// phase, state, idemKey` row.
    pub fn decode(row: &[Value]) -> Option<SagaJournalRow> {
        let s = |i: usize| match row.get(i) {
            Some(Value::Str(s)) => Some(s.trim().to_string()),
            _ => None,
        };
        let n = |i: usize| match row.get(i) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        };
        Some(SagaJournalRow {
            key: s(0)?,
            rule: s(1)?,
            event: s(2)?,
            vno: n(3)?,
            step: n(4)?,
            phase: s(5)?,
            state: s(6)?,
            idem: s(7)?,
        })
    }
}

/// The SQL for one journal row.
fn journal_insert_sql(
    key: &str,
    rule: &str,
    event: &str,
    vno: i64,
    step: i64,
    phase: &str,
    state: &str,
) -> String {
    format!(
        "insert SysSagaJournal values ({}, {}, {}, {vno}, {step}, {}, {}, {})",
        sql_quote(key),
        sql_quote(rule),
        sql_quote(event),
        sql_quote(phase),
        sql_quote(state),
        sql_quote(&idem_key(rule, vno, phase, step)),
    )
}

/// INSERT rows persisting a saga declaration into `SysSagaStep`.
pub fn persist_saga_steps_sql(trigger: &str, spec: &SagaSpec) -> String {
    spec.steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "insert SysSagaStep values ({}, {i}, {}, {})",
                sql_quote(trigger),
                sql_quote(&s.proc),
                match &s.compensation {
                    Some(c) => sql_quote(c),
                    None => "null".to_string(),
                },
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The deterministic recovery decision for one saga instance, derived
/// purely from its journal rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaPlan {
    /// No journal rows: run the saga from the top.
    Fresh,
    /// A terminal row exists: do nothing.
    Settled { state: String },
    /// No failure marker: resume forward, skipping steps with done rows.
    ResumeForward { done: BTreeSet<i64> },
    /// Failure marker present: compensate the applied steps in reverse,
    /// skipping compensations with done rows.
    Compensate {
        applied: BTreeSet<i64>,
        comps_done: BTreeSet<i64>,
        failed_step: i64,
    },
}

/// Derive the recovery plan from journal rows (the §12 decision rule).
/// Pure and deterministic: two agents scanning the same journal make the
/// same decision.
pub fn plan_from_journal(rows: &[SagaJournalRow]) -> SagaPlan {
    if rows.is_empty() {
        return SagaPlan::Fresh;
    }
    let mut applied: BTreeSet<i64> = BTreeSet::new();
    let mut comps_done: BTreeSet<i64> = BTreeSet::new();
    let mut failed_step: Option<i64> = None;
    for r in rows {
        match (r.phase.as_str(), r.state.as_str()) {
            (PHASE_SAGA, STATE_COMMITTED) | (PHASE_SAGA, STATE_COMPENSATED) => {
                return SagaPlan::Settled {
                    state: r.state.clone(),
                };
            }
            (PHASE_FORWARD, STATE_DONE) => {
                applied.insert(r.step);
            }
            (PHASE_FORWARD, STATE_FAILED) => failed_step = Some(r.step),
            (PHASE_COMP, STATE_DONE) => {
                comps_done.insert(r.step);
            }
            _ => {} // the 'saga started' row
        }
    }
    match failed_step {
        Some(f) => SagaPlan::Compensate {
            applied,
            comps_done,
            failed_step: f,
        },
        None => SagaPlan::ResumeForward { done: applied },
    }
}

/// A crash-point boundary crossed by the executor; the chaos hook sees
/// every one. `step` is `-1` for the instance-level `saga` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SagaBoundary<'a> {
    pub key: &'a str,
    pub phase: &'a str,
    pub step: i64,
    /// `false` = before the unit's journal batch, `true` = after it.
    pub after: bool,
}

/// Chaos hook: invoked at every saga boundary; returning `true` simulates
/// a hard process death by panicking out of the executor (the test
/// catches the unwind, discards the process state, and recovers from the
/// durable image).
pub type SagaCrashHook = Arc<dyn Fn(&SagaBoundary) -> bool + Send + Sync>;

/// Saga executor counters, surfaced through [`crate::AgentStats`].
#[derive(Debug, Default)]
pub struct SagaCounters {
    pub started: AtomicU64,
    pub committed: AtomicU64,
    pub compensated: AtomicU64,
    pub resumed: AtomicU64,
    pub steps_executed: AtomicU64,
    pub comps_executed: AtomicU64,
}

/// One saga invocation handed to the executor.
pub struct SagaRun<'a> {
    pub rule: &'a str,
    pub event: &'a str,
    pub vno: i64,
    pub spec: &'a SagaSpec,
    pub occurrence: Occurrence,
    /// `sysContext` refresh SQL, run only when the journal shows a fresh
    /// instance (a resumed saga's context rows are already durable).
    pub context_sql: Option<String>,
    pub coupling: CouplingMode,
}

/// Executes sagas against the server through the gateway. Owned by the
/// [`crate::action::ActionHandler`]; shares its fault injector and retry
/// counter so chaos hooks and `STATS` cover saga steps too.
pub struct SagaExecutor {
    gateway: Arc<Gateway>,
    session: SessionCtx,
    policy: RetryPolicy,
    injector: Arc<Mutex<Option<FaultInjector>>>,
    retries: Arc<AtomicU64>,
    crash: Mutex<Option<SagaCrashHook>>,
    counters: SagaCounters,
}

impl SagaExecutor {
    pub fn new(
        gateway: Arc<Gateway>,
        session: SessionCtx,
        policy: RetryPolicy,
        injector: Arc<Mutex<Option<FaultInjector>>>,
        retries: Arc<AtomicU64>,
    ) -> Self {
        SagaExecutor {
            gateway,
            session,
            policy,
            injector,
            retries,
            crash: Mutex::new(None),
            counters: SagaCounters::default(),
        }
    }

    pub fn counters(&self) -> &SagaCounters {
        &self.counters
    }

    /// Install (or clear) the crash-point chaos hook.
    pub fn set_crash_hook(&self, hook: Option<SagaCrashHook>) {
        *self.crash.lock() = hook;
    }

    fn check_crash(&self, key: &str, phase: &str, step: i64, after: bool) {
        let hook = self.crash.lock().clone();
        if let Some(hook) = hook {
            let b = SagaBoundary {
                key,
                phase,
                step,
                after,
            };
            if hook(&b) {
                panic!(
                    "saga chaos: injected crash at {phase}[{step}] {} of '{key}'",
                    if after { "exit" } else { "entry" }
                );
            }
        }
    }

    /// Journal rows of one saga instance, in insertion order.
    pub fn journal_rows(&self, key: &str) -> Result<Vec<SagaJournalRow>> {
        let r = self.gateway.internal(
            &format!(
                "select sagaKey, triggerName, eventName, vNo, stepIdx, phase, state, idemKey \
                 from SysSagaJournal where sagaKey = {}",
                sql_quote(key)
            ),
            &self.session,
        )?;
        let rows = match r.last_select() {
            Some(q) => &q.rows,
            None => return Ok(Vec::new()),
        };
        Ok(rows
            .iter()
            .filter_map(|r| SagaJournalRow::decode(r))
            .collect())
    }

    /// Run (or resume) one saga instance. All three entry paths — dispatch
    /// of a firing, dead-letter requeue, and cold-restart recovery —
    /// converge here: the journal decides what is left to do.
    pub fn execute(&self, run: &SagaRun<'_>) -> ActionOutcome {
        let key = saga_key(run.rule, run.vno);
        let mut attempts = 0u32;
        let rows = match self.journal_rows(&key) {
            Ok(rows) => rows,
            Err(e) => {
                return self.outcome_err(run, attempts, format!("saga journal read: {e}"), None)
            }
        };
        match plan_from_journal(&rows) {
            SagaPlan::Settled { .. } => {
                self.outcome_ok(run, 0, Some(SagaDisposition::AlreadySettled))
            }
            SagaPlan::Fresh => {
                if let Some(ctx_sql) = &run.context_sql {
                    if !ctx_sql.is_empty() {
                        if let Err(e) = self.gateway.internal(ctx_sql, &self.session) {
                            return self.outcome_err(
                                run,
                                attempts,
                                format!("saga context refresh: {e}"),
                                None,
                            );
                        }
                    }
                }
                self.counters.started.fetch_add(1, Ordering::Relaxed);
                self.check_crash(&key, PHASE_SAGA, -1, false);
                if let Err(e) = self.gateway.internal(
                    &journal_insert_sql(
                        &key,
                        run.rule,
                        run.event,
                        run.vno,
                        -1,
                        PHASE_SAGA,
                        STATE_STARTED,
                    ),
                    &self.session,
                ) {
                    return self.outcome_err(run, attempts, format!("saga journal: {e}"), None);
                }
                self.check_crash(&key, PHASE_SAGA, -1, true);
                self.run_forward(run, &key, BTreeSet::new(), &mut attempts)
            }
            SagaPlan::ResumeForward { done } => {
                self.counters.resumed.fetch_add(1, Ordering::Relaxed);
                self.run_forward(run, &key, done, &mut attempts)
            }
            SagaPlan::Compensate {
                applied,
                comps_done,
                failed_step,
            } => {
                self.counters.resumed.fetch_add(1, Ordering::Relaxed);
                self.compensate(
                    run,
                    &key,
                    failed_step,
                    &applied,
                    &comps_done,
                    &mut attempts,
                    "resumed after restart".to_string(),
                )
            }
        }
    }

    /// Forward phase: run every step not yet journaled done, in order.
    fn run_forward(
        &self,
        run: &SagaRun<'_>,
        key: &str,
        mut applied: BTreeSet<i64>,
        attempts: &mut u32,
    ) -> ActionOutcome {
        for (i, step) in run.spec.steps.iter().enumerate() {
            let i = i as i64;
            if applied.contains(&i) {
                continue;
            }
            match self.run_unit(run, key, PHASE_FORWARD, i, &step.proc, attempts) {
                Ok(()) => {
                    self.counters.steps_executed.fetch_add(1, Ordering::Relaxed);
                    applied.insert(i);
                }
                Err(e) => {
                    // Journal the failure marker so a crash from here on
                    // resumes into compensation, not a forward retry.
                    self.check_crash(key, PHASE_FORWARD, i, false);
                    if let Err(je) = self.gateway.internal(
                        &journal_insert_sql(
                            key,
                            run.rule,
                            run.event,
                            run.vno,
                            i,
                            PHASE_FORWARD,
                            STATE_FAILED,
                        ),
                        &self.session,
                    ) {
                        return self.outcome_err(
                            run,
                            *attempts,
                            format!("saga step {i} failed ({e}); journaling the failure also failed: {je}"),
                            Some(SagaDisposition::Parked {
                                failed_step: i as u32,
                            }),
                        );
                    }
                    self.check_crash(key, PHASE_FORWARD, i, true);
                    return self.compensate(run, key, i, &applied, &BTreeSet::new(), attempts, e);
                }
            }
        }
        self.check_crash(key, PHASE_SAGA, -1, false);
        if let Err(e) = self.gateway.internal(
            &journal_insert_sql(
                key,
                run.rule,
                run.event,
                run.vno,
                -1,
                PHASE_SAGA,
                STATE_COMMITTED,
            ),
            &self.session,
        ) {
            return self.outcome_err(run, *attempts, format!("saga commit journal: {e}"), None);
        }
        self.check_crash(key, PHASE_SAGA, -1, true);
        self.counters.committed.fetch_add(1, Ordering::Relaxed);
        self.outcome_ok(
            run,
            *attempts,
            Some(SagaDisposition::Committed {
                steps: run.spec.steps.len() as u32,
            }),
        )
    }

    /// Backward phase: compensate the applied steps in reverse order.
    #[allow(clippy::too_many_arguments)]
    fn compensate(
        &self,
        run: &SagaRun<'_>,
        key: &str,
        failed_step: i64,
        applied: &BTreeSet<i64>,
        comps_done: &BTreeSet<i64>,
        attempts: &mut u32,
        cause: String,
    ) -> ActionOutcome {
        let mut compensations = comps_done.len() as u32;
        for &j in applied.iter().rev() {
            let comp = match run
                .spec
                .steps
                .get(j as usize)
                .and_then(|s| s.compensation.as_ref())
            {
                Some(c) => c,
                None => continue,
            };
            if comps_done.contains(&j) {
                continue;
            }
            match self.run_unit(run, key, PHASE_COMP, j, comp, attempts) {
                Ok(()) => {
                    self.counters.comps_executed.fetch_add(1, Ordering::Relaxed);
                    compensations += 1;
                }
                Err(e) => {
                    // Park in-flight: a requeue or restart resumes the
                    // compensation from here.
                    return self.outcome_err(
                        run,
                        *attempts,
                        format!(
                            "saga parked: compensation for step {j} failed: {e} \
                             (original failure at step {failed_step}: {cause})"
                        ),
                        Some(SagaDisposition::Parked {
                            failed_step: failed_step as u32,
                        }),
                    );
                }
            }
        }
        self.check_crash(key, PHASE_SAGA, -1, false);
        if let Err(e) = self.gateway.internal(
            &journal_insert_sql(
                key,
                run.rule,
                run.event,
                run.vno,
                -1,
                PHASE_SAGA,
                STATE_COMPENSATED,
            ),
            &self.session,
        ) {
            return self.outcome_err(
                run,
                *attempts,
                format!("saga compensated but terminal journal failed: {e}"),
                Some(SagaDisposition::Parked {
                    failed_step: failed_step as u32,
                }),
            );
        }
        self.check_crash(key, PHASE_SAGA, -1, true);
        self.counters.compensated.fetch_add(1, Ordering::Relaxed);
        self.outcome_err(
            run,
            *attempts,
            format!("saga compensated: step {failed_step} failed: {cause}"),
            Some(SagaDisposition::Compensated {
                failed_step: failed_step as u32,
                compensations,
            }),
        )
    }

    /// One step or compensation: the `EXECUTE proc` + journal-done row as
    /// a single batch (one WAL record), under the retry policy with the
    /// shared fault injector and per-attempt timeout.
    fn run_unit(
        &self,
        run: &SagaRun<'_>,
        key: &str,
        phase: &str,
        step: i64,
        proc: &str,
        attempts: &mut u32,
    ) -> std::result::Result<(), String> {
        let batch = format!(
            "execute {proc}\n{}",
            journal_insert_sql(key, run.rule, run.event, run.vno, step, phase, STATE_DONE)
        );
        // The injector sees a per-unit request whose proc_name is the
        // step's procedure, so chaos tests can target individual steps.
        let request = ActionRequest {
            proc_name: proc.to_string(),
            event: run.event.to_string(),
            context: led::ParameterContext::Recent,
            rule: run.rule.to_string(),
            occurrence: run.occurrence.clone(),
            saga: None,
        };
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        self.check_crash(key, phase, step, false);
        loop {
            attempt += 1;
            *attempts += 1;
            let injector = self.injector.lock().clone();
            let result = attempt_batch(
                &self.gateway,
                &self.session,
                injector,
                &request,
                attempt,
                self.policy.attempt_timeout,
                batch.clone(),
            );
            match result {
                Ok(_) => {
                    self.check_crash(key, phase, step, true);
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let delay = self.policy.backoff_after(run.rule, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    fn outcome_ok(
        &self,
        run: &SagaRun<'_>,
        attempts: u32,
        saga: Option<SagaDisposition>,
    ) -> ActionOutcome {
        ActionOutcome {
            rule: run.rule.to_string(),
            event: run.event.to_string(),
            coupling: run.coupling,
            attempts,
            result: Ok(BatchResult::default()),
            saga,
        }
    }

    fn outcome_err(
        &self,
        run: &SagaRun<'_>,
        attempts: u32,
        error: String,
        saga: Option<SagaDisposition>,
    ) -> ActionOutcome {
        ActionOutcome {
            rule: run.rule.to_string(),
            event: run.event.to_string(),
            coupling: run.coupling,
            attempts,
            result: Err(error),
            saga,
        }
    }
}

// ------------------------------------------------- durable dead letters

/// Serialize an occurrence's db params as `table,vno,ts;...` for the
/// `SysDeadLetter.params` column (only db params drive context refresh,
/// so only they round-trip).
pub fn encode_params(occurrence: &Occurrence) -> String {
    occurrence
        .params
        .iter()
        .filter_map(|p| {
            let table = p.table.as_deref()?;
            let vno = p.vno?;
            Some(format!("{table},{vno},{}", p.ts))
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Inverse of [`encode_params`].
pub fn decode_params(event: &str, encoded: &str) -> Vec<led::Param> {
    encoded
        .split(';')
        .filter(|s| !s.is_empty())
        .filter_map(|s| {
            let mut it = s.rsplitn(3, ',');
            let ts: i64 = it.next()?.parse().ok()?;
            let vno: i64 = it.next()?.parse().ok()?;
            let table = it.next()?;
            Some(led::Param::db(event, table, vno, ts))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use led::Param;

    fn ident(n: &str) -> String {
        format!("db.u.{n}")
    }

    #[test]
    fn parse_saga_action_with_and_without_compensations() {
        let spec = SagaSpec::parse_action(
            "saga step p_reserve compensate p_release step p_charge compensate p_refund step p_ship",
            &|n| ident(n),
        )
        .unwrap()
        .unwrap();
        assert_eq!(spec.steps.len(), 3);
        assert_eq!(spec.steps[0].proc, "db.u.p_reserve");
        assert_eq!(
            spec.steps[0].compensation.as_deref(),
            Some("db.u.p_release")
        );
        assert_eq!(spec.steps[2].proc, "db.u.p_ship");
        assert_eq!(spec.steps[2].compensation, None);
    }

    #[test]
    fn non_saga_bodies_pass_through() {
        assert_eq!(
            SagaSpec::parse_action("print 'hello'", &|n| ident(n)).unwrap(),
            None
        );
        assert_eq!(
            SagaSpec::parse_action("update t set a = 1", &|n| ident(n)).unwrap(),
            None
        );
    }

    #[test]
    fn malformed_saga_bodies_error() {
        assert!(SagaSpec::parse_action("saga", &|n| ident(n)).is_err());
        assert!(SagaSpec::parse_action("saga step", &|n| ident(n)).is_err());
        assert!(SagaSpec::parse_action("saga p_x", &|n| ident(n)).is_err());
        assert!(SagaSpec::parse_action("saga step p_x compensate", &|n| ident(n)).is_err());
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        assert_eq!(saga_key("db.u.t", 7), "db.u.t#7");
        assert_eq!(idem_key("db.u.t", 7, PHASE_FORWARD, 2), "db.u.t#7/forward2");
        assert_ne!(
            idem_key("db.u.t", 7, PHASE_FORWARD, 2),
            idem_key("db.u.t", 7, PHASE_COMP, 2)
        );
        let occ = Occurrence::point(
            "e",
            9,
            vec![Param::db("e", "s1", 3, 1), Param::db("e", "s2", 5, 2)],
        );
        assert_eq!(occurrence_vno(&occ), 5);
        assert_eq!(occurrence_vno(&Occurrence::point("e", 0, vec![])), 0);
    }

    fn row(step: i64, phase: &str, state: &str) -> SagaJournalRow {
        SagaJournalRow {
            key: "k".into(),
            rule: "r".into(),
            event: "e".into(),
            vno: 1,
            step,
            phase: phase.into(),
            state: state.into(),
            idem: idem_key("r", 1, phase, step),
        }
    }

    #[test]
    fn plan_decision_rule() {
        // Empty journal: fresh.
        assert_eq!(plan_from_journal(&[]), SagaPlan::Fresh);
        // Terminal row: settled, regardless of what else is present.
        assert!(matches!(
            plan_from_journal(&[
                row(-1, PHASE_SAGA, STATE_STARTED),
                row(0, PHASE_FORWARD, STATE_DONE),
                row(-1, PHASE_SAGA, STATE_COMMITTED),
            ]),
            SagaPlan::Settled { .. }
        ));
        // In-flight, no failure marker: resume forward past done steps.
        match plan_from_journal(&[
            row(-1, PHASE_SAGA, STATE_STARTED),
            row(0, PHASE_FORWARD, STATE_DONE),
            row(1, PHASE_FORWARD, STATE_DONE),
        ]) {
            SagaPlan::ResumeForward { done } => {
                assert_eq!(done.into_iter().collect::<Vec<_>>(), vec![0, 1])
            }
            other => panic!("{other:?}"),
        }
        // Failure marker: compensate applied steps, skipping done comps.
        match plan_from_journal(&[
            row(-1, PHASE_SAGA, STATE_STARTED),
            row(0, PHASE_FORWARD, STATE_DONE),
            row(1, PHASE_FORWARD, STATE_DONE),
            row(2, PHASE_FORWARD, STATE_FAILED),
            row(1, PHASE_COMP, STATE_DONE),
        ]) {
            SagaPlan::Compensate {
                applied,
                comps_done,
                failed_step,
            } => {
                assert_eq!(applied.into_iter().collect::<Vec<_>>(), vec![0, 1]);
                assert_eq!(comps_done.into_iter().collect::<Vec<_>>(), vec![1]);
                assert_eq!(failed_step, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn journal_sql_parses_and_roundtrips() {
        let sql = journal_insert_sql(
            "db.u.t#3",
            "db.u.t",
            "db.u.e",
            3,
            1,
            PHASE_FORWARD,
            STATE_DONE,
        );
        relsql::parser::parse_script(&sql).unwrap();
        assert!(sql.contains("'db.u.t#3'"));
        assert!(sql.contains("'db.u.t#3/forward1'"));
        let steps_sql = persist_saga_steps_sql(
            "db.u.t",
            &SagaSpec {
                steps: vec![
                    SagaStep {
                        proc: "db.u.p1".into(),
                        compensation: Some("db.u.c1".into()),
                    },
                    SagaStep {
                        proc: "db.u.p2".into(),
                        compensation: None,
                    },
                ],
            },
        );
        relsql::parser::parse_script(&steps_sql).unwrap();
        assert!(steps_sql.contains("'db.u.p1'"));
        assert!(steps_sql.contains("null"));
    }

    #[test]
    fn params_roundtrip_through_text_encoding() {
        let occ = Occurrence::point(
            "db.u.e",
            5,
            vec![
                Param::db("db.u.e", "db.u.e_inserted", 4, 5),
                Param::db("db.u.e", "db.u.e_deleted", 4, 5),
            ],
        );
        let encoded = encode_params(&occ);
        let decoded = decode_params("db.u.e", &encoded);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].table.as_deref(), Some("db.u.e_inserted"));
        assert_eq!(decoded[0].vno, Some(4));
        assert_eq!(decoded[0].ts, 5);
        assert!(decode_params("e", "").is_empty());
    }
}
