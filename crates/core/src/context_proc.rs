//! Parameter-context processing (§5.6, Figure 17).
//!
//! The four steps the paper lists:
//! 1. native triggers put affected rows into the shadow tables (done in
//!    generated trigger SQL),
//! 2. the parameter list is retrieved from the LED (the firing's
//!    [`led::Occurrence`] params),
//! 3. tuples are inserted into `sysContext` — this module generates that
//!    SQL,
//! 4. the action procedure joins `sysContext` with the shadow tables to
//!    materialize the context tmp tables (generated in `codegen`).

use led::{Occurrence, ParameterContext};

use crate::codegen::sql_quote;

/// SQL that replaces the `sysContext` rows for every shadow table named in
/// the occurrence's parameters. Old tuples with the same `(tableName,
/// context)` are deleted before the new ones are inserted, exactly as §5.6
/// prescribes.
pub fn sys_context_sql(occurrence: &Occurrence, context: ParameterContext) -> String {
    let mut tables: Vec<&str> = Vec::new();
    let mut pairs: Vec<(&str, i64)> = Vec::new();
    for p in &occurrence.params {
        if let (Some(table), Some(vno)) = (p.table.as_deref(), p.vno) {
            if !tables.contains(&table) {
                tables.push(table);
            }
            if !pairs.contains(&(table, vno)) {
                pairs.push((table, vno));
            }
        }
    }
    let mut sql = String::new();
    for t in &tables {
        sql.push_str(&format!(
            "delete sysContext where tableName = {} and context = {}\n",
            sql_quote(t),
            sql_quote(context.as_str()),
        ));
    }
    for (t, vno) in &pairs {
        sql.push_str(&format!(
            "insert sysContext values ({}, {}, {vno})\n",
            sql_quote(t),
            sql_quote(context.as_str()),
        ));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use led::Param;

    #[test]
    fn single_param() {
        let occ = Occurrence::point(
            "addStk",
            5,
            vec![Param::db("addStk", "db.u.addStk_inserted", 3, 5)],
        );
        let sql = sys_context_sql(&occ, ParameterContext::Recent);
        assert_eq!(
            sql,
            "delete sysContext where tableName = 'db.u.addStk_inserted' and context = 'RECENT'\n\
             insert sysContext values ('db.u.addStk_inserted', 'RECENT', 3)\n"
        );
        relsql::parser::parse_script(&sql).unwrap();
    }

    #[test]
    fn multiple_params_same_table_deleted_once() {
        // Cumulative occurrence: several vNos of the same shadow table.
        let occ = Occurrence::point(
            "e",
            9,
            vec![
                Param::db("e", "s1", 1, 1),
                Param::db("e", "s1", 2, 2),
                Param::db("e", "s2", 7, 3),
            ],
        );
        let sql = sys_context_sql(&occ, ParameterContext::Cumulative);
        assert_eq!(sql.matches("delete sysContext").count(), 2);
        assert_eq!(sql.matches("insert sysContext").count(), 3);
        assert!(sql.contains("('s1', 'CUMULATIVE', 1)"));
        assert!(sql.contains("('s1', 'CUMULATIVE', 2)"));
        assert!(sql.contains("('s2', 'CUMULATIVE', 7)"));
    }

    #[test]
    fn duplicate_pairs_inserted_once() {
        let occ = Occurrence::point(
            "e",
            9,
            vec![Param::db("e", "s1", 1, 1), Param::db("e", "s1", 1, 2)],
        );
        let sql = sys_context_sql(&occ, ParameterContext::Recent);
        assert_eq!(sql.matches("insert sysContext").count(), 1);
    }

    #[test]
    fn non_db_params_ignored() {
        let occ = Occurrence::point("e", 9, vec![Param::marker("e", 1), Param::time("e", 2)]);
        assert!(sys_context_sql(&occ, ParameterContext::Recent).is_empty());
    }
}
