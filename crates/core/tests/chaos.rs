//! Chaos suite for the exactly-once pump (ISSUE 1 acceptance criteria).
//!
//! A fixed-seed [`FaultPlan`] injects drops, duplicates, and reordering
//! into the `syb_sendmsg` channel while a 500-operation workload runs over
//! primitive and composite (SEQ / AND) triggers. The agent must produce
//! exactly the same rule firings as the zero-fault run — no losses, no
//! duplicate firings — while its reliability counters record the repairs.

use std::sync::{Arc, Mutex};

use eca_core::{AgentConfig, AgentStats, ChannelFaultCounts, EcaAgent, FaultPlan};
use relsql::{SqlServer, Value};

/// Everything observable from one workload run, for baseline/chaos diffing.
struct RunResult {
    /// `(internal event name, vNo)` in raise order, from an occurrence
    /// listener — the ground truth for "same firings, same order".
    occurrences: Vec<(String, i64)>,
    /// Rows in each audit table: (primitive, SEQ, AND).
    audits: (i64, i64, i64),
    stats: AgentStats,
    fault_counts: Option<ChannelFaultCounts>,
}

/// 250 interleaved insert pairs into `a` and `b` (500 operations) driving:
///   - `t_ea`  — primitive, DETACHED action into `audit_prim`
///   - `t_eb`  — primitive, print only
///   - `t_seq` — `ea ; eb` CHRONICLE into `audit_seq`
///   - `t_and` — `ea ^ eb` CHRONICLE into `audit_and`
fn run_workload(plan: Option<FaultPlan>) -> RunResult {
    run_workload_on(SqlServer::new(), plan)
}

fn run_workload_on(server: Arc<SqlServer>, plan: Option<FaultPlan>) -> RunResult {
    let agent = EcaAgent::new(
        Arc::clone(&server),
        match plan {
            Some(plan) => AgentConfig::builder().fault_plan(plan).build(),
            None => AgentConfig::builder().build(),
        },
    )
    .unwrap();

    let occurrences = Arc::new(Mutex::new(Vec::new()));
    {
        let occurrences = Arc::clone(&occurrences);
        agent.add_occurrence_listener(Arc::new(move |event, params, _ts| {
            let vno = params.first().and_then(|p| p.vno).unwrap_or(-1);
            occurrences.lock().unwrap().push((event.to_string(), vno));
        }));
    }

    let client = agent.client("db", "u");
    client.execute("create table a (x int)").unwrap();
    client.execute("create table b (x int)").unwrap();
    client.execute("create table audit_prim (n int)").unwrap();
    client.execute("create table audit_seq (n int)").unwrap();
    client.execute("create table audit_and (n int)").unwrap();
    client
        .execute(
            "create trigger t_ea on a for insert event ea DETACHED \
             as insert audit_prim values (1)",
        )
        .unwrap();
    client
        .execute("create trigger t_eb on b for insert event eb as print 'eb'")
        .unwrap();
    client
        .execute(
            "create trigger t_seq event eseq = ea ; eb CHRONICLE \
             as insert audit_seq values (1)",
        )
        .unwrap();
    client
        .execute(
            "create trigger t_and event eand = ea ^ eb CHRONICLE \
             as insert audit_and values (1)",
        )
        .unwrap();

    for i in 0..250 {
        client.execute(&format!("insert a values ({i})")).unwrap();
        client.execute(&format!("insert b values ({i})")).unwrap();
    }

    // Release anything still held in the reorder/delay buffers, then pump
    // once more so late arrivals get classified (and suppressed).
    agent.flush_notification_channel();
    client.execute("select count(*) from a").unwrap();
    agent.wait_detached();

    let count = |table: &str| -> i64 {
        let r = client
            .execute(&format!("select count(*) from {table}"))
            .unwrap();
        match r.server.scalar() {
            Some(Value::Int(n)) => *n,
            other => panic!("count({table}) returned {other:?}"),
        }
    };

    let recorded = occurrences.lock().unwrap().clone();
    RunResult {
        occurrences: recorded,
        audits: (count("audit_prim"), count("audit_seq"), count("audit_and")),
        stats: agent.stats(),
        fault_counts: agent.channel_fault_counts(),
    }
}

fn suffix_vnos(run: &RunResult, suffix: &str) -> Vec<i64> {
    run.occurrences
        .iter()
        .filter(|(e, _)| e.ends_with(suffix))
        .map(|(_, v)| *v)
        .collect()
}

#[test]
fn acceptance_chaos_run_matches_zero_fault_run() {
    let baseline = run_workload(None);
    let chaos = run_workload(Some(FaultPlan {
        drop: 0.5,
        duplicate: 0.2,
        reorder_window: 8,
        seed: 20260806,
        ..FaultPlan::default()
    }));

    // The zero-fault run is the reference: every insert detected once,
    // every pair composed once.
    assert_eq!(baseline.audits, (250, 250, 250));
    assert_eq!(baseline.occurrences.len(), 500);

    // Exactly the same rule firings, in the same order, despite the chaos.
    assert_eq!(chaos.occurrences, baseline.occurrences, "firings diverged");
    assert_eq!(chaos.audits, baseline.audits, "audit rows diverged");

    // Zero duplicate firings: per-event vNos are exactly 1..=250 ascending.
    for suffix in [".ea", ".eb"] {
        let vnos = suffix_vnos(&chaos, suffix);
        assert_eq!(vnos, (1..=250).collect::<Vec<i64>>(), "vNos for {suffix}");
    }

    // The channel really did misbehave...
    let faults = chaos.fault_counts.unwrap();
    assert!(faults.dropped > 0, "plan should have dropped datagrams");
    assert!(
        faults.duplicated > 0,
        "plan should have duplicated datagrams"
    );

    // ...and the agent noticed and repaired it.
    assert!(chaos.stats.drops_detected > 0);
    assert!(chaos.stats.gaps_repaired > 0);
    assert!(chaos.stats.duplicates_suppressed > 0);

    // The clean run repaired nothing.
    assert_eq!(baseline.stats.drops_detected, 0);
    assert_eq!(baseline.stats.gaps_repaired, 0);
    assert_eq!(baseline.stats.duplicates_suppressed, 0);
    assert_eq!(baseline.stats.retries, 0);
    assert_eq!(baseline.stats.dead_lettered, 0);
}

/// The agent's generated SQL must ride the auto-created shadow indexes:
/// every action procedure selects the triggering tuples with
/// `shadow.vNo = <version>`, and the shadow tables only grow. Run the same
/// rule set at two workload sizes and require (a) index hits at both, and
/// (b) rows-visited-per-operation stays flat — the signature of an O(1)
/// probe where an unindexed engine would scan the event's entire history.
#[test]
fn agent_sql_probes_shadow_indexes_as_tables_grow() {
    let run = |n: i64| -> (u64, f64) {
        let server = SqlServer::new();
        let agent = EcaAgent::with_defaults(Arc::clone(&server)).unwrap();
        let client = agent.client("db", "u");
        client.execute("create table a (x int)").unwrap();
        client.execute("create table b (x int)").unwrap();
        client.execute("create table audit_prim (n int)").unwrap();
        client.execute("create table audit_and (n int)").unwrap();
        client
            .execute("create trigger t_ea on a for insert event ea as insert audit_prim values (1)")
            .unwrap();
        client
            .execute("create trigger t_eb on b for insert event eb as print 'eb'")
            .unwrap();
        client
            .execute(
                "create trigger t_and event eand = ea ^ eb CHRONICLE \
                 as insert audit_and values (1)",
            )
            .unwrap();
        let before = agent.stats();
        for i in 0..n {
            client.execute(&format!("insert a values ({i})")).unwrap();
            client.execute(&format!("insert b values ({i})")).unwrap();
        }
        agent.flush_notification_channel();
        agent.wait_detached();
        let r = client.execute("select count(*) from audit_and").unwrap();
        assert_eq!(r.server.scalar(), Some(&Value::Int(n)));
        let after = agent.stats();
        let hits = after.index_hits - before.index_hits;
        let per_op = (after.rows_scanned - before.rows_scanned) as f64 / n as f64;
        (hits, per_op)
    };
    let (hits_small, per_op_small) = run(60);
    let (hits_large, per_op_large) = run(240);
    assert!(hits_small > 0, "agent SQL never hit an index at n=60");
    assert!(hits_large > 0, "agent SQL never hit an index at n=240");
    // A history scan would make per-op visits grow ~linearly with n (4x
    // here); indexed probes keep it flat. Allow 2x for noise.
    assert!(
        per_op_large < per_op_small * 2.0,
        "rows scanned per operation grew from {per_op_small:.1} to \
         {per_op_large:.1} — shadow probes are degrading into scans"
    );
}

#[test]
fn chaos_is_invariant_across_seeds_and_rates() {
    let baseline = run_workload(None);
    for (drop, duplicate, reorder_window, seed) in [
        (0.1, 0.0, 0, 1u64),
        (0.5, 0.5, 4, 99),
        (0.9, 0.2, 8, 7),
        (0.0, 1.0, 0, 12),
        (0.3, 0.3, 16, 31337),
    ] {
        let chaos = run_workload(Some(FaultPlan {
            drop,
            duplicate,
            reorder_window,
            seed,
            ..FaultPlan::default()
        }));
        assert_eq!(
            chaos.occurrences, baseline.occurrences,
            "drop={drop} dup={duplicate} window={reorder_window} seed={seed}"
        );
        assert_eq!(chaos.audits, baseline.audits);
    }
}

#[test]
fn delay_bursts_are_repaired_from_durable_state() {
    let baseline = run_workload(None);
    let chaos = run_workload(Some(FaultPlan {
        delay_burst_every: 5,
        delay_burst_len: 3,
        seed: 4,
        ..FaultPlan::default()
    }));
    assert_eq!(chaos.occurrences, baseline.occurrences);
    assert_eq!(chaos.audits, baseline.audits);
    let faults = chaos.fault_counts.unwrap();
    assert!(faults.delayed > 0, "bursts should have held datagrams back");
    // Held-back datagrams were synthesized from the durable tables first,
    // so their eventual arrival is a suppressed late arrival.
    assert!(chaos.stats.gaps_repaired > 0);
}

mod roundtrip {
    use eca_core::notifier::{decode, encode, Notification};
    use proptest::prelude::*;
    use relsql::notify::Datagram;

    proptest! {
        /// Any notification built from whitespace-free fields survives an
        /// encode → datagram → decode round trip — the property the
        /// gap-repair path relies on when it synthesizes payloads.
        #[test]
        fn encode_decode_roundtrip(
            user in "[a-zA-Z0-9_.]{1,12}",
            table in "[a-zA-Z0-9_.]{1,12}",
            operation in "insert|delete|update",
            event in "[a-zA-Z0-9_.]{1,30}",
            vno in 0i64..i64::MAX,
        ) {
            let n = Notification { user, table, operation, event, vno };
            let dg = Datagram {
                host: "127.0.0.1".into(),
                port: 10006,
                payload: encode(&n),
                seq: 0,
            };
            prop_assert_eq!(decode(&dg), Some(n));
        }
    }
}

/// Compiled physical-plan execution in the substrate must not perturb the
/// exactly-once pipeline: the same chaos workload produces identical rule
/// firings whether the server runs vectorized compiled plans (default) or
/// the row-at-a-time interpreter — and the compiled run really did take
/// the fast path for the agent's own probe/action SQL.
#[test]
fn chaos_firings_are_identical_across_compiled_and_interpreted_substrates() {
    let plan = FaultPlan {
        drop: 0.3,
        duplicate: 0.15,
        reorder_window: 6,
        seed: 20260808,
        ..FaultPlan::default()
    };
    let compiled_server = SqlServer::new();
    let compiled = run_workload_on(Arc::clone(&compiled_server), Some(plan.clone()));
    let interp_server = SqlServer::with_config(relsql::EngineConfig {
        compiled_exec: false,
        ..Default::default()
    });
    let interpreted = run_workload_on(Arc::clone(&interp_server), Some(plan));

    assert_eq!(
        compiled.occurrences, interpreted.occurrences,
        "firings diverged between compiled and interpreted substrates"
    );
    assert_eq!(compiled.audits, interpreted.audits);
    assert_eq!(compiled.audits, (250, 250, 250));

    let cs = compiled_server.server_stats();
    assert!(cs.exec_compiled > 0, "compiled path never engaged: {cs:?}");
    let is = interp_server.server_stats();
    assert_eq!(is.exec_compiled, 0);
    assert!(is.exec_fallback_disabled > 0);
}
