//! Property-based tests for the agent's parsing/filtering/naming layers.

use eca_core::{classify, naming, Classification};
use proptest::prelude::*;
use relsql::SessionCtx;

proptest! {
    #[test]
    fn classify_never_panics(s in ".{0,200}") {
        let _ = classify(&s);
    }

    #[test]
    fn plain_dml_always_passes_through(
        table in "[a-z][a-z0-9_]{0,8}",
        v in -1000i64..1000,
    ) {
        prop_assume!(!["event", "trigger"].contains(&table.as_str()));
        let sqls = [
            format!("insert {table} values ({v})"),
            format!("delete {table} where a = {v}"),
            format!("update {table} set a = {v}"),
            format!("select * from {table}"),
        ];
        for sql in sqls {
            prop_assert_eq!(classify(&sql), Classification::PassThrough, "{}", sql);
        }
    }

    #[test]
    fn eca_create_trigger_always_detected(
        trig in "[a-z][a-z0-9_]{0,8}",
        tab in "[a-z][a-z0-9_]{0,8}",
        ev in "[a-z][a-z0-9_]{0,8}",
    ) {
        let sql = format!(
            "create trigger {trig} on {tab} for insert event {ev} as print 'x'"
        );
        prop_assert!(matches!(classify(&sql), Classification::Eca(_)));
    }

    #[test]
    fn internal_name_expansion_is_idempotent(
        db in "[a-z]{1,6}",
        user in "[a-z]{1,6}",
        name in "[a-z][a-z0-9_]{0,8}",
    ) {
        let session = SessionCtx::new(db, user);
        let once = naming::internal(&session, &name);
        let twice = naming::internal(&session, &once);
        prop_assert_eq!(&once, &twice);
        // Always exactly three dot-separated parts.
        prop_assert_eq!(once.split('.').count(), 3);
        let suffix = format!(".{name}");
        prop_assert!(once.ends_with(&suffix));
    }

    #[test]
    fn base_inverts_internal(
        db in "[a-z]{1,6}",
        user in "[a-z]{1,6}",
        name in "[a-z][a-z0-9_]{0,8}",
    ) {
        let session = SessionCtx::new(db, user);
        let internal = naming::internal(&session, &name);
        prop_assert_eq!(naming::base(&internal), name.as_str());
        prop_assert_eq!(naming::prefix(&internal), format!("{}.{}", session.database, session.user));
    }

    #[test]
    fn rewrite_without_context_refs_is_identity(
        cols in prop::collection::vec("[a-z]{1,6}", 1..4),
        table in "[a-z]{1,8}",
    ) {
        prop_assume!(!table.eq_ignore_ascii_case("inserted") && !table.eq_ignore_ascii_case("deleted"));
        prop_assume!(cols.iter().all(|c| !c.eq_ignore_ascii_case("inserted") && !c.eq_ignore_ascii_case("deleted")));
        let sql = format!("select {} from {table}", cols.join(", "));
        let (out, refs) = eca_core::codegen::rewrite_context_refs(&sql, |t| t.to_string());
        prop_assert_eq!(out, sql);
        prop_assert!(refs.is_empty());
    }

    #[test]
    fn rewrite_finds_every_context_ref(tables in prop::collection::vec("[a-z]{2,6}", 1..5)) {
        prop_assume!(tables.iter().all(|t| t != "inserted" && t != "deleted" && t != "from"));
        let froms: Vec<String> = tables.iter().map(|t| format!("{t}.inserted")).collect();
        let sql = format!("select a from {}", froms.join(", "));
        let (out, refs) = eca_core::codegen::rewrite_context_refs(&sql, |t| format!("db.u.{t}"));
        // Every distinct table produced a ref, and no raw `.inserted`
        // survives in the output.
        let mut distinct: Vec<&String> = tables.iter().collect();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(refs.len(), distinct.len());
        prop_assert!(!out.contains(".inserted "), "{}", out);
        for t in &tables {
            let tmp = format!("db.u.{t}_inserted_tmp");
            prop_assert!(out.contains(&tmp));
        }
    }

    #[test]
    fn parse_eca_never_panics(s in ".{0,200}") {
        let _ = eca_core::parse_eca(&s);
    }

    #[test]
    fn sql_quote_roundtrips_through_lexer(s in "[^\\x00]{0,40}") {
        let quoted = eca_core::codegen::sql_quote(&s);
        let toks = relsql::lexer::tokenize(&quoted).unwrap();
        match &toks[0].kind {
            relsql::lexer::TokenKind::Str(out) => prop_assert_eq!(out, &s),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
