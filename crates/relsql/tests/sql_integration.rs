//! Larger SQL scenarios exercising many engine features together —
//! the kind of Transact-SQL the paper's generated code and its users'
//! actions rely on.

use relsql::{SqlServer, Value};

fn server() -> relsql::Session {
    let s = SqlServer::new();
    s.session("appdb", "app")
}

#[test]
fn order_entry_scenario() {
    let s = server();
    s.execute(
        "create table customers (id int not null, name varchar(20), tier varchar(8))\n\
         go\n\
         create table orders (id int, cust_id int, amount float)\n\
         go\n\
         insert customers values (1, 'Acme', 'gold'), (2, 'Bob', 'basic'), (3, 'Cyn', 'gold')",
    )
    .unwrap();
    for (id, cust, amount) in [
        (1, 1, 100.0),
        (2, 1, 250.0),
        (3, 2, 75.0),
        (4, 3, 30.0),
        (5, 3, 45.0),
        (6, 3, 60.0),
    ] {
        s.execute(&format!("insert orders values ({id}, {cust}, {amount})"))
            .unwrap();
    }
    // Join + aggregate + having + order by.
    let r = s
        .execute(
            "select customers.name, count(*) n, sum(orders.amount) total \
             from customers, orders \
             where customers.id = orders.cust_id \
             group by customers.name \
             having sum(orders.amount) > 100 \
             order by total desc",
        )
        .unwrap();
    let sel = r.last_select().unwrap();
    assert_eq!(sel.rows.len(), 2);
    assert_eq!(sel.rows[0][0], Value::Str("Acme".into()));
    assert_eq!(sel.rows[0][2], Value::Float(350.0));
    assert_eq!(sel.rows[1][0], Value::Str("Cyn".into()));
    assert_eq!(sel.rows[1][2], Value::Float(135.0));

    // Correlated-ish filtering via scalar subquery.
    let r = s
        .execute(
            "select name from customers \
             where (select count(*) from orders where orders.cust_id = customers.id) >= 2 \
             order by name",
        )
        .unwrap();
    let names: Vec<String> = r
        .last_select()
        .unwrap()
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect();
    assert_eq!(names, vec!["Acme", "Cyn"]);
}

#[test]
fn audit_trigger_chain_with_procedures() {
    let s = server();
    s.execute(
        "create table accounts (id int, balance float)\n\
         go\n\
         create table audit (account int, old_balance float, new_balance float)\n\
         go\n\
         create table big_moves (account int)\n\
         go\n\
         insert accounts values (1, 1000.0), (2, 500.0)",
    )
    .unwrap();
    s.execute(
        "create trigger audit_upd on accounts for update as \
         insert audit select deleted.id, deleted.balance, inserted.balance \
         from deleted, inserted where deleted.id = inserted.id",
    )
    .unwrap();
    s.execute(
        "create trigger big_move on audit for insert as \
         insert big_moves select account from inserted \
         where abs(new_balance - old_balance) > 100",
    )
    .unwrap();
    s.execute("update accounts set balance = balance - 50 where id = 1")
        .unwrap();
    s.execute("update accounts set balance = balance + 400 where id = 2")
        .unwrap();
    let r = s.execute("select count(*) from audit").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
    let r = s.execute("select account from big_moves").unwrap();
    assert_eq!(r.last_select().unwrap().rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn stored_procedure_with_control_flow() {
    let s = server();
    s.execute("create table counters (n int)").unwrap();
    s.execute("insert counters values (0)").unwrap();
    s.execute(
        "create procedure bump_to_ten as \
         while (select n from counters) < 10 \
           update counters set n = n + 1 \
         if (select n from counters) = 10 print 'reached ten'",
    )
    .unwrap();
    let r = s.execute("exec bump_to_ten").unwrap();
    assert_eq!(r.messages, vec!["reached ten"]);
    let r = s.execute("select n from counters").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(10)));
}

#[test]
fn like_between_in_filters() {
    let s = server();
    s.execute("create table parts (code varchar(12), price float)")
        .unwrap();
    for (code, price) in [
        ("GEAR-10", 5.0),
        ("GEAR-20", 12.0),
        ("BOLT-10", 0.5),
        ("BOLT-99", 1.5),
        ("NUT-01", 0.2),
    ] {
        s.execute(&format!("insert parts values ('{code}', {price})"))
            .unwrap();
    }
    let count = |sql: &str| -> i64 {
        match s.execute(sql).unwrap().scalar() {
            Some(Value::Int(n)) => *n,
            other => panic!("{other:?}"),
        }
    };
    assert_eq!(
        count("select count(*) from parts where code like 'GEAR%'"),
        2
    );
    assert_eq!(
        count("select count(*) from parts where code like '%-10'"),
        2
    );
    assert_eq!(
        count("select count(*) from parts where code like '____-__'"),
        4
    );
    assert_eq!(
        count("select count(*) from parts where price between 0.5 and 5.0"),
        3
    );
    assert_eq!(
        count("select count(*) from parts where code in ('NUT-01', 'BOLT-10', 'GHOST')"),
        2
    );
    assert_eq!(
        count("select count(*) from parts where code not like 'BOLT%' and price < 6"),
        2
    );
}

#[test]
fn select_into_then_evolve() {
    let s = server();
    s.execute("create table src (a int, b varchar(8))").unwrap();
    s.execute("insert src values (1, 'x'), (2, 'y'), (3, 'z')")
        .unwrap();
    // Copy with filter.
    s.execute("select * into dst from src where a >= 2")
        .unwrap();
    let r = s.execute("select count(*) from dst").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
    // Evolve the copy and backfill.
    s.execute("alter table dst add flag int null").unwrap();
    s.execute("update dst set flag = a * 10").unwrap();
    let r = s.execute("select flag from dst order by flag").unwrap();
    assert_eq!(
        r.last_select().unwrap().rows,
        vec![vec![Value::Int(20)], vec![Value::Int(30)]]
    );
}

#[test]
fn null_semantics_in_filters_and_aggregates() {
    let s = server();
    s.execute("create table t (a int, b int)").unwrap();
    s.execute("insert t values (1, 10), (2, null), (3, 30), (null, 40)")
        .unwrap();
    let count = |sql: &str| -> i64 {
        match s.execute(sql).unwrap().scalar() {
            Some(Value::Int(n)) => *n,
            other => panic!("{other:?}"),
        }
    };
    // NULL comparisons are unknown, not true.
    assert_eq!(count("select count(*) from t where b > 5"), 3);
    assert_eq!(count("select count(*) from t where b is null"), 1);
    assert_eq!(count("select count(*) from t where a is not null"), 3);
    // count(col) skips NULLs; count(*) does not.
    assert_eq!(count("select count(b) from t"), 3);
    assert_eq!(count("select count(*) from t"), 4);
    // sum skips NULLs.
    assert_eq!(count("select sum(b) from t"), 80);
    // isnull() / coalesce.
    assert_eq!(count("select sum(isnull(b, 0) + isnull(a, 0)) from t"), 86);
}

#[test]
fn batch_script_with_go_separators() {
    let s = server();
    let r = s
        .execute(
            "create table log (msg varchar(40))\n\
             go\n\
             create procedure note as insert log values ('noted')\n\
             go\n\
             exec note\n\
             exec note\n\
             go\n\
             select count(*) from log",
        )
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
}

#[test]
fn transaction_spanning_triggers() {
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("create table shadow (a int)").unwrap();
    s.execute("create trigger tr on t for insert as insert shadow select * from inserted")
        .unwrap();
    // Rolling back undoes both the base rows AND the trigger's writes.
    s.execute("begin tran insert t values (1) insert t values (2) rollback")
        .unwrap();
    let r = s.execute("select count(*) from t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)));
    let r = s.execute("select count(*) from shadow").unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Int(0)),
        "trigger effects rolled back"
    );
}

#[test]
fn distinct_and_qualified_wildcards() {
    let s = server();
    s.execute("create table a (x int)").unwrap();
    s.execute("create table b (x int, y int)").unwrap();
    s.execute("insert a values (1), (1), (2)").unwrap();
    s.execute("insert b values (1, 100), (2, 200)").unwrap();
    let r = s
        .execute("select distinct a.x from a, b where a.x = b.x order by x")
        .unwrap();
    assert_eq!(
        r.last_select().unwrap().rows,
        vec![vec![Value::Int(1)], vec![Value::Int(2)]]
    );
    let r = s
        .execute("select b.* from a, b where a.x = b.x and a.x = 2")
        .unwrap();
    assert_eq!(
        r.last_select().unwrap().rows,
        vec![vec![Value::Int(2), Value::Int(200)]]
    );
}

#[test]
fn string_functions_and_concat() {
    let s = server();
    s.execute("create table n (name varchar(20))").unwrap();
    s.execute("insert n values ('chakravarthy')").unwrap();
    let r = s
        .execute("select upper(name), len(name), 'dr. ' + name from n")
        .unwrap();
    let row = &r.last_select().unwrap().rows[0];
    assert_eq!(row[0], Value::Str("CHAKRAVARTHY".into()));
    assert_eq!(row[1], Value::Int(12));
    assert_eq!(row[2], Value::Str("dr. chakravarthy".into()));
}

#[test]
fn order_by_ordinal_and_alias() {
    let s = server();
    s.execute("create table t (a int, b int)").unwrap();
    s.execute("insert t values (1, 30), (2, 10), (3, 20)")
        .unwrap();
    let r = s.execute("select a, b total from t order by 2").unwrap();
    let firsts: Vec<i64> = r
        .last_select()
        .unwrap()
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(n) => n,
            _ => panic!(),
        })
        .collect();
    assert_eq!(firsts, vec![2, 3, 1]);
    let r = s
        .execute("select a, b total from t order by total desc")
        .unwrap();
    let firsts: Vec<i64> = r
        .last_select()
        .unwrap()
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(n) => n,
            _ => panic!(),
        })
        .collect();
    assert_eq!(firsts, vec![1, 3, 2]);
}

#[test]
fn explicit_join_syntax_executes() {
    let s = server();
    s.execute("create table d (id int, name varchar(10))")
        .unwrap();
    s.execute("create table e (did int, who varchar(10))")
        .unwrap();
    s.execute("insert d values (1, 'eng'), (2, 'ops')").unwrap();
    s.execute("insert e values (1, 'ann'), (1, 'bob'), (2, 'cyn')")
        .unwrap();
    let r = s
        .execute(
            "select d.name, e.who from d join e on d.id = e.did \
             where d.name = 'eng' order by who",
        )
        .unwrap();
    let rows = &r.last_select().unwrap().rows;
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::Str("ann".into()));
    // Three-way chain.
    s.execute("create table badge (who varchar(10), n int)")
        .unwrap();
    s.execute("insert badge values ('ann', 7)").unwrap();
    let r = s
        .execute(
            "select badge.n from d inner join e on d.id = e.did \
             join badge on badge.who = e.who",
        )
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(7)));
}

#[test]
fn division_by_zero_is_an_error_not_a_panic() {
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("insert t values (0)").unwrap();
    let err = s.execute("select 1 / a from t").unwrap_err();
    assert!(err.to_string().contains("division"));
    let err = s.execute("select 5 % a from t").unwrap_err();
    assert!(err.to_string().contains("division"));
}

/// Run the same scenario against a compiled-execution server and an
/// interpreter-only server; both must agree (the satellite surface tests
/// below all go through this).
fn on_both_paths(f: impl Fn(&relsql::Session)) {
    let compiled = SqlServer::new();
    f(&compiled.session("appdb", "app"));
    let interpreted = SqlServer::with_config(relsql::EngineConfig {
        compiled_exec: false,
        ..Default::default()
    });
    f(&interpreted.session("appdb", "app"));
}

#[test]
fn count_distinct_aggregates() {
    on_both_paths(|s| {
        s.execute("create table trades (sym varchar(8), qty int, px float)")
            .unwrap();
        s.execute(
            "insert trades values ('IBM', 100, 10.0), ('IBM', 100, 11.0), \
             ('HP', 200, 12.0), ('HP', 300, 12.0), ('SUN', 100, 10.0)",
        )
        .unwrap();
        let r = s.execute("select count(distinct sym) from trades").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        // DISTINCT dedups values, not rows: three distinct qty values.
        let r = s
            .execute("select count(distinct qty), sum(distinct qty) from trades")
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(rows[0][0], Value::Int(3));
        assert_eq!(rows[0][1], Value::Int(600));
        // avg(distinct px): (10 + 11 + 12) / 3.
        let r = s.execute("select avg(distinct px) from trades").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Float(11.0)));
        // Per-group distinct counts.
        let r = s
            .execute(
                "select sym, count(distinct px) from trades \
                 group by sym order by sym",
            )
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], Value::Int(1)); // HP: 12.0 twice
        assert_eq!(rows[1][1], Value::Int(2)); // IBM: 10.0, 11.0
                                               // NULLs are excluded before dedup, as for plain aggregates.
        s.execute("insert trades (sym) values ('IBM')").unwrap();
        let r = s.execute("select count(distinct qty) from trades").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        // count(distinct *) is rejected.
        let err = s
            .execute("select count(distinct *) from trades")
            .unwrap_err();
        assert!(err.to_string().contains("DISTINCT"));
        // DISTINCT inside a scalar function is rejected.
        let err = s
            .execute("select abs(distinct qty) from trades")
            .unwrap_err();
        assert!(err.to_string().contains("DISTINCT"));
    });
}

#[test]
fn having_aggregate_not_in_select_list() {
    on_both_paths(|s| {
        s.execute("create table orders (cust varchar(8), amount int)")
            .unwrap();
        s.execute("insert orders values ('a', 10), ('a', 20), ('b', 5), ('b', 1), ('c', 100)")
            .unwrap();
        // HAVING filters on sum(amount) which the projection never mentions.
        let r = s
            .execute(
                "select cust from orders group by cust \
                 having sum(amount) > 20 order by cust",
            )
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("a".into()));
        assert_eq!(rows[1][0], Value::Str("c".into()));
        // Same with a distinct aggregate in HAVING only.
        let r = s
            .execute(
                "select cust from orders group by cust \
                 having count(distinct amount) = 2 order by cust",
            )
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("a".into()));
        assert_eq!(rows[1][0], Value::Str("b".into()));
        // Global group (no GROUP BY): HAVING on an unprojected aggregate.
        let r = s
            .execute("select count(*) from orders having sum(amount) > 1000")
            .unwrap();
        assert_eq!(r.last_select().unwrap().rows.len(), 0);
    });
}

#[test]
fn compiled_execution_counters_tick() {
    let server = SqlServer::new();
    let s = server.session("appdb", "app");
    s.execute("create table t (a int, b int)").unwrap();
    for i in 0..50 {
        s.execute(&format!("insert t values ({i}, {})", i % 7))
            .unwrap();
    }
    for _ in 0..3 {
        let r = s.execute("select count(*) from t where b = 3").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
    }
    let stats = server.server_stats();
    assert!(
        stats.exec_compiled > 0,
        "compiled path never ran: {stats:?}"
    );
    assert!(stats.batches_vectorized > 0);
    assert!(stats.rows_batched >= 50);
    // Repeated shapes reuse the lowered plan through the masked-literal
    // cache entry.
    assert!(stats.plan_lowered_hits > 0, "{stats:?}");
    // An interpreter-only server ticks the disabled-fallback reason.
    let off = SqlServer::with_config(relsql::EngineConfig {
        compiled_exec: false,
        ..Default::default()
    });
    let s = off.session("appdb", "app");
    s.execute("create table t (a int)").unwrap();
    s.execute("insert t values (1)").unwrap();
    s.execute("select a from t").unwrap();
    let stats = off.server_stats();
    assert_eq!(stats.exec_compiled, 0);
    assert!(stats.exec_fallback_disabled > 0);
}

#[test]
fn datediff_dateadd_parity_on_both_paths() {
    // Micros since the Unix epoch (UTC): the engine's DateTime unit.
    const D1999_01_01: i64 = 915_148_800_000_000;
    const D1999_01_31: i64 = 917_740_800_000_000;
    const D1999_02_01: i64 = 917_827_200_000_000;
    const D1999_02_28: i64 = 920_160_000_000_000;
    const D1998_12_31: i64 = 915_062_400_000_000;
    const D2000_02_29: i64 = 951_782_400_000_000;
    const D2001_02_28: i64 = 983_318_400_000_000;
    on_both_paths(|s| {
        s.execute("create table spans (id int, lo datetime, hi datetime)")
            .unwrap();
        s.execute(&format!(
            "insert spans values (1, {D1999_01_31}, {D1999_02_01}), \
             (2, {D1998_12_31}, {D1999_01_01}), (3, NULL, {D1999_01_01})"
        ))
        .unwrap();
        // Bare datepart identifiers, T-SQL style, over column operands.
        let r = s
            .execute("select datediff(day, lo, hi) from spans where id = 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        let r = s
            .execute("select datediff(month, lo, hi) from spans where id = 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        let r = s
            .execute("select datediff(yy, lo, hi) from spans where id = 2")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        // NULL operand propagates.
        let r = s
            .execute("select datediff(day, lo, hi) from spans where id = 3")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Null));
        // Quoted datepart works too (what the parser rewrite desugars to).
        let r = s
            .execute("select datediff('day', lo, hi) from spans where id = 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        // dateadd: month-end clamping and leap-year handling.
        let r = s
            .execute(&format!("select dateadd(month, 1, {D1999_01_31})"))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::DateTime(D1999_02_28)));
        let r = s
            .execute(&format!("select dateadd(year, 1, {D2000_02_29})"))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::DateTime(D2001_02_28)));
        let r = s
            .execute(&format!("select dateadd(day, -1, {D1999_01_01})"))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::DateTime(D1998_12_31)));
        // datediff composes with dateadd and WHERE filtering.
        let r = s
            .execute(
                "select count(*) from spans \
                 where datediff(day, lo, dateadd(day, 1, lo)) = 1",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        // Unknown datepart: identical error text on both paths.
        let e = s
            .execute("select datediff('fortnight', lo, hi) from spans")
            .unwrap_err()
            .to_string();
        assert!(e.contains("unknown datepart 'fortnight'"), "{e}");
        // A datepart name that is also a real column still resolves as a
        // column in non-datepart positions.
        s.execute("create table cal (day int)").unwrap();
        s.execute("insert cal values (7)").unwrap();
        let r = s.execute("select day from cal").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
    });
}

#[test]
fn datepart_datename_getutcdate_parity_on_both_paths() {
    // Micros since the Unix epoch (UTC). 1999-01-01 was a Friday.
    const D1999_01_01: i64 = 915_148_800_000_000;
    const SUN_1999_01_03: i64 = 915_321_600_000_000;
    const D2000_02_29: i64 = 951_782_400_000_000;
    on_both_paths(|s| {
        s.execute("create table dates (id int, d datetime)")
            .unwrap();
        let friday_afternoon = D1999_01_01 + (14 * 3600 + 30 * 60 + 5) * 1_000_000;
        s.execute(&format!(
            "insert dates values (1, {friday_afternoon}), (2, {SUN_1999_01_03}), \
             (3, {D2000_02_29}), (4, NULL)"
        ))
        .unwrap();
        // Bare datepart identifiers over column operands, T-SQL style.
        for (part, want) in [
            ("year", 1999),
            ("quarter", 1),
            ("month", 1),
            ("day", 1),
            ("dayofyear", 1),
            ("weekday", 6), // Sunday = 1 ⇒ Friday = 6
            ("week", 1),
            ("hour", 14),
            ("minute", 30),
            ("second", 5),
        ] {
            let r = s
                .execute(&format!(
                    "select datepart({part}, d) from dates where id = 1"
                ))
                .unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(want)), "datepart({part})");
        }
        // Abbreviations hit the same parts; Sunday opens week 2.
        let r = s
            .execute("select datepart(dw, d), datepart(wk, d) from dates where id = 2")
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
        // Leap-year day-of-year through a quoted datepart.
        let r = s
            .execute("select datepart('dy', d) from dates where id = 3")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(60)));
        // DATENAME: month/weekday names, numeric text elsewhere.
        let r = s
            .execute(
                "select datename(month, d), datename(weekday, d), datename(yy, d) \
                      from dates where id = 1",
            )
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        assert_eq!(
            rows[0],
            vec![
                Value::Str("January".into()),
                Value::Str("Friday".into()),
                Value::Str("1999".into()),
            ]
        );
        // NULL propagates through both functions.
        let r = s
            .execute("select datepart(day, d), datename(month, d) from dates where id = 4")
            .unwrap();
        assert_eq!(
            r.last_select().unwrap().rows[0],
            vec![Value::Null, Value::Null]
        );
        // Unknown datepart: identical error text on both paths.
        let e = s
            .execute("select datepart('era', d) from dates")
            .unwrap_err()
            .to_string();
        assert!(e.contains("unknown datepart 'era'"), "{e}");
        // GETUTCDATE reads the same deterministic logical clock as
        // GETDATE, so the engine's UTC clock makes them equal and both
        // compose with the other date functions.
        let r = s
            .execute("select datediff(day, getutcdate(), getutcdate())")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
        let r = s.execute("select datepart(year, getutcdate())").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1999)));
    });
}
