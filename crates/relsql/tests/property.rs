//! Property-based tests for the SQL engine's core invariants.

use proptest::prelude::*;
use relsql::value::{DataType, Value};
use relsql::{Engine, SessionCtx};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

proptest! {
    // ------------------------------------------------------------- values

    #[test]
    fn varchar_coercion_respects_length(s in ".{0,40}", n in 1usize..20) {
        let v = Value::Str(s).coerce_to(DataType::Varchar(n)).unwrap();
        match v {
            Value::Str(out) => prop_assert!(out.len() <= n),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn int_float_roundtrip(i in -1_000_000i64..1_000_000) {
        let f = Value::Int(i).coerce_to(DataType::Float).unwrap();
        let back = f.coerce_to(DataType::Int).unwrap();
        prop_assert_eq!(back, Value::Int(i));
    }

    #[test]
    fn sql_cmp_is_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        let ab = va.sql_cmp(&vb).unwrap();
        let ba = vb.sql_cmp(&va).unwrap();
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_cmp_sorts_consistently(mut vals in prop::collection::vec(-100i64..100, 0..20)) {
        let mut values: Vec<Value> = vals.drain(..).map(Value::Int).collect();
        values.push(Value::Null);
        values.sort_by(|a, b| a.total_cmp(b));
        // NULLs first, then ascending ints.
        prop_assert_eq!(&values[0], &Value::Null);
        for w in values.windows(2) {
            prop_assert!(w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
        }
    }

    // -------------------------------------------------------------- LIKE

    #[test]
    fn like_self_match_without_wildcards(s in "[a-zA-Z0-9 ]{0,20}") {
        prop_assert!(relsql::like_match(&s, &s));
    }

    #[test]
    fn like_percent_matches_everything(s in ".{0,20}") {
        prop_assert!(relsql::like_match(&s, "%"));
    }

    #[test]
    fn like_prefix_suffix(s in "[a-z]{1,10}", rest in "[a-z]{0,10}") {
        let hay = format!("{s}{rest}");
        let pre = format!("{s}%");
        let suf = format!("%{rest}");
        prop_assert!(relsql::like_match(&hay, &pre));
        prop_assert!(relsql::like_match(&hay, &suf));
    }

    #[test]
    fn like_underscore_counts_chars(s in "[a-z]{1,15}") {
        let pattern: String = "_".repeat(s.chars().count());
        let longer = format!("{pattern}_");
        prop_assert!(relsql::like_match(&s, &pattern));
        prop_assert!(!relsql::like_match(&s, &longer));
    }

    // ------------------------------------------------------------- lexer

    #[test]
    fn lexer_never_panics(s in ".{0,200}") {
        let _ = relsql::lexer::tokenize(&s);
    }

    #[test]
    fn parser_never_panics(s in ".{0,200}") {
        let _ = relsql::parser::parse_script(&s);
    }

    #[test]
    fn string_literal_roundtrip(s in "[^']{0,30}") {
        let sql = format!("'{s}'");
        let toks = relsql::lexer::tokenize(&sql).unwrap();
        match &toks[0].kind {
            relsql::lexer::TokenKind::Str(out) => prop_assert_eq!(out, &s),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    // ------------------------------------------------------------ engine

    #[test]
    fn insert_count_matches(n in 0usize..30) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for i in 0..n {
            e.execute(&format!("insert t values ({i})"), &s).unwrap();
        }
        let r = e.execute("select count(*) from t", &s).unwrap();
        prop_assert_eq!(r.scalar(), Some(&Value::Int(n as i64)));
    }

    #[test]
    fn sum_and_avg_agree(vals in prop::collection::vec(-100i64..100, 1..25)) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for v in &vals {
            e.execute(&format!("insert t values ({v})"), &s).unwrap();
        }
        let r = e.execute("select sum(a), avg(a), min(a), max(a) from t", &s).unwrap();
        let row = &r.last_select().unwrap().rows[0];
        let sum: i64 = vals.iter().sum();
        prop_assert_eq!(&row[0], &Value::Int(sum));
        match &row[1] {
            Value::Float(avg) => {
                let expected = sum as f64 / vals.len() as f64;
                prop_assert!((avg - expected).abs() < 1e-9);
            }
            other => prop_assert!(false, "avg not float: {other:?}"),
        }
        prop_assert_eq!(&row[2], &Value::Int(*vals.iter().min().unwrap()));
        prop_assert_eq!(&row[3], &Value::Int(*vals.iter().max().unwrap()));
    }

    #[test]
    fn where_partition_is_complete(vals in prop::collection::vec(-50i64..50, 0..25), pivot in -50i64..50) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for v in &vals {
            e.execute(&format!("insert t values ({v})"), &s).unwrap();
        }
        let lo = e.execute(&format!("select count(*) from t where a < {pivot}"), &s).unwrap();
        let hi = e.execute(&format!("select count(*) from t where a >= {pivot}"), &s).unwrap();
        let (lo, hi) = match (lo.scalar(), hi.scalar()) {
            (Some(Value::Int(a)), Some(Value::Int(b))) => (*a, *b),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        prop_assert_eq!(lo + hi, vals.len() as i64);
    }

    #[test]
    fn order_by_produces_sorted_output(vals in prop::collection::vec(-100i64..100, 0..25)) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for v in &vals {
            e.execute(&format!("insert t values ({v})"), &s).unwrap();
        }
        let r = e.execute("select a from t order by a", &s).unwrap();
        let rows = &r.last_select().unwrap().rows;
        for w in rows.windows(2) {
            prop_assert!(w[0][0].sql_cmp(&w[1][0]) != Some(std::cmp::Ordering::Greater));
        }
        prop_assert_eq!(rows.len(), vals.len());
    }

    #[test]
    fn rollback_restores_row_count(
        before in 0usize..10,
        during in 0usize..10,
    ) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for i in 0..before {
            e.execute(&format!("insert t values ({i})"), &s).unwrap();
        }
        e.execute("begin tran", &s).unwrap();
        for i in 0..during {
            e.execute(&format!("insert t values ({i})"), &s).unwrap();
        }
        e.execute("rollback", &s).unwrap();
        let r = e.execute("select count(*) from t", &s).unwrap();
        prop_assert_eq!(r.scalar(), Some(&Value::Int(before as i64)));
    }

    #[test]
    fn identifiers_roundtrip_through_catalog(name in ident()) {
        // Skip reserved words that the parser will reject as table names.
        prop_assume!(!["select","insert","update","delete","create","drop","alter","print",
                       "execute","exec","begin","commit","rollback","if","while","end","else",
                       "truncate","where","group","order","having","from","into","set","values",
                       "on","as","union","go","and","or","not","in","between","like","is","null",
                       "exists","distinct","tran","transaction","desc","asc","by","add","table",
                       "trigger","procedure","proc","for","inserted","deleted"]
                      .contains(&name.as_str()));
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute(&format!("create table {name} (a int)"), &s).unwrap();
        e.execute(&format!("insert {name} values (1)"), &s).unwrap();
        let r = e.execute(&format!("select a from {name}"), &s).unwrap();
        prop_assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn join_syntax_equivalent_to_comma_join(
        xs in prop::collection::vec(0i64..10, 0..15),
        ys in prop::collection::vec(0i64..10, 0..15),
    ) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table a (x int)", &s).unwrap();
        e.execute("create table b (x int)", &s).unwrap();
        for x in &xs {
            e.execute(&format!("insert a values ({x})"), &s).unwrap();
        }
        for y in &ys {
            e.execute(&format!("insert b values ({y})"), &s).unwrap();
        }
        let r1 = e
            .execute("select count(*) from a join b on a.x = b.x", &s)
            .unwrap();
        let r2 = e
            .execute("select count(*) from a, b where a.x = b.x", &s)
            .unwrap();
        prop_assert_eq!(r1.scalar(), r2.scalar());
        // Oracle: pairwise equality count.
        let expected: i64 = xs
            .iter()
            .map(|x| ys.iter().filter(|y| *y == x).count() as i64)
            .sum();
        prop_assert_eq!(r1.scalar(), Some(&Value::Int(expected)));
    }

    #[test]
    fn group_counts_sum_to_total(vals in prop::collection::vec(0i64..5, 0..30)) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        for v in &vals {
            e.execute(&format!("insert t values ({v})"), &s).unwrap();
        }
        let r = e
            .execute("select a, count(*) n from t group by a order by a", &s)
            .unwrap();
        let rows = &r.last_select().unwrap().rows;
        let total: i64 = rows
            .iter()
            .map(|row| match row[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(total, vals.len() as i64);
        // One group per distinct value, in ascending order.
        let mut distinct: Vec<i64> = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let groups: Vec<i64> = rows
            .iter()
            .map(|row| match row[0] {
                Value::Int(n) => n,
                _ => -1,
            })
            .collect();
        prop_assert_eq!(groups, distinct);
    }

    #[test]
    fn update_then_select_sees_new_values(v0 in -100i64..100, v1 in -100i64..100) {
        let mut e = Engine::new();
        let s = SessionCtx::default();
        e.execute("create table t (a int)", &s).unwrap();
        e.execute(&format!("insert t values ({v0})"), &s).unwrap();
        e.execute(&format!("update t set a = {v1}"), &s).unwrap();
        let r = e.execute("select a from t", &s).unwrap();
        prop_assert_eq!(r.scalar(), Some(&Value::Int(v1)));
    }

    // ----------------------------------------------------- access paths

    /// Indexed and index-free engines must be observationally identical:
    /// same rows, same order, same post-DML table state — for sargable
    /// predicates (routed through hash/ordered indexes), unsargable ones
    /// (computed expressions the planner must not touch), NULL-laden data
    /// (3VL: an index probe must never surface a NULL match), and ORDER BY
    /// with ties (tie order falls back to the underlying scan order, which
    /// the indexed path restores by sorting candidate positions).
    #[test]
    fn indexed_and_scan_engines_agree(
        rows in prop::collection::vec(
            (
                prop::option::of(-5i64..5),
                prop::option::of(-5i64..5),
                prop::option::of("[ab]{1,2}"),
            ),
            0..40,
        ),
        predicate in index_predicate(),
        bump in -3i64..3,
    ) {
        check_indexed_scan_agreement(&rows, &predicate, bump);
    }
}

/// Deterministic exercise of the equivalence harness, so the invariant is
/// checked even when the randomized run is skipped or shrunk away.
#[test]
fn indexed_scan_agreement_smoke() {
    let rows = vec![
        (Some(1), Some(2), Some("a".to_string())),
        (None, Some(-1), None),
        (Some(3), None, Some("ab".to_string())),
        (Some(1), Some(2), Some("b".to_string())),
        (Some(-4), Some(2), Some("a".to_string())),
    ];
    for pred in [
        "a = 1",
        "b between 0 and 2",
        "(a in (1, 3)) or (c = 'b')",
        "a is null",
        "a + 0 = 3 and b is not null",
        "b > -2",
        "c = 'ab'",
        "a >= 0 and a < 3",
    ] {
        check_indexed_scan_agreement(&rows, pred, 2);
    }
}

/// Drive the same data and statements through an indexed engine and an
/// index-free oracle, asserting byte-identical visible behaviour.
fn check_indexed_scan_agreement(
    rows: &[(Option<i64>, Option<i64>, Option<String>)],
    predicate: &str,
    bump: i64,
) {
    let s = SessionCtx::default();
    let mut indexed = Engine::new();
    let mut scan = Engine::new();
    for e in [&mut indexed, &mut scan] {
        e.execute(
            "create table t (a int null, b int null, c varchar(5) null)",
            &s,
        )
        .unwrap();
    }
    // Only the first engine gets indexes; the second is the oracle.
    indexed
        .execute("create hash index pih_a on t (a)", &s)
        .unwrap();
    indexed.execute("create index pix_b on t (b)", &s).unwrap();
    indexed
        .execute("create hash index pih_c on t (c)", &s)
        .unwrap();
    for (a, b, c) in rows {
        let lit = |v: &Option<i64>| v.map_or("null".to_string(), |x| x.to_string());
        let slit = |v: &Option<String>| v.as_ref().map_or("null".to_string(), |x| format!("'{x}'"));
        let sql = format!("insert t values ({}, {}, {})", lit(a), lit(b), slit(c));
        indexed.execute(&sql, &s).unwrap();
        scan.execute(&sql, &s).unwrap();
    }
    let queries = [
        format!("select * from t where {predicate}"),
        format!("select a, c from t where {predicate} order by b"),
        format!("update t set a = a + {bump} where {predicate}"),
        format!("delete t where {predicate}"),
        "select * from t".to_string(),
    ];
    for q in &queries {
        let ri = indexed.execute(q, &s).unwrap();
        let rs = scan.execute(q, &s).unwrap();
        assert_eq!(ri.results.len(), rs.results.len(), "{q}");
        for (a, b) in ri.results.iter().zip(&rs.results) {
            assert_eq!(a.columns, b.columns, "{q}");
            assert_eq!(a.rows, b.rows, "{q}");
        }
    }
}

/// A WHERE clause mixing sargable atoms (equality, IN, BETWEEN, range
/// comparisons on bare columns) with unsargable ones (arithmetic over the
/// column, IS [NOT] NULL), glued by AND/OR.
fn index_predicate() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (-5i64..5).prop_map(|k| format!("a = {k}")),
        (-5i64..5).prop_map(|k| format!("b = {k}")),
        "[ab]{1,2}".prop_map(|v| format!("c = '{v}'")),
        (-5i64..5, 0i64..6).prop_map(|(lo, w)| format!("b between {lo} and {}", lo + w)),
        (-5i64..5).prop_map(|k| format!("b > {k}")),
        (-5i64..5).prop_map(|k| format!("b <= {k}")),
        (-5i64..5).prop_map(|k| format!("a >= {k} and a < {}", k + 3)),
        prop::collection::vec(-5i64..5, 1..4).prop_map(|vs| {
            let list: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            format!("a in ({})", list.join(", "))
        }),
        Just("a is null".to_string()),
        Just("b is not null".to_string()),
        (-5i64..5).prop_map(|k| format!("a + 0 = {k}")),
    ];
    prop::collection::vec((atom, prop::bool::ANY), 1..4).prop_map(|parts| {
        let mut out = String::new();
        for (i, (p, conj)) in parts.iter().enumerate() {
            if i > 0 {
                out.push_str(if *conj { " and " } else { " or " });
            }
            out.push('(');
            out.push_str(p);
            out.push(')');
        }
        out
    })
}
