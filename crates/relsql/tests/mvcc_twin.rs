//! Twin-run MVCC witness (E13 shape): the snapshot lane must be
//! *observationally identical* to lock-scheduled live reads.
//!
//! The same seeded workload runs twice — once with a normal reader session
//! (MVCC snapshot lane) and once with a `with_live_reads` reader (table
//! locks over live rows). Every read result must match byte for byte: if
//! publication ever missed a table in a batch's write set (trigger bodies
//! included) or lagged a committed batch, the dumps diverge. The MVCC run
//! additionally proves the reads were lock-free (`lock_waits == 0`,
//! `snapshot_reads` accounts for every read batch).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relsql::{SqlServer, Value};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READ_BATCH: &str =
    "select * from t0\nselect * from t1\nselect * from t2\nselect * from audit";

fn setup(server: &Arc<SqlServer>) {
    let s = server.session("db", "u");
    for sql in [
        "create table t0 (k int, v int)",
        "create table t1 (k int, v int)",
        "create table t2 (k int, v int)",
        "create table audit (k int, v int)",
        // A trigger drags `audit` into t0-DML write sets: publication must
        // cover trigger-written tables, not just the statement's target.
        "create trigger tr0 on t0 for insert as insert audit values (1, 1)",
    ] {
        s.execute(sql).unwrap();
    }
}

/// One random mutating batch; occasionally multi-statement across tables.
fn writer_batch(rng: &mut StdRng, i: usize) -> String {
    let t = rng.gen_range(0u32..3);
    let k = rng.gen_range(0i64..8);
    let v = rng.gen_range(0i64..100);
    match rng.gen_range(0u32..10) {
        0..=5 => format!("insert t{t} values ({k}, {v})"),
        6..=7 => format!("update t{t} set v = {v} where k = {k}"),
        8 => format!("delete t{t} where k = {k}"),
        _ => format!("insert t1 values ({i}, {v})\ninsert t2 values ({i}, {v})"),
    }
}

/// Run the seeded workload: alternate one writer batch with one read batch
/// and return the concatenated read results plus the server counters.
fn run(seed: u64, live_reads: bool) -> (String, relsql::ServerStats) {
    let server = SqlServer::new();
    setup(&server);
    let writer = server.session("db", "w");
    let reader = if live_reads {
        server.session("db", "r").with_live_reads()
    } else {
        server.session("db", "r")
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for i in 0..40 {
        writer.execute(&writer_batch(&mut rng, i)).unwrap();
        let r = reader.execute(READ_BATCH).unwrap();
        for q in r.results.iter().filter(|q| !q.columns.is_empty()) {
            out.push_str(&format!("{:?}\n", q.rows));
        }
    }
    (out, server.server_stats())
}

#[test]
fn twin_run_snapshot_reads_are_byte_identical_to_locked_reads() {
    for seed in 0..8u64 {
        let (mvcc, mvcc_stats) = run(seed, false);
        let (locked, locked_stats) = run(seed, true);
        assert_eq!(mvcc, locked, "seed {seed}: snapshot read diverged");
        // The twin differs only in lane: every read batch was a snapshot
        // read in one run and a lock-scheduled read in the other.
        assert_eq!(mvcc_stats.snapshot_reads, 40, "seed {seed}");
        assert_eq!(locked_stats.snapshot_reads, 0, "seed {seed}");
        assert_eq!(mvcc_stats.lock_waits, 0, "seed {seed}: reader waited");
    }
}

#[test]
fn concurrent_snapshot_reads_are_epoch_consistent_and_lock_free() {
    let server = SqlServer::new();
    let s = server.session("db", "u");
    s.execute("create table credits (a int)").unwrap();
    s.execute("create table debits (a int)").unwrap();

    // The writer keeps a cross-table invariant: both tables grow in the
    // same batch, so at every published epoch their sums are equal. A
    // reader that ever pinned the two tables at *different* epochs (a torn
    // snapshot) would observe them out of step.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let session = server.session("db", "w");
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session
                    .execute("insert credits values (1)\ninsert debits values (1)")
                    .unwrap();
                batches += 1;
            }
            batches
        })
    };

    let reader = server.session("db", "r");
    for _ in 0..200 {
        let r = reader
            .execute("select sum(a) from credits\nselect sum(a) from debits")
            .unwrap();
        let sums: Vec<i64> = r
            .results
            .iter()
            .filter(|q| !q.columns.is_empty())
            .map(|q| match q.scalar() {
                Some(Value::Int(n)) => *n,
                _ => 0,
            })
            .collect();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0], sums[1], "torn multi-table snapshot");
    }

    stop.store(true, Ordering::Relaxed);
    let batches = writer.join().unwrap();
    assert!(batches > 0, "writer made no progress");
    let stats = server.server_stats();
    assert_eq!(stats.snapshot_reads, 200);
    assert_eq!(
        stats.lock_waits, 0,
        "snapshot readers must never touch the lock manager"
    );
}

#[test]
fn disjoint_writers_never_tear_each_others_publications() {
    let server = SqlServer::new();
    let s = server.session("db", "u");
    for sql in [
        "create table a (k int)",
        "create table a_audit (k int)",
        "create table b (k int)",
        "create table b_audit (k int)",
        // Triggers make each writer's publication multi-table: a torn
        // epoch window would let a reader pin `a`'s new version together
        // with `a_audit`'s old one.
        "create trigger tra on a for insert as insert a_audit values (1)",
        "create trigger trb on b for insert as insert b_audit values (1)",
    ] {
        s.execute(sql).unwrap();
    }

    // Two effectful writers with disjoint footprints run concurrently
    // under the schedule *read* lock, so their publication windows race.
    // The seqlock epoch tolerates only one writer at a time: interleaved
    // open-increments (A: 0→1, B: 1→2) would read as "no window open"
    // while both publications were still in flight, and a reader could
    // accept a half-published pin.
    let stop = Arc::new(AtomicBool::new(false));
    let spawn_writer = |table: &'static str| {
        let session = server.session("db", "w");
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session
                    .execute(&format!("insert {table} values (1)"))
                    .unwrap();
                batches += 1;
            }
            batches
        })
    };
    let writer_a = spawn_writer("a");
    let writer_b = spawn_writer("b");

    let reader = server.session("db", "r");
    for _ in 0..300 {
        let r = reader
            .execute(
                "select count(*) from a\nselect count(*) from a_audit\n\
                 select count(*) from b\nselect count(*) from b_audit",
            )
            .unwrap();
        let counts: Vec<i64> = r
            .results
            .iter()
            .filter(|q| !q.columns.is_empty())
            .map(|q| match q.scalar() {
                Some(Value::Int(n)) => *n,
                _ => 0,
            })
            .collect();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts[0], counts[1], "torn publication: a vs a_audit");
        assert_eq!(counts[2], counts[3], "torn publication: b vs b_audit");
    }

    stop.store(true, Ordering::Relaxed);
    assert!(writer_a.join().unwrap() > 0, "writer a made no progress");
    assert!(writer_b.join().unwrap() > 0, "writer b made no progress");
    // Pins may rarely degrade to lock scheduling under publication churn
    // (bounded retry), so assert the lane was used, not used exclusively.
    assert!(server.server_stats().snapshot_reads > 0);
}
