//! Crash-recovery property tests: torn writes at arbitrary byte offsets,
//! duplicated tail frames, silent corruption, and lying fsyncs.
//!
//! The core property (CrashMonkey-style): for ANY byte prefix of the WAL
//! that survives a crash, reopening the server yields a state byte-identical
//! to a reference engine that applied exactly the committed record prefix —
//! no more, no less, triggers and timestamps included.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relsql::server::SqlServer;
use relsql::storage::{DiskFaultPlan, FaultyStorage, Storage};
use relsql::wal::{encode_snapshot, scan_wal, WalTail, SNAPSHOT_FILE, WAL_FILE};
use relsql::{DurabilityConfig, Engine, EngineConfig, Error, FsyncPolicy, SessionCtx};

use std::sync::Arc;

fn no_sync() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Off,
        checkpoint_bytes: 0,
    }
}

/// Setup DDL shared by every workload: two data tables, an audit table and a
/// native trigger, so replay has to reproduce trigger side effects too.
/// One batch per element (the reference replays them 1:1 with WAL records).
fn setup_batches() -> Vec<String> {
    vec![
        "create table t0 (a int, b int)".into(),
        "create table t1 (a int, ts datetime)".into(),
        "create table audit (a int)".into(),
        "create trigger trg0 on t0 for insert as insert audit select a from inserted".into(),
    ]
}

/// A deterministic random workload of mutating single-statement batches.
/// Includes getdate() (clock determinism), trigger-firing inserts, updates,
/// deletes, transactions, and deliberately failing batches (arity mismatch)
/// whose partial effects must also replay identically.
fn workload(seed: u64, len: usize) -> Vec<String> {
    workload_with(seed, len, true)
}

/// Like [`workload`] but without transaction control — for tests that take
/// explicit checkpoints (which refuse to run inside an open transaction).
fn workload_no_tx(seed: u64, len: usize) -> Vec<String> {
    workload_with(seed, len, false)
}

fn workload_with(seed: u64, len: usize, with_tx: bool) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches = setup_batches();
    let mut in_tx = false;
    for i in 0..len {
        let roll = if with_tx {
            rng.gen_range(0u32..100)
        } else {
            rng.gen_range(0u32..85)
        };
        let b = if roll < 35 {
            format!("insert t0 values ({i}, {})", rng.gen_range(0i64..50))
        } else if roll < 55 {
            format!("insert t1 values ({i}, getdate())")
        } else if roll < 70 {
            format!(
                "update t0 set b = b + {} where a > {}",
                rng.gen_range(1i64..5),
                rng.gen_range(0i64..20)
            )
        } else if roll < 80 {
            format!("delete t1 where a < {}", rng.gen_range(0i64..10))
        } else if roll < 85 {
            // Wrong arity: fails at execution, but the batch is logged and
            // must fail identically on replay.
            "insert t0 values (1)".into()
        } else if !in_tx {
            in_tx = true;
            "begin tran".into()
        } else {
            in_tx = false;
            if rng.gen_bool(0.5) {
                "commit".into()
            } else {
                "rollback".into()
            }
        };
        batches.push(b);
    }
    batches
}

/// Run `batches` against a fresh durable server (no fsync, no checkpoints)
/// and return the full WAL byte image it produced.
fn run_durably(batches: &[String]) -> Vec<u8> {
    let storage = FaultyStorage::new();
    let server =
        SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default()).unwrap();
    let session = server.session("db", "u");
    for b in batches {
        let _ = session.execute(b); // failing batches are part of the workload
    }
    storage.load(WAL_FILE).unwrap().unwrap_or_default()
}

/// The reference: a plain in-memory engine that executes exactly the first
/// `n` batches, with the crash's implicit rollback if a transaction is left
/// open. Returns the canonical snapshot encoding of its state.
fn reference_state(batches: &[String], n: usize) -> Vec<u8> {
    let engine = Engine::new();
    let ctx = SessionCtx::new("db", "u");
    for b in &batches[..n] {
        let _ = engine.execute(b, &ctx);
    }
    if engine.in_tx() {
        engine.execute("rollback", &ctx).unwrap();
    }
    let db = engine.database();
    encode_snapshot(&db, 0, 0)
}

/// Install `bytes` as the surviving WAL image, reopen, and return the
/// recovered server.
fn reopen_from(bytes: &[u8]) -> Arc<SqlServer> {
    let storage = FaultyStorage::new();
    storage.replace(WAL_FILE, bytes).unwrap();
    SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap()
}

fn recovered_state(server: &SqlServer) -> Vec<u8> {
    encode_snapshot(server.snapshot().database(), 0, 0)
}

#[test]
fn torn_write_crash_recovers_exactly_the_committed_prefix() {
    let mut torn_cuts = 0u64;
    let mut crash_points = 0u64;
    for seed in 0..20u64 {
        let batches = workload(seed, 24);
        let wal = run_durably(&batches);
        assert!(!wal.is_empty());
        let full = scan_wal(&wal);
        assert_eq!(full.tail, WalTail::Clean);
        assert_eq!(full.records.len(), batches.len(), "every batch was logged");

        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        for _ in 0..6 {
            let k = rng.gen_range(0usize..=wal.len());
            let survived = &wal[..k];
            // The committed prefix is whatever whole records survived.
            let scan = scan_wal(survived);
            assert!(
                !matches!(scan.tail, WalTail::Corrupt { .. }),
                "a pure truncation is never corruption (seed {seed}, cut {k})"
            );
            let server = reopen_from(survived);
            assert_eq!(
                recovered_state(&server),
                reference_state(&batches, scan.records.len()),
                "seed {seed}, cut at byte {k}/{}: recovered state diverged \
                 from the committed prefix of {} records",
                wal.len(),
                scan.records.len()
            );
            let stats = server.server_stats();
            assert_eq!(stats.wal_records_replayed, scan.records.len() as u64);
            if matches!(scan.tail, WalTail::Torn { .. }) {
                assert_eq!(stats.wal_torn_tail, 1, "torn tail must be reported");
                torn_cuts += 1;
            }
            crash_points += 1;
        }
    }
    assert!(
        crash_points >= 100,
        "need ≥100 crash points, got {crash_points}"
    );
    assert!(
        torn_cuts >= 20,
        "random cuts should frequently land mid-record, got {torn_cuts}"
    );
}

#[test]
fn recovery_rewrites_a_torn_tail_so_the_next_open_is_clean() {
    let batches = workload(99, 16);
    let wal = run_durably(&batches);
    // Cut inside the last record.
    let storage = FaultyStorage::new();
    storage.replace(WAL_FILE, &wal[..wal.len() - 3]).unwrap();
    let server =
        SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default()).unwrap();
    assert_eq!(server.server_stats().wal_torn_tail, 1);
    drop(server);
    // The torn bytes were trimmed from storage: a second open sees a clean
    // log and replays the same committed prefix.
    let bytes = storage.load(WAL_FILE).unwrap().unwrap();
    assert_eq!(scan_wal(&bytes).tail, WalTail::Clean);
    let server2 =
        SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap();
    assert_eq!(server2.server_stats().wal_torn_tail, 0);
    assert_eq!(
        recovered_state(&server2),
        reference_state(&batches, batches.len() - 1)
    );
}

#[test]
fn duplicated_tail_frame_is_skipped_on_recovery() {
    let batches = workload(7, 12);
    let wal = run_durably(&batches);
    let scan = scan_wal(&wal);
    let last = scan.records.last().unwrap();
    // A storage stack that retried an already-completed write: the final
    // frame appears twice.
    let storage = FaultyStorage::new();
    storage.replace(WAL_FILE, &wal).unwrap();
    storage.duplicate_range(WAL_FILE, last.start, last.end);
    let server = SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap();
    // The duplicate must not double-apply its batch.
    assert_eq!(
        recovered_state(&server),
        reference_state(&batches, batches.len())
    );
    assert_eq!(
        server.server_stats().wal_records_replayed,
        batches.len() as u64
    );
}

#[test]
fn corruption_before_valid_records_fails_loudly() {
    let batches = workload(13, 12);
    let wal = run_durably(&batches);
    let scan = scan_wal(&wal);
    // Flip a byte inside the THIRD record's body: later records are intact,
    // so this is mid-log damage, not a crash tail.
    let third = &scan.records[2];
    let storage = FaultyStorage::new();
    storage.replace(WAL_FILE, &wal).unwrap();
    storage.corrupt_byte(WAL_FILE, third.start + 10);
    let Err(err) = SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()) else {
        panic!("mid-log corruption must refuse to open");
    };
    assert!(matches!(err, Error::Io { .. }), "{err}");
}

#[test]
fn dropped_fsyncs_lose_exactly_the_unsynced_suffix() {
    // EveryN(4) with a real storage model: after a crash that keeps only
    // fsynced bytes, the durable prefix is the last multiple-of-4 sequence.
    let storage = FaultyStorage::new();
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(4),
        checkpoint_bytes: 0,
    };
    let batches = workload(42, 18);
    {
        let server =
            SqlServer::open_with_storage(storage.clone(), cfg, EngineConfig::default()).unwrap();
        let session = server.session("db", "u");
        for b in &batches {
            let _ = session.execute(b);
        }
    }
    assert!(storage.durable_len(WAL_FILE) < storage.visible_len(WAL_FILE));
    storage.crash_to_durable();
    let survived = storage.load(WAL_FILE).unwrap().unwrap();
    let n = scan_wal(&survived).records.len();
    assert!(n >= 4 && n < batches.len(), "a strict durable prefix: {n}");
    assert_eq!(n % 4, 0, "durability advances on fsync boundaries");
    let server = SqlServer::open_with_storage(storage, cfg, EngineConfig::default()).unwrap();
    assert_eq!(recovered_state(&server), reference_state(&batches, n));
}

#[test]
fn lying_disk_loses_everything_but_recovery_still_converges() {
    // drop_fsyncs models a disk that acks fsync and persists nothing: a
    // crash keeps zero records and recovery must come up empty but healthy.
    let storage = FaultyStorage::with_plan(DiskFaultPlan {
        drop_fsyncs: true,
        ..DiskFaultPlan::default()
    });
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_bytes: 0,
    };
    let batches = workload(5, 10);
    {
        let server =
            SqlServer::open_with_storage(storage.clone(), cfg, EngineConfig::default()).unwrap();
        let session = server.session("db", "u");
        for b in &batches {
            let _ = session.execute(b);
        }
    }
    assert!(storage.dropped_fsync_count() > 0);
    storage.crash_to_durable();
    let server = SqlServer::open_with_storage(storage, cfg, EngineConfig::default()).unwrap();
    assert_eq!(recovered_state(&server), reference_state(&batches, 0));
    assert_eq!(server.server_stats().wal_records_replayed, 0);
}

#[test]
fn checkpointed_restart_replays_a_bounded_suffix() {
    let storage = FaultyStorage::new();
    let batches = workload_no_tx(77, 30);
    let suffix = 5usize;
    {
        let server =
            SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default())
                .unwrap();
        let session = server.session("db", "u");
        for b in &batches[..batches.len() - suffix] {
            let _ = session.execute(b);
        }
        server.checkpoint().unwrap();
        assert_eq!(storage.visible_len(WAL_FILE), 0, "checkpoint truncates");
        for b in &batches[batches.len() - suffix..] {
            let _ = session.execute(b);
        }
    }
    let server = SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap();
    // Only the post-checkpoint suffix replays — the bounded-restart
    // guarantee the CI smoke step enforces at larger scale.
    assert_eq!(server.server_stats().wal_records_replayed, suffix as u64);
    assert_eq!(
        recovered_state(&server),
        reference_state(&batches, batches.len())
    );
}

/// Copy the surviving on-disk image onto a fresh, fault-free storage — the
/// machine rebooted with a healthy disk holding whatever the crash left.
fn surviving_disk(storage: &FaultyStorage) -> Arc<FaultyStorage> {
    let healthy = FaultyStorage::new();
    for name in [SNAPSHOT_FILE, WAL_FILE] {
        if let Some(bytes) = storage.load(name).unwrap() {
            healthy.replace(name, &bytes).unwrap();
        }
    }
    healthy
}

#[test]
fn interrupted_checkpoint_does_not_double_replay() {
    // The checkpoint's two disk steps — replace snapshot.bin, truncate
    // relsql.wal — get cut apart: the first replace succeeds, the WAL reset
    // fails. The disk now holds the NEW snapshot plus the FULL old log, the
    // exact state a crash between the two steps leaves behind. Recovery
    // must skip every WAL record the snapshot already contains; replaying
    // them would apply each batch twice (duplicate rows, double trigger
    // fires).
    let storage = FaultyStorage::with_plan(DiskFaultPlan {
        fail_replaces_after: Some(1),
        ..DiskFaultPlan::default()
    });
    let batches = workload_no_tx(55, 20);
    {
        let server =
            SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default())
                .unwrap();
        let session = server.session("db", "u");
        for b in &batches {
            let _ = session.execute(b);
        }
        let err = server.checkpoint().expect_err("WAL reset must fail");
        assert!(matches!(err, Error::Io { .. }), "{err}");
        assert!(server.is_read_only(), "a failed checkpoint poisons the WAL");
    }
    // Both artifacts survived: the new snapshot AND the stale full log.
    assert!(storage.load(SNAPSHOT_FILE).unwrap().is_some());
    assert!(storage.visible_len(WAL_FILE) > 0, "WAL was never truncated");

    let healthy = surviving_disk(&storage);
    let server =
        SqlServer::open_with_storage(healthy.clone(), no_sync(), EngineConfig::default()).unwrap();
    assert_eq!(
        recovered_state(&server),
        reference_state(&batches, batches.len()),
        "snapshot-covered records replayed on top of the snapshot"
    );
    let stats = server.server_stats();
    assert_eq!(
        stats.wal_records_replayed, 0,
        "everything was in the snapshot"
    );
    drop(server);
    // Recovery finished the truncation the interrupted checkpoint never
    // got to, so the next open starts from a clean, empty log.
    assert_eq!(healthy.visible_len(WAL_FILE), 0);
}

#[test]
fn stale_wal_records_partially_covered_by_snapshot_replay_only_the_suffix() {
    // A snapshot whose high-water mark lands mid-log: records at or below
    // it are skipped, records above it replay. (Reachable when a completed
    // checkpoint is followed by more commits and a later interrupted one —
    // collapsed here by installing the mid-run snapshot by hand.)
    let storage = FaultyStorage::new();
    let batches = workload_no_tx(61, 20);
    let m = 12usize;
    let snap = {
        let server =
            SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default())
                .unwrap();
        let session = server.session("db", "u");
        for b in &batches[..m] {
            let _ = session.execute(b);
        }
        let snap = encode_snapshot(
            server.snapshot().database(),
            server.clock().peek(),
            m as u64,
        );
        for b in &batches[m..] {
            let _ = session.execute(b);
        }
        snap
    };
    storage.replace(SNAPSHOT_FILE, &snap).unwrap();
    let server =
        SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default()).unwrap();
    assert_eq!(
        server.server_stats().wal_records_replayed,
        (batches.len() - m) as u64,
        "only the post-snapshot suffix replays"
    );
    assert_eq!(
        recovered_state(&server),
        reference_state(&batches, batches.len())
    );
    drop(server);
    // The covered prefix was trimmed from the log on the way up.
    let rewritten = storage.load(WAL_FILE).unwrap().unwrap();
    let scan = scan_wal(&rewritten);
    assert_eq!(scan.tail, WalTail::Clean);
    assert_eq!(scan.records.len(), batches.len() - m);
    assert_eq!(scan.records[0].seq, m as u64 + 1);
}

#[test]
fn snapshot_plus_torn_wal_composes() {
    // A checkpoint followed by a torn post-checkpoint suffix: recovery
    // restores the snapshot and replays only the surviving whole records.
    let storage = FaultyStorage::new();
    let batches = workload_no_tx(31, 20);
    let split = batches.len() - 6;
    {
        let server =
            SqlServer::open_with_storage(storage.clone(), no_sync(), EngineConfig::default())
                .unwrap();
        let session = server.session("db", "u");
        for b in &batches[..split] {
            let _ = session.execute(b);
        }
        server.checkpoint().unwrap();
        for b in &batches[split..] {
            let _ = session.execute(b);
        }
    }
    let wal = storage.load(WAL_FILE).unwrap().unwrap();
    let scan = scan_wal(&wal);
    assert_eq!(scan.records.len(), 6);
    // Tear inside the 5th post-checkpoint record.
    let cut = scan.records[4].end - 2;
    storage.crash_at(WAL_FILE, cut);
    let server = SqlServer::open_with_storage(storage, no_sync(), EngineConfig::default()).unwrap();
    let stats = server.server_stats();
    assert_eq!(stats.wal_records_replayed, 4);
    assert_eq!(stats.wal_torn_tail, 1);
    assert_eq!(
        recovered_state(&server),
        reference_state(&batches, split + 4)
    );
}
