//! Native-trigger and batch edge cases the generated Figure-11 code leans
//! on.

use relsql::{SqlServer, Value};

fn server() -> relsql::Session {
    let s = SqlServer::new();
    s.session("db", "u")
}

#[test]
fn trigger_body_with_comments_like_figure_11() {
    // Figure 11's generated code is full of /* ... */ comments.
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("create table shadow (a int)").unwrap();
    s.execute(
        "create trigger tr on t for insert as\n\
         /* stamp the shadow table */\n\
         insert shadow select * from inserted\n\
         -- and announce it\n\
         print 'stamped'",
    )
    .unwrap();
    let r = s.execute("insert t values (1)").unwrap();
    assert_eq!(r.messages, vec!["stamped"]);
}

#[test]
fn go_separator_ends_a_trigger_body() {
    // A trigger body extends to the end of its batch; `go` starts a new one.
    let s = server();
    s.execute("create table t (a int)").unwrap();
    let r = s
        .execute(
            "create trigger tr on t for insert as print 'in trigger'\n\
             go\n\
             insert t values (1)",
        )
        .unwrap();
    assert_eq!(r.messages, vec!["in trigger"]);
    // The insert after `go` was a separate batch, not part of the body.
    let r = s.execute("select count(*) from t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn chained_triggers_stop_at_depth_limit_not_before() {
    let s = server();
    // A chain of 10 tables, each trigger inserting into the next: well
    // within the 16-deep default limit.
    for i in 0..11 {
        s.execute(&format!("create table t{i} (a int)")).unwrap();
    }
    for i in 0..10 {
        s.execute(&format!(
            "create trigger tr{i} on t{i} for insert as insert t{} values (1)",
            i + 1
        ))
        .unwrap();
    }
    s.execute("insert t0 values (0)").unwrap();
    let r = s.execute("select count(*) from t10").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)), "chain reached the end");
}

#[test]
fn trigger_sees_multi_row_statement_once() {
    // Statement-level semantics: one firing for a 5-row insert.
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("create table firings (n int)").unwrap();
    s.execute("create trigger tr on t for insert as insert firings values (1)")
        .unwrap();
    s.execute("insert t values (1), (2), (3), (4), (5)")
        .unwrap();
    let r = s.execute("select count(*) from firings").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn update_trigger_pseudo_tables_are_row_aligned_sets() {
    let s = server();
    s.execute("create table t (id int, v int)").unwrap();
    s.execute("insert t values (1, 10), (2, 20), (3, 30)")
        .unwrap();
    s.execute("create table log (id int, old_v int, new_v int)")
        .unwrap();
    s.execute(
        "create trigger tr on t for update as \
         insert log select deleted.id, deleted.v, inserted.v \
         from deleted, inserted where deleted.id = inserted.id",
    )
    .unwrap();
    s.execute("update t set v = v + 1 where id >= 2").unwrap();
    let r = s
        .execute("select id, old_v, new_v from log order by id")
        .unwrap();
    let rows = &r.last_select().unwrap().rows;
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(2), Value::Int(20), Value::Int(21)]);
    assert_eq!(rows[1], vec![Value::Int(3), Value::Int(30), Value::Int(31)]);
}

#[test]
fn dropping_and_recreating_trigger_same_name() {
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("create trigger tr on t for insert as print 'v1'")
        .unwrap();
    s.execute("drop trigger tr").unwrap();
    s.execute("create trigger tr on t for insert as print 'v2'")
        .unwrap();
    let r = s.execute("insert t values (1)").unwrap();
    assert_eq!(r.messages, vec!["v2"]);
}

#[test]
fn procedure_called_from_trigger_cannot_see_pseudo_tables() {
    // As in Sybase: inserted/deleted are scoped to the trigger body, not to
    // procedures it calls. Our engine keeps the scope for nested execution
    // (a deliberate relaxation) — this test pins the actual behaviour.
    let s = server();
    s.execute("create table t (a int)").unwrap();
    s.execute("create table log (a int)").unwrap();
    s.execute("create procedure p as insert log select * from inserted")
        .unwrap();
    s.execute("create trigger tr on t for insert as execute p")
        .unwrap();
    // Our scope stack makes this WORK (the paper's Figure 11 relies on
    // direct statements in the trigger body instead).
    s.execute("insert t values (7)").unwrap();
    let r = s.execute("select a from log").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(7)));
}

#[test]
fn sendmsg_inside_trigger_carries_computed_payload() {
    use relsql::notify::CollectingSink;
    let server = SqlServer::new();
    let sink = CollectingSink::new();
    server.set_sink(sink.clone());
    let s = server.session("db", "u");
    s.execute("create table t (a int)").unwrap();
    s.execute("create table ver (vno int)").unwrap();
    s.execute("insert ver values (41)").unwrap();
    s.execute(
        "create trigger tr on t for insert as \
         update ver set vno = vno + 1 \
         select syb_sendmsg('10.0.0.1', 9000, 'event at ' + str(vno)) from ver",
    )
    .unwrap();
    s.execute("insert t values (1)").unwrap();
    let got = sink.take();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, "event at 42");
    assert_eq!(got[0].host, "10.0.0.1");
    assert_eq!(got[0].port, 9000);
}

#[test]
fn rollback_inside_batch_undoes_trigger_side_effects_and_notifications_stand() {
    // Notifications are fire-and-forget: a rollback cannot unsend them —
    // exactly the UDP caveat of the paper's §6.
    use relsql::notify::CollectingSink;
    let server = SqlServer::new();
    let sink = CollectingSink::new();
    server.set_sink(sink.clone());
    let s = server.session("db", "u");
    s.execute("create table t (a int)").unwrap();
    s.execute(
        "create trigger tr on t for insert as \
         select syb_sendmsg('h', 1, 'fired')",
    )
    .unwrap();
    s.execute("begin tran insert t values (1) rollback")
        .unwrap();
    let r = s.execute("select count(*) from t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)), "row rolled back");
    assert_eq!(sink.len(), 1, "notification already escaped");
}
