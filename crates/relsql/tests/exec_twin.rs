//! Twin-run compiled-execution witness (E17 shape): the vectorized
//! physical-plan executor must be *observationally identical* to the
//! tree-walking interpreter.
//!
//! The same seeded workload runs twice — once on a server with
//! `compiled_exec: true` (the default) and once with it off. Every result
//! row, every error string, every trigger-emitted notification, and the
//! shared scan counters (`index_hits`/`index_misses`/`rows_scanned`) must
//! match byte for byte. The compiled run additionally proves the fast path
//! actually engaged (`exec_compiled > 0`, `batches_vectorized > 0`) — a
//! twin that silently fell back everywhere would vacuously pass.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relsql::notify::{Datagram, NotificationSink};
use relsql::{EngineConfig, ServerStats, SqlServer};

use parking_lot::Mutex;
use std::sync::Arc;

/// Collects every datagram payload in arrival order.
#[derive(Default)]
struct CaptureSink(Mutex<Vec<String>>);

impl NotificationSink for CaptureSink {
    fn send(&self, d: Datagram) {
        self.0
            .lock()
            .push(format!("{}:{} {}", d.host, d.port, d.payload));
    }
}

fn random_pred(rng: &mut StdRng, alias: &str) -> String {
    let k = rng.gen_range(0i64..12);
    let v = rng.gen_range(0i64..100);
    match rng.gen_range(0u32..8) {
        0 => format!("{alias}k = {k}"),
        1 => format!("{alias}v > {v}"),
        2 => format!("{alias}v between {} and {v}", v.saturating_sub(30)),
        3 => format!("{alias}k in ({k}, {}, {})", k + 1, k + 3),
        4 => format!("{alias}s like 'g%'"),
        5 => format!("{alias}v is not null and {alias}k < {k}"),
        6 => format!("{alias}k = {k} or {alias}v >= {v}"),
        _ => format!("not ({alias}v = {v})"),
    }
}

/// One random statement from the grammar the compiled path covers —
/// plus shapes it must *fall back* on (subqueries), so the twin also pins
/// fallback equivalence.
fn random_stmt(rng: &mut StdRng) -> String {
    let k = rng.gen_range(0i64..12);
    let v = rng.gen_range(0i64..100);
    match rng.gen_range(0u32..14) {
        0 => format!(
            "insert t0 values ({k}, {v}, '{}')",
            ["gold", "base", "gray"][rng.gen_range(0usize..3)]
        ),
        1 => format!("insert t1 values ({k}, {v})"),
        2 => format!("update t0 set v = v + {v} where {}", random_pred(rng, "")),
        3 => format!("update t1 set v = {v} where k = {k}"),
        4 => format!("delete t0 where {}", random_pred(rng, "")),
        5 => format!("delete t1 where v < {}", rng.gen_range(0i64..20)),
        6 => format!(
            "select k, v from t0 where {} order by k, v",
            random_pred(rng, "")
        ),
        7 => "select count(*), sum(v), min(v), max(v), avg(v) from t0".into(),
        8 => format!(
            "select s, count(*), sum(v) from t0 where v < {v} \
             group by s having count(*) > 1 order by s"
        ),
        9 => format!(
            "select t0.k, t0.v, t1.v from t0, t1 \
             where t0.k = t1.k and t1.v > {v} order by t0.k, t0.v, t1.v"
        ),
        10 => "select count(distinct s), count(distinct v) from t0".into(),
        11 => format!("select k from t0 where v = (select max(v) from t1 where t1.k = {k})"),
        12 => format!("select upper(s), abs(v - {v}) from t0 where k = {k} order by 1, 2"),
        _ => format!(
            "select * from t0 where {} order by k, v, s",
            random_pred(rng, "")
        ),
    }
}

/// Run the seeded workload on one server; return the transcript (results
/// and error strings in statement order), the captured notifications, and
/// the server counters.
fn run(seed: u64, compiled: bool) -> (String, Vec<String>, ServerStats) {
    let server = SqlServer::with_config(EngineConfig {
        compiled_exec: compiled,
        ..Default::default()
    });
    let sink = Arc::new(CaptureSink::default());
    server.set_sink(Arc::clone(&sink) as Arc<dyn NotificationSink>);
    let s = server.session("db", "u");
    for sql in [
        "create table t0 (k int, v int, s varchar(8))",
        "create table t1 (k int, v int)",
        "create index ix1 on t1 (k)",
        "create table t0_ver (vNo int)",
        "insert t0_ver values (0)",
        // The trigger pulls notification ordering into the witness: a
        // compiled DML whose firing drifted would reorder the payload log.
        "create trigger tr0 on t0 for insert as \
         update t0_ver set vNo = vNo + 1 \
         select syb_sendmsg('10.0.0.1', 10010, 'ins ' + str(vNo)) from t0_ver",
    ] {
        s.execute(sql).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for _ in 0..120 {
        match s.execute(&random_stmt(&mut rng)) {
            Ok(r) => {
                for q in &r.results {
                    out.push_str(&format!("{:?} {:?}\n", q.columns, q.rows));
                }
            }
            Err(e) => out.push_str(&format!("err: {e}\n")),
        }
    }
    let notes = sink.0.lock().clone();
    (out, notes, server.server_stats())
}

#[test]
fn twin_run_compiled_execution_is_byte_identical_to_interpreter() {
    for seed in 0..6u64 {
        let (compiled, notes_c, stats_c) = run(seed, true);
        let (interpreted, notes_i, stats_i) = run(seed, false);
        assert_eq!(compiled, interpreted, "seed {seed}: results diverged");
        assert_eq!(notes_c, notes_i, "seed {seed}: notifications diverged");
        // The scan counters are part of the contract: the compiled path
        // must take the same access paths and visit the same candidates.
        assert_eq!(stats_c.index_hits, stats_i.index_hits, "seed {seed}");
        assert_eq!(stats_c.index_misses, stats_i.index_misses, "seed {seed}");
        assert_eq!(stats_c.rows_scanned, stats_i.rows_scanned, "seed {seed}");
        // And it must actually have run: vacuous fallback is a failure.
        assert!(stats_c.exec_compiled > 0, "seed {seed}: {stats_c:?}");
        assert!(stats_c.batches_vectorized > 0, "seed {seed}: {stats_c:?}");
        assert_eq!(stats_i.exec_compiled, 0, "seed {seed}");
        // Subquery shapes fell back on the compiled twin too.
        assert!(stats_c.exec_fallback_expr > 0, "seed {seed}: {stats_c:?}");
    }
}

#[test]
fn compiled_plans_survive_ddl_epochs_and_schema_swaps() {
    // Same masked statement text across a drop/re-create with a different
    // column layout: the lowered plan must be re-derived, not reused.
    let server = SqlServer::new();
    let s = server.session("db", "u");
    s.execute("create table t (a int, b int)").unwrap();
    s.execute("insert t values (1, 10)").unwrap();
    for _ in 0..3 {
        let r = s.execute("select b from t where a = 1").unwrap();
        assert_eq!(r.scalar(), Some(&relsql::Value::Int(10)));
    }
    s.execute("drop table t").unwrap();
    // Columns reordered: a stale compiled projection would read slot 1.
    s.execute("create table t (b int, a int)").unwrap();
    s.execute("insert t values (20, 1)").unwrap();
    let r = s.execute("select b from t where a = 1").unwrap();
    assert_eq!(r.scalar(), Some(&relsql::Value::Int(20)));
}
