//! # relsql — an in-memory relational engine with Sybase-style triggers
//!
//! This crate is the *substrate* of the ECA-Agent reproduction: it plays the
//! role of the Sybase SQL Server in Chakravarthy & Li, "An Agent-Based
//! Approach to Extending the Native Active Capability of Relational Database
//! Systems" (ICDE 1999). It deliberately implements the **limited** native
//! trigger model the paper describes in §2.2 — one statement-level trigger
//! per (table, operation) with silent overwrite, no named events, no
//! composite events — because the whole point of the ECA Agent is to build
//! full active-database semantics on top of exactly those limitations using
//! only plain SQL.
//!
//! ## What's inside
//!
//! - A Transact-SQL subset: `CREATE/DROP/ALTER TABLE`, `SELECT` (comma
//!   joins, aggregates, `GROUP BY`/`HAVING`/`ORDER BY`, `DISTINCT`,
//!   `SELECT ... INTO`), `INSERT`/`UPDATE`/`DELETE`, `CREATE TRIGGER`,
//!   `CREATE PROCEDURE`/`EXECUTE`, `PRINT`, `IF`/`WHILE`, transactions and
//!   `go` batch separators.
//! - Trigger pseudo-tables `inserted` / `deleted`.
//! - The built-ins the paper's generated code uses: `getdate()` (on a
//!   deterministic logical clock) and `syb_sendmsg(host, port, msg)` (posts
//!   a datagram to a pluggable [`notify::NotificationSink`]).
//! - A thread-safe [`server::SqlServer`] with per-identity sessions, behind
//!   the [`server::SqlEndpoint`] trait that the ECA Agent proxies.
//! - Optional crash-consistent durability ([`wal`]/[`storage`]): a
//!   CRC-checksummed write-ahead log of committed batches plus snapshot
//!   checkpoints, opened via `SqlServer::open(data_dir, ..)`, with a
//!   fault-injecting [`storage::FaultyStorage`] for torn-write testing.
//!
//! ## Quick example
//!
//! ```
//! use relsql::server::SqlServer;
//! use relsql::value::Value;
//!
//! let server = SqlServer::new();
//! let session = server.session("sentineldb", "sharma");
//! session.execute("create table stock (symbol varchar(10), price float)").unwrap();
//! session.execute("insert stock values ('IBM', 104.5)").unwrap();
//! let r = session.execute("select price from stock where symbol = 'IBM'").unwrap();
//! assert_eq!(r.scalar(), Some(&Value::Float(104.5)));
//! ```

pub mod ast;
pub mod catalog;
pub mod clock;
pub mod engine;
pub mod error;
mod eval;
mod exec;
pub mod footprint;
pub mod index;
pub mod lexer;
pub mod notify;
pub mod parser;
mod plan;
mod select;
pub mod server;
pub mod storage;
pub mod table;
pub mod value;
pub mod wal;

pub use engine::{BatchResult, Engine, EngineConfig, QueryResult};
pub use error::{Error, Result};
pub use eval::{like_match, SessionCtx};
pub use footprint::{
    derive_effects, derive_requirements, BatchClass, BatchPlan, ReadSet, WriteSet,
};
pub use server::{DbSnapshot, ServerStats, Session, SqlEndpoint, SqlServer};
pub use storage::{DiskFaultPlan, FaultyStorage, FsStorage, Storage};
pub use value::{DataType, Value};
pub use wal::{DurabilityConfig, FsyncPolicy};
