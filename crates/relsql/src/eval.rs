//! Scalar expression evaluation with SQL three-valued logic.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::ast::{is_aggregate_name, BinaryOp, Expr, UnaryOp};
use crate::catalog::Database;
use crate::clock::LogicalClock;
use crate::engine::ScanStats;
use crate::error::{Error, ObjectKind, Result};
use crate::notify::{Datagram, NotificationSink};
use crate::select::run_select;
use crate::table::{Schema, Table};
use crate::value::Value;

/// Per-session identity: the `db.user.` prefix used for name resolution and
/// the `db_name()` / `user_name()` built-ins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCtx {
    pub database: String,
    pub user: String,
    /// When `true`, read-pure batches from this session bypass the MVCC
    /// snapshot lane and read *live* rows under lock scheduling. Agent
    /// internals (the exactly-once pump, action/saga handlers) set this:
    /// they react to datagrams that are enqueued mid-batch, *before* the
    /// triggering batch publishes its versions, so a published-snapshot
    /// read could lag the very shadow/`_ver` row the datagram announced.
    /// Client sessions keep the default (`false`) and get lock-free reads.
    pub live_reads: bool,
}

impl SessionCtx {
    pub fn new(database: impl Into<String>, user: impl Into<String>) -> Self {
        SessionCtx {
            database: database.into(),
            user: user.into(),
            live_reads: false,
        }
    }

    /// Builder-style toggle for [`SessionCtx::live_reads`].
    pub fn with_live_reads(mut self) -> Self {
        self.live_reads = true;
        self
    }

    pub fn prefix(&self) -> (&str, &str) {
        (&self.database, &self.user)
    }
}

impl Default for SessionCtx {
    fn default() -> Self {
        SessionCtx::new("sentineldb", "dbo")
    }
}

/// The `inserted` / `deleted` pseudo-tables visible inside a trigger body.
#[derive(Debug, Clone)]
pub struct PseudoFrame {
    pub inserted: Table,
    pub deleted: Table,
}

/// Read-only context threaded through query evaluation.
pub(crate) struct QueryCtx<'e> {
    pub db: &'e Database,
    pub session: &'e SessionCtx,
    /// Trigger scope stack; the innermost frame wins for `inserted`/`deleted`.
    pub scope: &'e [PseudoFrame],
    pub clock: &'e LogicalClock,
    pub sink: Option<&'e dyn NotificationSink>,
    pub datagram_seq: &'e AtomicU64,
    /// Literals masked out of the batch text by the statement-plan cache;
    /// `Expr::Param(i)` reads slot `i`. Empty for unparameterized plans.
    pub params: &'e [Value],
    /// Access-path counters (index hits/misses, rows scanned).
    pub stats: &'e ScanStats,
    /// When true, top-level SELECT/DML statements may run through the
    /// compiled physical-plan executor ([`crate::exec`]); when false (or
    /// for any shape the lowerer rejects) the row-at-a-time interpreter
    /// runs. Results are byte-identical either way.
    pub compiled: bool,
}

impl<'e> QueryCtx<'e> {
    /// Resolve a table reference, honouring trigger pseudo-tables first.
    pub fn resolve_table(&self, name: &str) -> Result<&'e Table> {
        if let Some(frame) = self.scope.last() {
            if name.eq_ignore_ascii_case("inserted") {
                // SAFETY of lifetime: scope lives as long as 'e.
                return Ok(&frame.inserted);
            }
            if name.eq_ignore_ascii_case("deleted") {
                return Ok(&frame.deleted);
            }
        }
        let key = self
            .db
            .resolve_table_key(name, Some(self.session.prefix()))
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Table,
                name: name.to_string(),
            })?;
        Ok(self.db.table(&key).expect("resolved key exists"))
    }
}

/// One table's slice of the current joined row.
pub(crate) struct Frame<'r> {
    pub alias: Option<String>,
    /// Canonical table name (`inserted`/`deleted` for pseudo-tables).
    pub table_name: String,
    pub schema: &'r Schema,
    pub row: &'r [Value],
}

impl Frame<'_> {
    /// Does `qualifier` denote this frame?
    fn matches_qualifier(&self, qualifier: &str, session: &SessionCtx) -> bool {
        qualifier_matches(self.alias.as_deref(), &self.table_name, qualifier, session)
    }
}

/// Does `qualifier` denote a FROM slot with this alias / table name? Shared
/// by row-environment lookup and the compiled executor's column binder so
/// both resolve names identically.
pub(crate) fn qualifier_matches(
    alias: Option<&str>,
    table_name: &str,
    qualifier: &str,
    session: &SessionCtx,
) -> bool {
    if let Some(alias) = alias {
        if alias.eq_ignore_ascii_case(qualifier) {
            return true;
        }
        // An explicit alias hides the underlying table name in Sybase,
        // but generated code never aliases, so we stay permissive and
        // fall through to name matching as well.
    }
    if table_name.eq_ignore_ascii_case(qualifier) {
        return true;
    }
    let tn = table_name.to_ascii_lowercase();
    let q = qualifier.to_ascii_lowercase();
    if tn.ends_with(&format!(".{q}")) {
        return true;
    }
    let (db, user) = session.prefix();
    tn == format!(
        "{}.{}.{}",
        db.to_ascii_lowercase(),
        user.to_ascii_lowercase(),
        q
    )
}

/// The set of frames a row expression can see. `parent` chains to the
/// enclosing query's environment, enabling correlated subqueries: a name
/// not found in the inner query's frames resolves against the outer row
/// (inner frames shadow outer ones, as in standard SQL).
pub(crate) struct RowEnv<'r> {
    pub frames: Vec<Frame<'r>>,
    pub parent: Option<&'r RowEnv<'r>>,
}

impl<'r> RowEnv<'r> {
    pub fn empty() -> Self {
        RowEnv {
            frames: Vec::new(),
            parent: None,
        }
    }

    /// Look up a column value.
    pub fn lookup(
        &self,
        qualifier: Option<&str>,
        name: &str,
        session: &SessionCtx,
    ) -> Result<Value> {
        let mut found: Option<Value> = None;
        for frame in &self.frames {
            if let Some(q) = qualifier {
                if !frame.matches_qualifier(q, session) {
                    continue;
                }
            }
            if let Some(idx) = frame.schema.index_of(name) {
                if found.is_some() {
                    return Err(Error::exec(format!("ambiguous column name '{name}'")));
                }
                found = Some(frame.row[idx].clone());
            }
        }
        if let Some(v) = found {
            return Ok(v);
        }
        if let Some(parent) = self.parent {
            return parent.lookup(qualifier, name, session);
        }
        Err(Error::NotFound {
            kind: ObjectKind::Column,
            name: match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            },
        })
    }
}

/// Evaluate an expression against one row environment.
pub(crate) fn eval_expr(ctx: &QueryCtx<'_>, env: &RowEnv<'_>, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::exec(format!("unbound statement parameter ${i}"))),
        Expr::Column { qualifier, name } => env.lookup(qualifier.as_deref(), name, ctx.session),
        Expr::Unary { op, operand } => {
            let v = eval_expr(ctx, env, operand)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!other.is_truthy())),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::type_err(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(ctx, env, *op, left, right),
        Expr::Function {
            name,
            args,
            star,
            distinct,
        } => eval_function(ctx, env, name, args, *star, *distinct),
        Expr::IsNull { operand, negated } => {
            let v = eval_expr(ctx, env, operand)?;
            let is_null = v.is_null();
            Ok(Value::Int(i64::from(is_null != *negated)))
        }
        Expr::InList {
            operand,
            list,
            negated,
        } => {
            let v = eval_expr(ctx, env, operand)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval_expr(ctx, env, item)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Int(i64::from(!*negated)));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(i64::from(*negated)))
            }
        }
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(ctx, env, operand)?;
            let lo = eval_expr(ctx, env, low)?;
            let hi = eval_expr(ctx, env, high)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Int(i64::from(inside != *negated)))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Like {
            operand,
            pattern,
            negated,
        } => {
            let v = eval_expr(ctx, env, operand)?;
            let p = eval_expr(ctx, env, pattern)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    Ok(Value::Int(i64::from(like_match(&s, &pat) != *negated)))
                }
                (a, b) => Err(Error::type_err(format!(
                    "LIKE requires strings, got {a} LIKE {b}"
                ))),
            }
        }
        Expr::Exists(sub) => {
            let (_, rows) = run_select(ctx, sub, Some(env))?;
            Ok(Value::Int(i64::from(!rows.is_empty())))
        }
        Expr::Subquery(sub) => {
            let (cols, rows) = run_select(ctx, sub, Some(env))?;
            if cols.len() != 1 {
                return Err(Error::exec(format!(
                    "scalar subquery must return one column, got {}",
                    cols.len()
                )));
            }
            match rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rows.into_iter().next().unwrap().into_iter().next().unwrap()),
                n => Err(Error::exec(format!("scalar subquery returned {n} rows"))),
            }
        }
    }
}

fn eval_binary(
    ctx: &QueryCtx<'_>,
    env: &RowEnv<'_>,
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
) -> Result<Value> {
    // AND / OR use three-valued logic with short-circuit where sound.
    match op {
        BinaryOp::And => {
            let l = eval_expr(ctx, env, left)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Int(0));
            }
            let r = eval_expr(ctx, env, right)?;
            return Ok(match (l.is_null(), r.is_null()) {
                (false, false) => Value::Int(i64::from(l.is_truthy() && r.is_truthy())),
                _ => {
                    if !r.is_null() && !r.is_truthy() {
                        Value::Int(0)
                    } else {
                        Value::Null
                    }
                }
            });
        }
        BinaryOp::Or => {
            let l = eval_expr(ctx, env, left)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Int(1));
            }
            let r = eval_expr(ctx, env, right)?;
            return Ok(match (l.is_null(), r.is_null()) {
                (false, false) => Value::Int(i64::from(l.is_truthy() || r.is_truthy())),
                _ => {
                    if !r.is_null() && r.is_truthy() {
                        Value::Int(1)
                    } else {
                        Value::Null
                    }
                }
            });
        }
        _ => {}
    }
    let l = eval_expr(ctx, env, left)?;
    let r = eval_expr(ctx, env, right)?;
    apply_binary_values(op, l, r)
}

/// Apply a binary operator to two already-evaluated values (no
/// short-circuiting). Used both by [`eval_expr`] and by the grouped
/// aggregate evaluator in the SELECT executor.
pub(crate) fn apply_binary_values(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    match op {
        BinaryOp::And => Ok(match (l.is_null(), r.is_null()) {
            (false, false) => Value::Int(i64::from(l.is_truthy() && r.is_truthy())),
            _ => {
                if (!l.is_null() && !l.is_truthy()) || (!r.is_null() && !r.is_truthy()) {
                    Value::Int(0)
                } else {
                    Value::Null
                }
            }
        }),
        BinaryOp::Or => Ok(match (l.is_null(), r.is_null()) {
            (false, false) => Value::Int(i64::from(l.is_truthy() || r.is_truthy())),
            _ => {
                if (!l.is_null() && l.is_truthy()) || (!r.is_null() && r.is_truthy()) {
                    Value::Int(1)
                } else {
                    Value::Null
                }
            }
        }),
        BinaryOp::Eq
        | BinaryOp::Neq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge => {
            let ord = match l.sql_cmp(&r) {
                Some(o) => o,
                None => return Ok(Value::Null),
            };
            use std::cmp::Ordering::*;
            let truth = match op {
                BinaryOp::Eq => ord == Equal,
                BinaryOp::Neq => ord != Equal,
                BinaryOp::Lt => ord == Less,
                BinaryOp::Le => ord != Greater,
                BinaryOp::Gt => ord == Greater,
                BinaryOp::Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(i64::from(truth)))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arith(op, l, r)
        }
    }
}

fn arith(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // String concatenation with `+`, as in Transact-SQL.
    if op == BinaryOp::Add {
        if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    // DateTime arithmetic: datetime ± int microseconds.
    if let (Value::DateTime(t), Value::Int(d)) = (&l, &r) {
        return match op {
            BinaryOp::Add => Ok(Value::DateTime(t + d)),
            BinaryOp::Sub => Ok(Value::DateTime(t - d)),
            _ => Err(Error::type_err("unsupported datetime arithmetic")),
        };
    }
    if let (Value::DateTime(a), Value::DateTime(b)) = (&l, &r) {
        if op == BinaryOp::Sub {
            return Ok(Value::Int(a - b));
        }
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinaryOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                BinaryOp::Div => {
                    if b == 0 {
                        Err(Error::DivisionByZero)
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        Err(Error::DivisionByZero)
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let fa = to_f64(&l)?;
            let fb = to_f64(&r)?;
            match op {
                BinaryOp::Add => Ok(Value::Float(fa + fb)),
                BinaryOp::Sub => Ok(Value::Float(fa - fb)),
                BinaryOp::Mul => Ok(Value::Float(fa * fb)),
                BinaryOp::Div => {
                    if fb == 0.0 {
                        Err(Error::DivisionByZero)
                    } else {
                        Ok(Value::Float(fa / fb))
                    }
                }
                BinaryOp::Mod => {
                    if fb == 0.0 {
                        Err(Error::DivisionByZero)
                    } else {
                        Ok(Value::Float(fa % fb))
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn to_f64(v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        Value::DateTime(t) => Ok(*t as f64),
        other => Err(Error::type_err(format!("expected number, got {other}"))),
    }
}

fn eval_function(
    ctx: &QueryCtx<'_>,
    env: &RowEnv<'_>,
    name: &str,
    args: &[Expr],
    star: bool,
    distinct: bool,
) -> Result<Value> {
    if is_aggregate_name(name) {
        return Err(Error::exec(format!(
            "aggregate '{name}' is not allowed in this position"
        )));
    }
    if distinct {
        return Err(Error::exec(format!(
            "DISTINCT is not allowed in scalar function '{name}'"
        )));
    }
    scalar_fn_lazy(ctx, name, args.len(), star, |i| {
        eval_expr(ctx, env, &args[i])
    })
}

/// Evaluate a scalar built-in with lazily-supplied arguments: `arg(i)`
/// produces the i-th argument value on demand, preserving evaluation order
/// and laziness (`isnull`/`coalesce` stop at the first non-NULL). Shared by
/// the row-at-a-time interpreter and the compiled executor so side effects
/// (`syb_sendmsg`, `getdate` clock ticks) and error text are identical on
/// both paths.
pub(crate) fn scalar_fn_lazy(
    ctx: &QueryCtx<'_>,
    name: &str,
    nargs: usize,
    star: bool,
    mut arg: impl FnMut(usize) -> Result<Value>,
) -> Result<Value> {
    let lname = name.to_ascii_lowercase();
    let need = |n: usize| -> Result<()> {
        if nargs == n && !star {
            Ok(())
        } else {
            Err(Error::exec(format!("{name}() expects {n} argument(s)")))
        }
    };
    match lname.as_str() {
        // The engine's logical clock runs in UTC, so GETDATE and
        // GETUTCDATE read the same instant (a server with no civil
        // timezone has no local offset to add).
        "getdate" | "getutcdate" => {
            need(0)?;
            Ok(Value::DateTime(ctx.clock.now()))
        }
        "db_name" => {
            need(0)?;
            Ok(Value::Str(ctx.session.database.clone()))
        }
        "user_name" => {
            need(0)?;
            Ok(Value::Str(ctx.session.user.clone()))
        }
        // The paper's notification built-in (Figure 11): sends a UDP
        // datagram; returns 0 on success, as Sybase does.
        "syb_sendmsg" => {
            need(3)?;
            let host = arg(0)?;
            let port = arg(1)?;
            let payload = arg(2)?;
            let port = match port.coerce_to(crate::value::DataType::Int)? {
                Value::Int(p) if (0..=65535).contains(&p) => p as u16,
                other => return Err(Error::exec(format!("bad port {other}"))),
            };
            if let Some(sink) = ctx.sink {
                let seq = ctx.datagram_seq.fetch_add(1, AtomicOrdering::Relaxed);
                sink.send(Datagram {
                    host: host.to_string(),
                    port,
                    payload: payload.to_string(),
                    seq,
                });
            }
            Ok(Value::Int(0))
        }
        "upper" => {
            need(1)?;
            match arg(0)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Str(v.to_string().to_uppercase())),
            }
        }
        "lower" => {
            need(1)?;
            match arg(0)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Str(v.to_string().to_lowercase())),
            }
        }
        "len" | "char_length" => {
            need(1)?;
            match arg(0)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Int(v.to_string().chars().count() as i64)),
            }
        }
        "abs" => {
            need(1)?;
            match arg(0)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(Error::type_err(format!("abs() on {other}"))),
            }
        }
        "round" => {
            if nargs == 0 || nargs > 2 {
                return Err(Error::exec("round() expects 1 or 2 arguments"));
            }
            let v = arg(0)?;
            let digits = if nargs == 2 {
                match arg(1)? {
                    Value::Int(d) => d,
                    other => return Err(Error::type_err(format!("round() digits {other}"))),
                }
            } else {
                0
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => {
                    let m = 10f64.powi(digits as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                other => Err(Error::type_err(format!("round() on {other}"))),
            }
        }
        "isnull" | "coalesce" => {
            if nargs == 0 {
                return Err(Error::exec("isnull() expects arguments"));
            }
            for i in 0..nargs {
                let v = arg(i)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "str" | "convert_str" => {
            need(1)?;
            Ok(Value::Str(arg(0)?.to_string()))
        }
        // T-SQL date arithmetic. The parser rewrites a bare datepart
        // identifier (`datediff(day, a, b)`) into a string literal, so
        // by the time either execution path gets here the datepart is a
        // plain constant.
        "datediff" => {
            need(3)?;
            let part = datepart_arg(name, arg(0)?)?;
            let start = datetime_micros(name, arg(1)?)?;
            let end = datetime_micros(name, arg(2)?)?;
            match (start, end) {
                (Some(start), Some(end)) => Ok(Value::Int(date_diff(part, start, end))),
                _ => Ok(Value::Null),
            }
        }
        "datepart" => {
            need(2)?;
            let part = datepart_arg(name, arg(0)?)?;
            match datetime_micros(name, arg(1)?)? {
                Some(t) => Ok(Value::Int(date_part(part, t))),
                None => Ok(Value::Null),
            }
        }
        "datename" => {
            need(2)?;
            let part = datepart_arg(name, arg(0)?)?;
            match datetime_micros(name, arg(1)?)? {
                Some(t) => Ok(Value::Str(date_name(part, t))),
                None => Ok(Value::Null),
            }
        }
        "dateadd" => {
            need(3)?;
            let part = datepart_arg(name, arg(0)?)?;
            let n = match arg(1)? {
                Value::Null => {
                    arg(2)?; // preserve evaluation of every argument
                    return Ok(Value::Null);
                }
                Value::Int(n) => n,
                // T-SQL truncates a fractional count toward zero.
                Value::Float(f) => f.trunc() as i64,
                other => return Err(Error::type_err(format!("dateadd() count {other}"))),
            };
            match datetime_micros(name, arg(2)?)? {
                Some(t) => Ok(Value::DateTime(date_add(part, n, t))),
                None => Ok(Value::Null),
            }
        }
        other => Err(Error::NotFound {
            kind: ObjectKind::Function,
            name: other.to_string(),
        }),
    }
}

// ---------------------------------------------------------------------------
// T-SQL date arithmetic: DATEDIFF / DATEADD over the micros-since-epoch
// DateTime representation. DATEDIFF counts *boundary crossings* of the
// datepart (T-SQL semantics: `datediff(day, 23:59, 00:01)` is 1), not
// elapsed units; DATEADD clamps to the last day of the target month.
// ---------------------------------------------------------------------------

/// The dateparts `datediff`/`dateadd` understand, with their T-SQL
/// abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DatePart {
    Year,
    Quarter,
    Month,
    Week,
    Day,
    DayOfYear,
    Weekday,
    Hour,
    Minute,
    Second,
    Millisecond,
    Microsecond,
}

/// Recognize a datepart name or abbreviation. Shared with the parser,
/// which rewrites bare datepart identifiers into string literals.
pub(crate) fn datepart_from_name(s: &str) -> Option<DatePart> {
    Some(match s.to_ascii_lowercase().as_str() {
        "year" | "yy" | "yyyy" => DatePart::Year,
        "quarter" | "qq" | "q" => DatePart::Quarter,
        "month" | "mm" | "m" => DatePart::Month,
        "week" | "wk" | "ww" => DatePart::Week,
        "day" | "dd" | "d" => DatePart::Day,
        "dayofyear" | "dy" => DatePart::DayOfYear,
        "weekday" | "dw" => DatePart::Weekday,
        "hour" | "hh" => DatePart::Hour,
        "minute" | "mi" | "n" => DatePart::Minute,
        "second" | "ss" | "s" => DatePart::Second,
        "millisecond" | "ms" => DatePart::Millisecond,
        "microsecond" | "mcs" | "us" => DatePart::Microsecond,
        _ => return None,
    })
}

fn datepart_arg(fname: &str, v: Value) -> Result<DatePart> {
    match v {
        Value::Str(s) => datepart_from_name(&s)
            .ok_or_else(|| Error::exec(format!("{fname}(): unknown datepart '{s}'"))),
        other => Err(Error::exec(format!(
            "{fname}(): datepart must be an identifier or string, got {other}"
        ))),
    }
}

/// A datetime operand: `DateTime` micros, or an `Int` treated as micros
/// (the same coercion the comparison operators apply). NULL propagates.
fn datetime_micros(fname: &str, v: Value) -> Result<Option<i64>> {
    match v {
        Value::Null => Ok(None),
        Value::DateTime(t) | Value::Int(t) => Ok(Some(t)),
        other => Err(Error::type_err(format!("{fname}() on {other}"))),
    }
}

const MICROS_PER_SECOND: i64 = 1_000_000;
const MICROS_PER_DAY: i64 = 86_400 * MICROS_PER_SECOND;

fn floor_div(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

/// Proleptic-Gregorian civil date from days since 1970-01-01 (Howard
/// Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Days since 1970-01-01 from a civil date (inverse of
/// [`civil_from_days`]).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from(if m > 2 { m - 3 } else { m + 9 });
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn last_day_of_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if y % 4 == 0 && (y % 100 != 0 || y % 400 == 0) {
                29
            } else {
                28
            }
        }
    }
}

/// `(year, month)` of the civil date holding micros `t`.
fn year_month(t: i64) -> (i64, u32) {
    let (y, m, _) = civil_from_days(floor_div(t, MICROS_PER_DAY));
    (y, m)
}

fn date_diff(part: DatePart, start: i64, end: i64) -> i64 {
    let unit_diff = |unit: i64| floor_div(end, unit) - floor_div(start, unit);
    match part {
        DatePart::Microsecond => end - start,
        DatePart::Millisecond => unit_diff(1_000),
        DatePart::Second => unit_diff(MICROS_PER_SECOND),
        DatePart::Minute => unit_diff(60 * MICROS_PER_SECOND),
        DatePart::Hour => unit_diff(3_600 * MICROS_PER_SECOND),
        // T-SQL: DATEDIFF over dayofyear/weekday counts day boundaries.
        DatePart::Day | DatePart::DayOfYear | DatePart::Weekday => unit_diff(MICROS_PER_DAY),
        DatePart::Week => {
            // T-SQL weeks begin on Sunday; 1969-12-28 (day -4) was one,
            // so shifting by +4 Sunday-aligns the floor.
            let weeks = |t: i64| floor_div(floor_div(t, MICROS_PER_DAY) + 4, 7);
            weeks(end) - weeks(start)
        }
        DatePart::Month => {
            let (ys, ms) = year_month(start);
            let (ye, me) = year_month(end);
            (ye * 12 + i64::from(me)) - (ys * 12 + i64::from(ms))
        }
        DatePart::Quarter => {
            let (ys, ms) = year_month(start);
            let (ye, me) = year_month(end);
            (ye * 4 + i64::from((me - 1) / 3)) - (ys * 4 + i64::from((ms - 1) / 3))
        }
        DatePart::Year => {
            let (ys, _) = year_month(start);
            let (ye, _) = year_month(end);
            ye - ys
        }
    }
}

fn date_add(part: DatePart, n: i64, t: i64) -> i64 {
    let add_months = |t: i64, months: i64| -> i64 {
        let days = floor_div(t, MICROS_PER_DAY);
        let tod = t - days * MICROS_PER_DAY;
        let (y, m, d) = civil_from_days(days);
        let total = y * 12 + i64::from(m) - 1 + months;
        let (ny, nm) = (floor_div(total, 12), (total.rem_euclid(12)) as u32 + 1);
        // `jan 31 + 1 month` lands on the last day of February.
        let nd = d.min(last_day_of_month(ny, nm));
        days_from_civil(ny, nm, nd) * MICROS_PER_DAY + tod
    };
    match part {
        DatePart::Microsecond => t + n,
        DatePart::Millisecond => t + n * 1_000,
        DatePart::Second => t + n * MICROS_PER_SECOND,
        DatePart::Minute => t + n * 60 * MICROS_PER_SECOND,
        DatePart::Hour => t + n * 3_600 * MICROS_PER_SECOND,
        DatePart::Day | DatePart::DayOfYear | DatePart::Weekday => t + n * MICROS_PER_DAY,
        DatePart::Week => t + n * 7 * MICROS_PER_DAY,
        DatePart::Month => add_months(t, n),
        DatePart::Quarter => add_months(t, n * 3),
        DatePart::Year => add_months(t, n * 12),
    }
}

/// Day-of-week with T-SQL's default `@@DATEFIRST` of 7: Sunday = 1 …
/// Saturday = 7. Day 0 (1970-01-01) was a Thursday.
fn weekday_1_sunday(days: i64) -> i64 {
    (days + 4).rem_euclid(7) + 1
}

/// `DATEPART(part, t)`: extract one civil-calendar field. Weeks are
/// Sunday-started and counted from 1 at Jan 1, matching `DATEDIFF`'s
/// week-boundary convention above.
fn date_part(part: DatePart, t: i64) -> i64 {
    let days = floor_div(t, MICROS_PER_DAY);
    let tod = t - days * MICROS_PER_DAY;
    let (y, m, d) = civil_from_days(days);
    match part {
        DatePart::Year => y,
        DatePart::Quarter => i64::from((m - 1) / 3) + 1,
        DatePart::Month => i64::from(m),
        DatePart::Day => i64::from(d),
        DatePart::DayOfYear => days - days_from_civil(y, 1, 1) + 1,
        DatePart::Weekday => weekday_1_sunday(days),
        DatePart::Week => {
            let jan1 = days_from_civil(y, 1, 1);
            let jan1_dow0 = weekday_1_sunday(jan1) - 1; // 0 = Sunday
            (days - jan1 + jan1_dow0) / 7 + 1
        }
        DatePart::Hour => tod / (3_600 * MICROS_PER_SECOND),
        DatePart::Minute => tod / (60 * MICROS_PER_SECOND) % 60,
        DatePart::Second => tod / MICROS_PER_SECOND % 60,
        DatePart::Millisecond => tod / 1_000 % 1_000,
        DatePart::Microsecond => tod % MICROS_PER_SECOND,
    }
}

const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

const DAY_NAMES: [&str; 7] = [
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
];

/// `DATENAME(part, t)`: month and weekday get their English names,
/// every other datepart renders its `DATEPART` number — T-SQL semantics.
fn date_name(part: DatePart, t: i64) -> String {
    match part {
        DatePart::Month => {
            let idx = (date_part(DatePart::Month, t) - 1) as usize;
            MONTH_NAMES[idx].to_string()
        }
        DatePart::Weekday => {
            let idx = (date_part(DatePart::Weekday, t) - 1) as usize;
            DAY_NAMES[idx].to_string()
        }
        other => date_part(other, t).to_string(),
    }
}

/// SQL LIKE pattern matching: `%` matches any sequence, `_` any single
/// character. Case-sensitive, as Sybase's default sort order.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn inner(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len chars.
                (0..=s.len()).any(|k| inner(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && inner(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && inner(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    inner(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_basic() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn like_multiple_percents() {
        assert!(like_match("abcdef", "a%c%f"));
        assert!(!like_match("abcdef", "a%c%g"));
        assert!(like_match("aaa", "%a%a%"));
    }

    // Reference micros (UTC): 1999-01-01 00:00 is the engine's default
    // clock epoch, which pins the civil-calendar conversion.
    const D1999_01_01: i64 = 915_148_800_000_000;
    const D1999_01_31: i64 = 917_740_800_000_000;
    const D1999_02_01: i64 = 917_827_200_000_000;
    const D1999_02_28: i64 = 920_160_000_000_000;
    const D1998_12_31: i64 = 915_062_400_000_000;
    const SAT_1999_01_02: i64 = 915_235_200_000_000;
    const SUN_1999_01_03: i64 = 915_321_600_000_000;
    const D2000_02_29: i64 = 951_782_400_000_000;
    const D2001_02_28: i64 = 983_318_400_000_000;

    #[test]
    fn civil_calendar_roundtrip() {
        assert_eq!(civil_from_days(D1999_01_01 / MICROS_PER_DAY), (1999, 1, 1));
        assert_eq!(days_from_civil(1999, 1, 1) * MICROS_PER_DAY, D1999_01_01);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        for day in [-1_000_000i64, -1, 0, 1, 10_592, 365_000] {
            let (y, m, d) = civil_from_days(day);
            assert_eq!(days_from_civil(y, m, d), day, "roundtrip day {day}");
        }
    }

    #[test]
    fn datediff_counts_boundary_crossings() {
        // 23:59 → next-day 00:01: one day boundary, although only 2min.
        let t2359 = D1999_01_01 + (23 * 3600 + 59 * 60) * MICROS_PER_SECOND;
        let t0001 = D1999_01_01 + MICROS_PER_DAY + 60 * MICROS_PER_SECOND;
        assert_eq!(date_diff(DatePart::Day, t2359, t0001), 1);
        assert_eq!(date_diff(DatePart::Hour, t2359, t0001), 1);
        assert_eq!(date_diff(DatePart::Minute, t2359, t0001), 2);
        assert_eq!(date_diff(DatePart::Second, t2359, t0001), 120);
        // Jan 31 → Feb 1: one month boundary, one day.
        assert_eq!(date_diff(DatePart::Month, D1999_01_31, D1999_02_01), 1);
        assert_eq!(date_diff(DatePart::Day, D1999_01_31, D1999_02_01), 1);
        assert_eq!(date_diff(DatePart::Quarter, D1999_01_31, D1999_02_01), 0);
        // Dec 31 → Jan 1: year, quarter and month all cross.
        assert_eq!(date_diff(DatePart::Year, D1998_12_31, D1999_01_01), 1);
        assert_eq!(date_diff(DatePart::Quarter, D1998_12_31, D1999_01_01), 1);
        assert_eq!(date_diff(DatePart::Month, D1998_12_31, D1999_01_01), 1);
        // Saturday → Sunday crosses a (Sunday-start) week boundary.
        assert_eq!(date_diff(DatePart::Week, SAT_1999_01_02, SUN_1999_01_03), 1);
        assert_eq!(date_diff(DatePart::Week, SUN_1999_01_03, SUN_1999_01_03), 0);
        // Signed: reversed operands negate.
        assert_eq!(date_diff(DatePart::Day, D1999_02_01, D1999_01_31), -1);
        assert_eq!(date_diff(DatePart::Microsecond, 5, 12), 7);
        assert_eq!(date_diff(DatePart::Millisecond, 0, 2_500), 2);
    }

    #[test]
    fn dateadd_clamps_to_month_end() {
        assert_eq!(date_add(DatePart::Month, 1, D1999_01_31), D1999_02_28);
        assert_eq!(date_add(DatePart::Year, 1, D2000_02_29), D2001_02_28);
        assert_eq!(date_add(DatePart::Month, -11, D1999_12_31()), D1999_01_31);
        assert_eq!(date_add(DatePart::Day, -1, D1999_01_01), D1998_12_31);
        assert_eq!(
            date_add(DatePart::Week, 2, D1999_01_01),
            D1999_01_01 + 14 * MICROS_PER_DAY
        );
        // Time-of-day survives calendar moves.
        let t = D1999_01_31 + 6 * 3600 * MICROS_PER_SECOND;
        assert_eq!(
            date_add(DatePart::Month, 1, t),
            D1999_02_28 + 6 * 3600 * MICROS_PER_SECOND
        );
        assert_eq!(
            date_add(DatePart::Quarter, 1, D1999_01_31),
            days_from_civil(1999, 4, 30) * MICROS_PER_DAY
        );
    }

    #[allow(non_snake_case)]
    fn D1999_12_31() -> i64 {
        days_from_civil(1999, 12, 31) * MICROS_PER_DAY
    }

    #[test]
    fn date_part_extracts_civil_fields() {
        // 1999-01-01 was a Friday (Sunday = 1 ⇒ weekday 6, week 1).
        let noonish = D1999_01_01 + (13 * 3600 + 7 * 60 + 9) * MICROS_PER_SECOND + 123_456;
        assert_eq!(date_part(DatePart::Year, noonish), 1999);
        assert_eq!(date_part(DatePart::Quarter, noonish), 1);
        assert_eq!(date_part(DatePart::Month, noonish), 1);
        assert_eq!(date_part(DatePart::Day, noonish), 1);
        assert_eq!(date_part(DatePart::DayOfYear, noonish), 1);
        assert_eq!(date_part(DatePart::Weekday, noonish), 6);
        assert_eq!(date_part(DatePart::Week, noonish), 1);
        assert_eq!(date_part(DatePart::Hour, noonish), 13);
        assert_eq!(date_part(DatePart::Minute, noonish), 7);
        assert_eq!(date_part(DatePart::Second, noonish), 9);
        assert_eq!(date_part(DatePart::Millisecond, noonish), 123);
        assert_eq!(date_part(DatePart::Microsecond, noonish), 123_456);
        // Sunday 1999-01-03 starts week 2; Saturday the 2nd closes week 1.
        assert_eq!(date_part(DatePart::Weekday, SAT_1999_01_02), 7);
        assert_eq!(date_part(DatePart::Week, SAT_1999_01_02), 1);
        assert_eq!(date_part(DatePart::Weekday, SUN_1999_01_03), 1);
        assert_eq!(date_part(DatePart::Week, SUN_1999_01_03), 2);
        // Day-of-year counts across month boundaries (and leap years).
        assert_eq!(date_part(DatePart::DayOfYear, D1999_02_28), 59);
        assert_eq!(date_part(DatePart::DayOfYear, D2000_02_29), 60);
        assert_eq!(date_part(DatePart::DayOfYear, D1998_12_31), 365);
        // Pre-epoch dates stay on the civil calendar.
        assert_eq!(date_part(DatePart::Year, -MICROS_PER_DAY), 1969);
        assert_eq!(date_part(DatePart::Month, -MICROS_PER_DAY), 12);
        assert_eq!(date_part(DatePart::Day, -MICROS_PER_DAY), 31);
    }

    #[test]
    fn date_name_spells_months_and_weekdays() {
        assert_eq!(date_name(DatePart::Month, D1999_01_01), "January");
        assert_eq!(date_name(DatePart::Month, D1999_02_28), "February");
        assert_eq!(date_name(DatePart::Month, D1999_12_31()), "December");
        assert_eq!(date_name(DatePart::Weekday, D1999_01_01), "Friday");
        assert_eq!(date_name(DatePart::Weekday, SUN_1999_01_03), "Sunday");
        // Every other datepart renders its number, T-SQL style.
        assert_eq!(date_name(DatePart::Year, D1999_01_01), "1999");
        assert_eq!(date_name(DatePart::Day, D1999_02_28), "28");
    }

    #[test]
    fn datepart_abbreviations_resolve() {
        for (names, part) in [
            (&["year", "yy", "yyyy"][..], DatePart::Year),
            (&["quarter", "qq", "q"][..], DatePart::Quarter),
            (&["month", "mm", "m"][..], DatePart::Month),
            (&["week", "wk", "ww"][..], DatePart::Week),
            (&["day", "dd", "d"][..], DatePart::Day),
            (&["dayofyear", "dy"][..], DatePart::DayOfYear),
            (&["weekday", "dw"][..], DatePart::Weekday),
            (&["hour", "hh"][..], DatePart::Hour),
            (&["minute", "mi", "n"][..], DatePart::Minute),
            (&["second", "ss", "s"][..], DatePart::Second),
            (&["millisecond", "ms"][..], DatePart::Millisecond),
            (&["microsecond", "mcs", "us"][..], DatePart::Microsecond),
        ] {
            for n in names {
                assert_eq!(datepart_from_name(n), Some(part), "{n}");
                assert_eq!(
                    datepart_from_name(&n.to_uppercase()),
                    Some(part),
                    "{n} uppercase"
                );
            }
        }
        assert_eq!(datepart_from_name("fortnight"), None);
    }
}
