//! SELECT execution: comma joins, filtering, grouping/aggregates, HAVING,
//! projection, DISTINCT and ORDER BY.
//!
//! The FROM/WHERE phase is access-path driven: the planner ([`crate::plan`])
//! extracts sargable conjuncts from the WHERE clause and routes each FROM
//! table through an index probe when one applies. Probes only ever produce a
//! *superset* of the matching rows — the full WHERE is still evaluated
//! against every candidate — and candidate tuples are re-sorted into
//! FROM-order row-position order, so the visible results (rows *and* their
//! order) are identical to the nested-loop scan. The one deliberate
//! divergence: rows an index proves can't match are never visited, so
//! evaluation side-effects (errors, `syb_sendmsg`) on such rows don't occur,
//! exactly as in any indexed database.

use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

use crate::ast::{is_aggregate_name, Expr, OrderByItem, SelectItem, SelectStmt, UnaryOp};
use crate::error::{Error, Result};
use crate::eval::{apply_binary_values, eval_expr, Frame, QueryCtx, RowEnv};
use crate::index::{key_of, IndexSet};
use crate::plan::{self, Access, SlotMeta};
use crate::table::{Column, Row, RowsReadGuard, Schema};
use crate::value::{DataType, Value};

/// Metadata for one FROM-table's slice of the joined row.
pub(crate) struct JoinedMeta {
    pub(crate) alias: Option<String>,
    pub(crate) table_name: String,
    pub(crate) schema: Schema,
    pub(crate) offset: usize,
    pub(crate) width: usize,
}

fn build_env<'r>(
    metas: &'r [JoinedMeta],
    row: &'r [Value],
    parent: Option<&'r RowEnv<'r>>,
) -> RowEnv<'r> {
    RowEnv {
        frames: metas
            .iter()
            .map(|m| Frame {
                alias: m.alias.clone(),
                table_name: m.table_name.clone(),
                schema: &m.schema,
                row: &row[m.offset..m.offset + m.width],
            })
            .collect(),
        parent,
    }
}

/// Execute a SELECT and return (column names, rows). `INTO` is handled by
/// the engine, not here.
pub(crate) fn run_select(
    ctx: &QueryCtx<'_>,
    stmt: &SelectStmt,
    outer: Option<&RowEnv<'_>>,
) -> Result<(Vec<Arc<str>>, Vec<Row>)> {
    let (columns, rows, _) = run_select_typed(ctx, stmt, outer)?;
    Ok((columns, rows))
}

/// Recursively enumerate candidate row-position tuples following the plan's
/// level order. `current[slot]` holds the position bound for each slot;
/// complete tuples (in slot order) are collected for re-sorting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_candidates(
    level: usize,
    levels: &[(usize, Access)],
    static_cands: &[Option<Vec<usize>>],
    guards: &[RowsReadGuard<'_>],
    sets: &[Arc<IndexSet>],
    sizes: &[usize],
    current: &mut Vec<usize>,
    tuples: &mut Vec<Vec<usize>>,
    visited: &mut u64,
) {
    if level == levels.len() {
        tuples.push(current.clone());
        return;
    }
    let (slot, access) = &levels[level];
    let slot = *slot;
    macro_rules! descend {
        ($iter:expr) => {
            for pos in $iter {
                *visited += 1;
                current[slot] = pos;
                enumerate_candidates(
                    level + 1,
                    levels,
                    static_cands,
                    guards,
                    sets,
                    sizes,
                    current,
                    tuples,
                    visited,
                );
            }
        };
    }
    match access {
        Access::Join {
            col,
            dep_slot,
            dep_col,
        } => {
            // The dependency slot is already bound (the planner orders
            // levels that way); read the live key out of its current row.
            let dep_row = &guards[*dep_slot][current[*dep_slot]];
            // A NULL/NaN key equals nothing, so the superset is empty.
            if let Some(key) = key_of(&dep_row[*dep_col]) {
                if let Some(ix) = sets[slot].best_for(*col, false) {
                    descend!(ix.probe_eq(&key).iter().copied());
                }
            }
        }
        _ => match &static_cands[level] {
            Some(cands) => descend!(cands.iter().copied()),
            None => descend!(0..sizes[slot]),
        },
    }
}

/// Output of [`run_select_typed`]: column names, result rows, and the
/// inferred output schema.
pub(crate) type TypedRows = (Vec<Arc<str>>, Vec<Row>, Vec<Column>);

/// Like [`run_select`] but also returns an inferred output schema, used by
/// `SELECT ... INTO` to create the target table even when zero rows match
/// (the paper's `where 1=2` shadow-table idiom in Figure 11).
pub(crate) fn run_select_typed<'r>(
    ctx: &QueryCtx<'_>,
    stmt: &SelectStmt,
    outer: Option<&'r RowEnv<'r>>,
) -> Result<TypedRows> {
    // ---- FROM.
    let mut metas: Vec<JoinedMeta> = Vec::with_capacity(stmt.from.len());
    let mut tables = Vec::with_capacity(stmt.from.len());
    let mut offset = 0usize;
    for tref in &stmt.from {
        let table = ctx.resolve_table(&tref.name)?;
        metas.push(JoinedMeta {
            alias: tref.alias.clone(),
            table_name: table.name.clone(),
            schema: table.schema.clone(),
            offset,
            width: table.schema.len(),
        });
        offset += table.schema.len();
        tables.push(table);
    }

    // ---- FROM × WHERE: enumerate candidate joined rows and filter.
    let mut filtered: Vec<Row> = Vec::new();
    if tables.is_empty() {
        let row = Vec::new();
        let keep = match &stmt.selection {
            Some(cond) => {
                let env = build_env(&metas, &row, outer);
                eval_expr(ctx, &env, cond)?.is_truthy()
            }
            None => true,
        };
        if keep {
            filtered.push(row);
        }
    } else {
        // Take row-read guards for the whole enumeration; recursive reads
        // keep self-joins and re-reads of a table already being scanned
        // deadlock-free. Index sets are snapshotted after the guards so the
        // positions they hold match the guarded rows.
        let guards: Vec<_> = tables.iter().map(|t| t.rows()).collect();
        let sets: Vec<Arc<IndexSet>> = tables.iter().map(|t| t.index_set()).collect();
        let sizes: Vec<usize> = guards.iter().map(|g| g.len()).collect();
        let slots: Vec<SlotMeta<'_>> = metas
            .iter()
            .map(|m| SlotMeta {
                alias: m.alias.as_deref(),
                table_name: &m.table_name,
                schema: &m.schema,
            })
            .collect();
        let set_refs: Vec<&IndexSet> = sets.iter().map(|s| s.as_ref()).collect();
        let aplan = plan::plan(
            stmt.selection.as_ref(),
            &slots,
            &set_refs,
            &sizes,
            ctx.session,
            ctx.params,
        );
        let mut visited: u64 = 0;
        if aplan.any_index {
            for (_, access) in &aplan.levels {
                let counter = match access {
                    Access::Full => &ctx.stats.index_misses,
                    _ => &ctx.stats.index_hits,
                };
                counter.fetch_add(1, AtomicOrdering::Relaxed);
            }
            // Static (Keys/Range) candidate lists don't depend on bound
            // rows; resolve them once per level.
            let static_cands: Vec<Option<Vec<usize>>> = aplan
                .levels
                .iter()
                .map(|(slot, access)| plan::static_candidates(access, &sets[*slot]))
                .collect();
            let mut tuples: Vec<Vec<usize>> = Vec::new();
            let mut current = vec![0usize; tables.len()];
            enumerate_candidates(
                0,
                &aplan.levels,
                &static_cands,
                &guards,
                &sets,
                &sizes,
                &mut current,
                &mut tuples,
                &mut visited,
            );
            // Restore the scan's output order: tuples are keyed by row
            // position in FROM order, so a lexicographic sort reproduces
            // exactly the odometer's sequence.
            tuples.sort_unstable();
            for tup in tuples {
                let mut row = Vec::with_capacity(offset);
                for (g, &pos) in guards.iter().zip(&tup) {
                    row.extend(g[pos].iter().cloned());
                }
                let keep = match &stmt.selection {
                    Some(cond) => {
                        let env = build_env(&metas, &row, outer);
                        eval_expr(ctx, &env, cond)?.is_truthy()
                    }
                    None => true,
                };
                if keep {
                    filtered.push(row);
                }
            }
        } else {
            ctx.stats
                .index_misses
                .fetch_add(tables.len() as u64, AtomicOrdering::Relaxed);
            // Odometer over row indices of each table, with the WHERE fused
            // into the loop so non-matching joined rows are never kept.
            if sizes.iter().all(|&n| n > 0) {
                let mut idx = vec![0usize; tables.len()];
                'outer: loop {
                    let mut row = Vec::with_capacity(offset);
                    for (g, &i) in guards.iter().zip(&idx) {
                        row.extend(g[i].iter().cloned());
                    }
                    visited += 1;
                    let keep = match &stmt.selection {
                        Some(cond) => {
                            let env = build_env(&metas, &row, outer);
                            eval_expr(ctx, &env, cond)?.is_truthy()
                        }
                        None => true,
                    };
                    if keep {
                        filtered.push(row);
                    }
                    // Advance odometer.
                    for k in (0..idx.len()).rev() {
                        idx[k] += 1;
                        if idx[k] < sizes[k] {
                            continue 'outer;
                        }
                        idx[k] = 0;
                        if k == 0 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        ctx.stats
            .rows_scanned
            .fetch_add(visited, AtomicOrdering::Relaxed);
    }

    // ---- Output column names + static types.
    let (out_names, out_types) = output_columns(&metas, &stmt.projection)?;

    let has_aggregates = !stmt.group_by.is_empty()
        || stmt
            .projection
            .iter()
            .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || stmt.having.as_ref().is_some_and(Expr::contains_aggregate);

    // Each output row is paired with its ORDER BY sort key.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();

    if has_aggregates {
        // ---- GROUP BY: sort row indices by group key, partition runs.
        let mut keys: Vec<Vec<Value>> = Vec::with_capacity(filtered.len());
        for row in &filtered {
            let env = build_env(&metas, row, outer);
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                key.push(eval_expr(ctx, &env, g)?);
            }
            keys.push(key);
        }
        let mut order: Vec<usize> = (0..filtered.len()).collect();
        order.sort_by(|&a, &b| cmp_key(&keys[a], &keys[b]));

        let mut groups: Vec<Vec<&Row>> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let mut j = i + 1;
            while j < order.len()
                && cmp_key(&keys[order[i]], &keys[order[j]]) == std::cmp::Ordering::Equal
            {
                j += 1;
            }
            groups.push(order[i..j].iter().map(|&k| &filtered[k]).collect());
            i = j;
        }
        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && stmt.group_by.is_empty() {
            groups.push(Vec::new());
        }

        for group in groups {
            if let Some(having) = &stmt.having {
                let hv = eval_grouped(ctx, &metas, &group, having)?;
                if !hv.is_truthy() {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(out_names.len());
            for item in &stmt.projection {
                match item {
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        return Err(Error::exec(
                            "wildcard projection is not allowed with GROUP BY/aggregates",
                        ))
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(eval_grouped(ctx, &metas, &group, expr)?);
                    }
                }
            }
            let key =
                order_keys_grouped(ctx, &metas, &group, &stmt.order_by, &out_names, &out_row)?;
            keyed.push((key, out_row));
        }
    } else {
        for row in &filtered {
            let env = build_env(&metas, row, outer);
            let mut out_row = Vec::with_capacity(out_names.len());
            for item in &stmt.projection {
                match item {
                    SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        let m = metas
                            .iter()
                            .find(|m| {
                                m.alias
                                    .as_deref()
                                    .is_some_and(|a| a.eq_ignore_ascii_case(q))
                                    || m.table_name.eq_ignore_ascii_case(q)
                                    || m.table_name
                                        .to_ascii_lowercase()
                                        .ends_with(&format!(".{}", q.to_ascii_lowercase()))
                            })
                            .ok_or_else(|| Error::exec(format!("unknown qualifier '{q}.*'")))?;
                        out_row.extend(row[m.offset..m.offset + m.width].iter().cloned());
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(eval_expr(ctx, &env, expr)?),
                }
            }
            let key = order_keys(ctx, &env, &stmt.order_by, &out_names, &out_row)?;
            keyed.push((key, out_row));
        }
    }

    let rows = finish_rows(keyed, stmt.distinct, &stmt.order_by);
    Ok((out_names, rows, out_types))
}

/// Apply DISTINCT and ORDER BY to (sort-key, row) pairs and strip the keys.
/// Shared by the interpreter and the compiled executor so ties break
/// identically (stable sorts throughout).
pub(crate) fn finish_rows(
    mut keyed: Vec<(Vec<Value>, Row)>,
    distinct: bool,
    order_by: &[OrderByItem],
) -> Vec<Row> {
    // ---- DISTINCT.
    if distinct {
        keyed.sort_by(|a, b| cmp_key(&a.1, &b.1));
        keyed.dedup_by(|a, b| cmp_key(&a.1, &b.1) == std::cmp::Ordering::Equal);
    }

    // ---- ORDER BY (stable sort; DESC flags flip individual key parts).
    if !order_by.is_empty() {
        let descs: Vec<bool> = order_by.iter().map(|o| o.desc).collect();
        keyed.sort_by(|a, b| {
            for ((x, y), desc) in a.0.iter().zip(b.0.iter()).zip(&descs) {
                let ord = x.total_cmp(y);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    keyed.into_iter().map(|(_, r)| r).collect()
}

pub(crate) fn cmp_key(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Compute ORDER BY keys for a non-aggregate row: ordinals and output
/// aliases resolve against the output row; everything else evaluates in the
/// input environment.
fn order_keys(
    ctx: &QueryCtx<'_>,
    env: &RowEnv<'_>,
    order_by: &[OrderByItem],
    out_names: &[Arc<str>],
    out_row: &[Value],
) -> Result<Vec<Value>> {
    let mut keys = Vec::with_capacity(order_by.len());
    for item in order_by {
        if let Some(v) = output_ref(&item.expr, out_names, out_row)? {
            keys.push(v);
        } else {
            keys.push(eval_expr(ctx, env, &item.expr)?);
        }
    }
    Ok(keys)
}

fn order_keys_grouped(
    ctx: &QueryCtx<'_>,
    metas: &[JoinedMeta],
    group: &[&Row],
    order_by: &[OrderByItem],
    out_names: &[Arc<str>],
    out_row: &[Value],
) -> Result<Vec<Value>> {
    let mut keys = Vec::with_capacity(order_by.len());
    for item in order_by {
        if let Some(v) = output_ref(&item.expr, out_names, out_row)? {
            keys.push(v);
        } else {
            keys.push(eval_grouped(ctx, metas, group, &item.expr)?);
        }
    }
    Ok(keys)
}

/// ORDER BY ordinal (`order by 2`) or output-alias reference.
pub(crate) fn output_ref(
    expr: &Expr,
    out_names: &[Arc<str>],
    out_row: &[Value],
) -> Result<Option<Value>> {
    match expr {
        Expr::Literal(Value::Int(n)) => {
            let idx = *n as usize;
            if idx == 0 || idx > out_row.len() {
                return Err(Error::exec(format!("ORDER BY position {n} out of range")));
            }
            Ok(Some(out_row[idx - 1].clone()))
        }
        Expr::Column {
            qualifier: None,
            name,
        } => {
            let mut hit = None;
            for (i, n) in out_names.iter().enumerate() {
                if n.eq_ignore_ascii_case(name) {
                    hit = Some(out_row[i].clone());
                    break;
                }
            }
            Ok(hit)
        }
        _ => Ok(None),
    }
}

/// Evaluate an expression over a whole group (aggregate context).
fn eval_grouped(
    ctx: &QueryCtx<'_>,
    metas: &[JoinedMeta],
    group: &[&Row],
    expr: &Expr,
) -> Result<Value> {
    if !expr.contains_aggregate() {
        // Non-aggregate parts take their value from the group's first row
        // (Sybase-style leniency; strict SQL would require GROUP BY listing).
        return match group.first() {
            Some(row) => {
                let env = build_env(metas, row, None);
                eval_expr(ctx, &env, expr)
            }
            None => Ok(Value::Null),
        };
    }
    match expr {
        Expr::Function {
            name,
            args,
            star,
            distinct,
        } if is_aggregate_name(name) => {
            compute_aggregate(ctx, metas, group, name, args, *star, *distinct)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_grouped(ctx, metas, group, left)?;
            let r = eval_grouped(ctx, metas, group, right)?;
            apply_binary_values(*op, l, r)
        }
        Expr::Unary { op, operand } => {
            let v = eval_grouped(ctx, metas, group, operand)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!other.is_truthy())),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::type_err(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::IsNull { operand, negated } => {
            let v = eval_grouped(ctx, metas, group, operand)?;
            Ok(Value::Int(i64::from(v.is_null() != *negated)))
        }
        Expr::Function { name, .. } => Err(Error::exec(format!(
            "cannot nest scalar function '{name}' over aggregates"
        ))),
        other => Err(Error::exec(format!(
            "unsupported aggregate expression: {other:?}"
        ))),
    }
}

fn compute_aggregate(
    ctx: &QueryCtx<'_>,
    metas: &[JoinedMeta],
    group: &[&Row],
    name: &str,
    args: &[Expr],
    star: bool,
    distinct: bool,
) -> Result<Value> {
    if name.eq_ignore_ascii_case("count") && star {
        if distinct {
            return Err(Error::exec("DISTINCT is not allowed with count(*)"));
        }
        return Ok(Value::Int(group.len() as i64));
    }
    if args.len() != 1 {
        return Err(Error::exec(format!("{name}() expects one argument")));
    }
    let mut vals = Vec::with_capacity(group.len());
    for row in group {
        let env = build_env(metas, row, None);
        let v = eval_expr(ctx, &env, &args[0])?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    finish_aggregate(name, vals, distinct)
}

/// Fold a group's null-filtered argument values into an aggregate result.
/// `distinct` dedups values first for COUNT/SUM/AVG; MIN/MAX are unaffected
/// by definition. Shared by the interpreter and the compiled executor so the
/// two paths cannot drift.
pub(crate) fn finish_aggregate(name: &str, mut vals: Vec<Value>, distinct: bool) -> Result<Value> {
    let lname = name.to_ascii_lowercase();
    if distinct && matches!(lname.as_str(), "count" | "sum" | "avg") {
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
    }
    match lname.as_str() {
        "count" => Ok(Value::Int(vals.len() as i64)),
        "min" => Ok(vals
            .into_iter()
            .reduce(|a, b| {
                if a.sql_cmp(&b) == Some(std::cmp::Ordering::Greater) {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null)),
        "max" => Ok(vals
            .into_iter()
            .reduce(|a, b| {
                if a.sql_cmp(&b) == Some(std::cmp::Ordering::Less) {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null)),
        "sum" | "avg" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum_f = 0f64;
            let mut sum_i = 0i64;
            let n = vals.len();
            for v in vals {
                match v {
                    Value::Int(i) => {
                        sum_i = sum_i.wrapping_add(i);
                        sum_f += i as f64;
                    }
                    Value::Float(f) => {
                        all_int = false;
                        sum_f += f;
                    }
                    other => {
                        return Err(Error::type_err(format!("{name}() over {other}")));
                    }
                }
            }
            if lname == "sum" {
                Ok(if all_int {
                    Value::Int(sum_i)
                } else {
                    Value::Float(sum_f)
                })
            } else {
                Ok(Value::Float(sum_f / n as f64))
            }
        }
        other => Err(Error::exec(format!("unknown aggregate '{other}'"))),
    }
}

/// Derive output column names and static types for a projection. Names from
/// wildcards are the schemas' interned handles; a plain column reference
/// reuses the schema's handle when the query spelled it identically, so the
/// common output paths never copy a name string per statement.
pub(crate) fn output_columns(
    metas: &[JoinedMeta],
    projection: &[SelectItem],
) -> Result<(Vec<Arc<str>>, Vec<Column>)> {
    let mut names: Vec<Arc<str>> = Vec::new();
    let mut cols = Vec::new();
    let mut anon = 0usize;
    for item in projection {
        match item {
            SelectItem::Wildcard => {
                for m in metas {
                    for c in &m.schema.columns {
                        names.push(c.name.clone());
                        cols.push(c.clone());
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let m = metas
                    .iter()
                    .find(|m| {
                        m.alias
                            .as_deref()
                            .is_some_and(|a| a.eq_ignore_ascii_case(q))
                            || m.table_name.eq_ignore_ascii_case(q)
                            || m.table_name
                                .to_ascii_lowercase()
                                .ends_with(&format!(".{}", q.to_ascii_lowercase()))
                    })
                    .ok_or_else(|| Error::exec(format!("unknown qualifier '{q}.*'")))?;
                for c in &m.schema.columns {
                    names.push(c.name.clone());
                    cols.push(c.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name: Arc<str> = match alias {
                    Some(a) => Arc::from(a.as_str()),
                    None => match expr {
                        Expr::Column { name, .. } => {
                            // Reuse the schema's interned handle when the
                            // query spelled the name exactly as created
                            // (output spelling follows the query otherwise).
                            metas
                                .iter()
                                .find_map(|m| m.schema.column(name))
                                .filter(|c| &*c.name == name)
                                .map(|c| c.name.clone())
                                .unwrap_or_else(|| Arc::from(name.as_str()))
                        }
                        _ => {
                            anon += 1;
                            Arc::from(format!("col{anon}").as_str())
                        }
                    },
                };
                let data_type = infer_type(metas, expr);
                names.push(name.clone());
                cols.push(Column {
                    name,
                    data_type,
                    nullable: true,
                });
            }
        }
    }
    if names.is_empty() {
        return Err(Error::exec("empty projection"));
    }
    Ok((names, cols))
}

/// Best-effort static type inference for SELECT INTO target columns.
fn infer_type(metas: &[JoinedMeta], expr: &Expr) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Column { name, qualifier } => {
            for m in metas {
                if let Some(q) = qualifier {
                    let qlc = q.to_ascii_lowercase();
                    let tn = m.table_name.to_ascii_lowercase();
                    let alias_hit = m
                        .alias
                        .as_deref()
                        .is_some_and(|a| a.eq_ignore_ascii_case(q));
                    if !(alias_hit || tn == qlc || tn.ends_with(&format!(".{qlc}"))) {
                        continue;
                    }
                }
                if let Some(c) = m.schema.column(name) {
                    return c.data_type;
                }
            }
            DataType::Text
        }
        Expr::Function { name, .. } => {
            let lname = name.to_ascii_lowercase();
            match lname.as_str() {
                "getdate" | "getutcdate" | "dateadd" => DataType::DateTime,
                "count" | "len" | "char_length" | "syb_sendmsg" | "datepart" | "datediff" => {
                    DataType::Int
                }
                "sum" | "min" | "max" | "abs" | "round" | "avg" => DataType::Float,
                "upper" | "lower" | "str" | "db_name" | "user_name" | "datename" => DataType::Text,
                _ => DataType::Text,
            }
        }
        Expr::Binary { op, left, right } => {
            use crate::ast::BinaryOp::*;
            match op {
                And | Or | Eq | Neq | Lt | Le | Gt | Ge => DataType::Int,
                _ => {
                    let lt = infer_type(metas, left);
                    let rt = infer_type(metas, right);
                    match (lt, rt) {
                        (DataType::Int, DataType::Int) => DataType::Int,
                        (DataType::Text, _) | (_, DataType::Text) => DataType::Text,
                        (DataType::Varchar(_), _) | (_, DataType::Varchar(_)) => DataType::Text,
                        (DataType::DateTime, _) | (_, DataType::DateTime) => DataType::DateTime,
                        _ => DataType::Float,
                    }
                }
            }
        }
        Expr::Unary { operand, .. } => infer_type(metas, operand),
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::Exists(_) => DataType::Int,
        Expr::Subquery(_) | Expr::Param(_) => DataType::Text,
    }
}
