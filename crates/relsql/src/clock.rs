//! Deterministic logical clock backing `getdate()` and event timestamps.
//!
//! Every read advances the clock by one microsecond, so timestamps are
//! strictly monotonic and runs are reproducible — important because the
//! LED's SEQ operator and the parameter contexts are defined over event
//! timestamps.

use std::sync::atomic::{AtomicI64, Ordering};

/// A monotonically increasing logical clock (microsecond granularity).
#[derive(Debug)]
pub struct LogicalClock {
    now: AtomicI64,
}

impl LogicalClock {
    /// Start at `epoch` microseconds.
    pub fn new(epoch: i64) -> Self {
        LogicalClock {
            now: AtomicI64::new(epoch),
        }
    }

    /// Read the clock and advance it by one tick (strictly monotonic reads).
    pub fn now(&self) -> i64 {
        self.now.fetch_add(1, Ordering::SeqCst)
    }

    /// Read without advancing.
    pub fn peek(&self) -> i64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Jump the clock forward by `micros` (no-op for non-positive values).
    pub fn advance(&self, micros: i64) {
        if micros > 0 {
            self.now.fetch_add(micros, Ordering::SeqCst);
        }
    }

    /// Set the clock to an absolute time. Only moves forward; attempts to
    /// move backwards are ignored to preserve monotonicity.
    pub fn set(&self, micros: i64) {
        self.now.fetch_max(micros, Ordering::SeqCst);
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        // An arbitrary fixed epoch: 1999-01-01 00:00:00 in seconds * 1e6,
        // a nod to the paper's publication year.
        LogicalClock::new(915_148_800_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_strictly_monotonic() {
        let c = LogicalClock::new(0);
        let a = c.now();
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn peek_does_not_advance() {
        let c = LogicalClock::new(10);
        assert_eq!(c.peek(), 10);
        assert_eq!(c.peek(), 10);
    }

    #[test]
    fn advance_and_set() {
        let c = LogicalClock::new(0);
        c.advance(100);
        assert_eq!(c.peek(), 100);
        c.advance(-5); // ignored
        assert_eq!(c.peek(), 100);
        c.set(500);
        assert_eq!(c.peek(), 500);
        c.set(50); // backwards ignored
        assert_eq!(c.peek(), 500);
    }

    #[test]
    fn default_epoch_is_1999() {
        let c = LogicalClock::default();
        assert_eq!(c.peek(), 915_148_800_000_000);
    }
}
