//! Notification transport — the stand-in for Sybase's `syb_sendmsg()` UDP
//! built-in (Figure 11 / §5.4 of the paper).
//!
//! The engine posts a [`Datagram`] to a registered [`NotificationSink`]
//! whenever generated trigger code calls `syb_sendmsg(host, port, payload)`.
//! The default sink is an in-process channel with UDP's fire-and-forget
//! semantics; [`LossySink`] adds configurable drop probability so tests and
//! benchmarks can explore the reliability concern the paper raises in §6.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A UDP-datagram-shaped notification message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    pub host: String,
    pub port: u16,
    pub payload: String,
    /// Monotonic send sequence number, useful for loss accounting.
    pub seq: u64,
}

/// Anything that can receive notifications from the engine.
///
/// Sends are fire-and-forget: a sink must never block the engine and never
/// report errors back into SQL execution, matching UDP semantics.
pub trait NotificationSink: Send + Sync {
    fn send(&self, datagram: Datagram);
}

/// Channel-backed sink; the receiving side is typically the ECA Agent's
/// Event Notifier thread.
pub struct ChannelSink {
    tx: Sender<Datagram>,
    sent: AtomicU64,
}

impl ChannelSink {
    /// Create the sink plus the receiver end.
    pub fn new() -> (Arc<Self>, Receiver<Datagram>) {
        let (tx, rx) = unbounded();
        (
            Arc::new(ChannelSink {
                tx,
                sent: AtomicU64::new(0),
            }),
            rx,
        )
    }

    /// Total datagrams sent through this sink.
    pub fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

impl NotificationSink for ChannelSink {
    fn send(&self, datagram: Datagram) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        // Fire-and-forget: a disconnected receiver is a silent drop,
        // exactly like UDP with nobody listening.
        let _ = self.tx.send(datagram);
    }
}

/// Sink wrapper that drops datagrams with a fixed probability, simulating
/// UDP loss (failure injection for experiment E8).
pub struct LossySink<S> {
    inner: Arc<S>,
    drop_probability: f64,
    rng: Mutex<StdRng>,
    dropped: AtomicU64,
}

impl<S: NotificationSink> LossySink<S> {
    pub fn new(inner: Arc<S>, drop_probability: f64, seed: u64) -> Arc<Self> {
        Arc::new(LossySink {
            inner,
            drop_probability: drop_probability.clamp(0.0, 1.0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            dropped: AtomicU64::new(0),
        })
    }

    /// How many datagrams were dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<S: NotificationSink> NotificationSink for LossySink<S> {
    fn send(&self, datagram: Datagram) {
        let roll: f64 = self.rng.lock().gen();
        if roll < self.drop_probability {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.send(datagram);
    }
}

/// Sink that records every datagram, for assertions in tests.
#[derive(Default)]
pub struct CollectingSink {
    received: Mutex<Vec<Datagram>>,
}

impl CollectingSink {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn take(&self) -> Vec<Datagram> {
        std::mem::take(&mut self.received.lock())
    }

    pub fn len(&self) -> usize {
        self.received.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.received.lock().is_empty()
    }
}

impl NotificationSink for CollectingSink {
    fn send(&self, datagram: Datagram) {
        self.received.lock().push(datagram);
    }
}

/// Drain everything currently queued on a receiver without blocking.
pub fn drain(rx: &Receiver<Datagram>) -> Vec<Datagram> {
    let mut out = Vec::new();
    while let Ok(d) = rx.try_recv() {
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg(seq: u64) -> Datagram {
        Datagram {
            host: "127.0.0.1".into(),
            port: 10006,
            payload: format!("msg {seq}"),
            seq,
        }
    }

    #[test]
    fn channel_sink_delivers_in_order() {
        let (sink, rx) = ChannelSink::new();
        for i in 0..5 {
            sink.send(dg(i));
        }
        let got = drain(&rx);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].payload, "msg 0");
        assert_eq!(got[4].seq, 4);
        assert_eq!(sink.sent_count(), 5);
    }

    #[test]
    fn channel_sink_survives_disconnected_receiver() {
        let (sink, rx) = ChannelSink::new();
        drop(rx);
        sink.send(dg(0)); // must not panic — UDP semantics
        assert_eq!(sink.sent_count(), 1);
    }

    #[test]
    fn lossy_sink_zero_probability_drops_nothing() {
        let inner = CollectingSink::new();
        let lossy = LossySink::new(inner.clone(), 0.0, 42);
        for i in 0..100 {
            lossy.send(dg(i));
        }
        assert_eq!(inner.len(), 100);
        assert_eq!(lossy.dropped_count(), 0);
    }

    #[test]
    fn lossy_sink_one_probability_drops_everything() {
        let inner = CollectingSink::new();
        let lossy = LossySink::new(inner.clone(), 1.0, 42);
        for i in 0..100 {
            lossy.send(dg(i));
        }
        assert!(inner.is_empty());
        assert_eq!(lossy.dropped_count(), 100);
    }

    #[test]
    fn lossy_sink_partial_drop_is_deterministic_per_seed() {
        let run = |seed| {
            let inner = CollectingSink::new();
            let lossy = LossySink::new(inner.clone(), 0.3, seed);
            for i in 0..1000 {
                lossy.send(dg(i));
            }
            (inner.len(), lossy.dropped_count())
        };
        let (a_recv, a_drop) = run(7);
        let (b_recv, b_drop) = run(7);
        assert_eq!((a_recv, a_drop), (b_recv, b_drop));
        assert_eq!(a_recv as u64 + a_drop, 1000);
        // Roughly 30% loss.
        assert!((200..400).contains(&(a_drop as usize)), "dropped {a_drop}");
    }

    #[test]
    fn collecting_sink_take_resets() {
        let sink = CollectingSink::new();
        sink.send(dg(1));
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
    }
}
