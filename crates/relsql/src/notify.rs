//! Notification transport — the stand-in for Sybase's `syb_sendmsg()` UDP
//! built-in (Figure 11 / §5.4 of the paper).
//!
//! The engine posts a [`Datagram`] to a registered [`NotificationSink`]
//! whenever generated trigger code calls `syb_sendmsg(host, port, payload)`.
//! The default sink is an in-process channel with UDP's fire-and-forget
//! semantics; [`ChaosSink`] injects the full UDP failure spectrum — drops,
//! duplicates, reordering, and delay bursts, all seed-deterministic — so
//! tests and benchmarks can explore the reliability concern the paper
//! raises in §6 and exercise the agent's exactly-once recovery layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A UDP-datagram-shaped notification message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    pub host: String,
    pub port: u16,
    pub payload: String,
    /// Monotonic send sequence number, useful for loss accounting.
    pub seq: u64,
}

/// Anything that can receive notifications from the engine.
///
/// Sends are fire-and-forget: a sink must never block the engine and never
/// report errors back into SQL execution, matching UDP semantics.
pub trait NotificationSink: Send + Sync {
    fn send(&self, datagram: Datagram);
}

/// Channel-backed sink; the receiving side is typically the ECA Agent's
/// Event Notifier thread.
pub struct ChannelSink {
    tx: Sender<Datagram>,
    sent: AtomicU64,
    overflowed: AtomicU64,
}

impl ChannelSink {
    /// Create the sink plus the receiver end (unbounded queue).
    pub fn new() -> (Arc<Self>, Receiver<Datagram>) {
        let (tx, rx) = unbounded();
        (
            Arc::new(ChannelSink {
                tx,
                sent: AtomicU64::new(0),
                overflowed: AtomicU64::new(0),
            }),
            rx,
        )
    }

    /// Create a sink with a bounded queue of `depth` datagrams — the
    /// pipelined detector stage's admission buffer. A full queue drops the
    /// datagram (counted in [`overflow_count`](Self::overflow_count))
    /// rather than blocking the engine; the agent's exactly-once
    /// anti-entropy sweep recovers such drops from durable vNo state, the
    /// same way it recovers UDP loss.
    pub fn bounded(depth: usize) -> (Arc<Self>, Receiver<Datagram>) {
        let (tx, rx) = bounded(depth.max(1));
        (
            Arc::new(ChannelSink {
                tx,
                sent: AtomicU64::new(0),
                overflowed: AtomicU64::new(0),
            }),
            rx,
        )
    }

    /// Total datagrams sent through this sink.
    pub fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Datagrams dropped because the bounded queue was full.
    pub fn overflow_count(&self) -> u64 {
        self.overflowed.load(Ordering::Relaxed)
    }
}

impl NotificationSink for ChannelSink {
    fn send(&self, datagram: Datagram) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        // Fire-and-forget: a disconnected receiver or a full bounded queue
        // is a silent drop, exactly like UDP with nobody listening (the
        // reliability layer repairs it).
        if let Err(TrySendError::Full(_)) = self.tx.try_send(datagram) {
            self.overflowed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A fault-injection plan for [`ChaosSink`]: the UDP failure spectrum the
/// paper's §6 worries about, each dimension independently tunable. All
/// randomness derives from `seed`, so a given plan over a given send
/// sequence misbehaves identically on every run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability a datagram is dropped outright.
    pub drop: f64,
    /// Probability a surviving datagram is delivered twice.
    pub duplicate: f64,
    /// Surviving datagrams pass through a holding buffer of this size and
    /// leave it in random order (0 = in-order delivery).
    pub reorder_window: usize,
    /// Every N sends (0 = never), start a delay burst: the next
    /// `delay_burst_len` datagrams are held back and released together.
    pub delay_burst_every: u64,
    pub delay_burst_len: u64,
    pub seed: u64,
}

impl FaultPlan {
    /// Drop-only plan — the old `LossySink` behaviour.
    pub fn lossy(drop: f64, seed: u64) -> Self {
        FaultPlan {
            drop,
            seed,
            ..FaultPlan::default()
        }
    }

    /// Does this plan inject any fault at all?
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.reorder_window == 0
            && self.delay_burst_every == 0
    }
}

struct ChaosState {
    rng: StdRng,
    /// Reorder holding buffer (capacity = plan.reorder_window).
    reorder: Vec<Datagram>,
    /// Datagrams held back by an active delay burst.
    burst: Vec<Datagram>,
    /// Sends remaining in the current delay burst.
    burst_left: u64,
    sends: u64,
}

/// Sink wrapper that injects faults per a [`FaultPlan`], simulating UDP
/// loss, duplication, reordering and delay (failure injection for
/// experiment E8 and the exactly-once chaos suite). Generalizes the old
/// drop-only `LossySink`.
pub struct ChaosSink<S> {
    inner: Arc<S>,
    plan: FaultPlan,
    state: Mutex<ChaosState>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    forwarded: AtomicU64,
}

impl<S: NotificationSink> ChaosSink<S> {
    pub fn new(inner: Arc<S>, plan: FaultPlan) -> Arc<Self> {
        let plan = FaultPlan {
            drop: plan.drop.clamp(0.0, 1.0),
            duplicate: plan.duplicate.clamp(0.0, 1.0),
            ..plan
        };
        Arc::new(ChaosSink {
            inner,
            state: Mutex::new(ChaosState {
                rng: StdRng::seed_from_u64(plan.seed),
                reorder: Vec::new(),
                burst: Vec::new(),
                burst_left: 0,
                sends: 0,
            }),
            plan,
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
        })
    }

    /// Drop-only constructor — the old `LossySink::new` signature.
    pub fn lossy(inner: Arc<S>, drop_probability: f64, seed: u64) -> Arc<Self> {
        ChaosSink::new(inner, FaultPlan::lossy(drop_probability, seed))
    }

    /// How many datagrams were dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// How many extra (duplicate) deliveries were injected so far.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// How many datagrams passed through the reorder holding buffer (and
    /// may therefore have been delivered out of send order).
    pub fn reordered_count(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }

    /// How many datagrams were held back (reorder buffer or delay burst)
    /// at least once before delivery.
    pub fn delayed_count(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// How many datagrams reached the inner sink.
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Datagrams currently held back (not yet delivered, not dropped).
    pub fn in_flight(&self) -> usize {
        let st = self.state.lock();
        st.reorder.len() + st.burst.len()
    }

    /// Release everything still held in the reorder/burst buffers, in the
    /// order it was buffered (the faults already happened; flushing just
    /// ends the delay).
    pub fn flush(&self) {
        let held: Vec<Datagram> = {
            let mut st = self.state.lock();
            st.burst_left = 0;
            let mut held = std::mem::take(&mut st.burst);
            held.append(&mut st.reorder);
            held
        };
        for d in held {
            self.deliver(d);
        }
    }

    fn deliver(&self, d: Datagram) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
        self.inner.send(d);
    }
}

impl<S: NotificationSink> NotificationSink for ChaosSink<S> {
    fn send(&self, datagram: Datagram) {
        let mut ready: Vec<Datagram> = Vec::new();
        {
            let mut st = self.state.lock();
            st.sends += 1;
            if self.plan.delay_burst_every > 0
                && st.burst_left == 0
                && st.sends.is_multiple_of(self.plan.delay_burst_every)
            {
                st.burst_left = self.plan.delay_burst_len;
            }
            // Two rolls per send, always, so the random stream stays
            // aligned with the send sequence regardless of outcomes.
            let roll_drop: f64 = st.rng.gen();
            let roll_dup: f64 = st.rng.gen();
            if roll_drop < self.plan.drop {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                let copies = if roll_dup < self.plan.duplicate {
                    self.duplicated.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    let d = datagram.clone();
                    if st.burst_left > 0 {
                        self.delayed.fetch_add(1, Ordering::Relaxed);
                        st.burst.push(d);
                    } else if self.plan.reorder_window > 0 {
                        self.reordered.fetch_add(1, Ordering::Relaxed);
                        st.reorder.push(d);
                    } else {
                        ready.push(d);
                    }
                }
            }
            if st.burst_left > 0 {
                st.burst_left -= 1;
                // Burst over: hand the held datagrams to the reorder
                // buffer (or straight out) in one batch.
                if st.burst_left == 0 {
                    let held = std::mem::take(&mut st.burst);
                    if self.plan.reorder_window > 0 {
                        self.reordered
                            .fetch_add(held.len() as u64, Ordering::Relaxed);
                        st.reorder.extend(held);
                    } else {
                        ready.extend(held);
                    }
                }
            }
            // The reorder buffer releases a random victim whenever it is
            // over capacity — later sends can overtake held ones.
            while st.reorder.len() > self.plan.reorder_window {
                let len = st.reorder.len();
                let i = st.rng.gen_range(0..len);
                ready.push(st.reorder.remove(i));
            }
        }
        for d in ready {
            self.deliver(d);
        }
    }
}

/// Sink that records every datagram, for assertions in tests.
#[derive(Default)]
pub struct CollectingSink {
    received: Mutex<Vec<Datagram>>,
}

impl CollectingSink {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn take(&self) -> Vec<Datagram> {
        std::mem::take(&mut self.received.lock())
    }

    pub fn len(&self) -> usize {
        self.received.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.received.lock().is_empty()
    }
}

impl NotificationSink for CollectingSink {
    fn send(&self, datagram: Datagram) {
        self.received.lock().push(datagram);
    }
}

/// Drain everything currently queued on a receiver without blocking.
pub fn drain(rx: &Receiver<Datagram>) -> Vec<Datagram> {
    let mut out = Vec::new();
    while let Ok(d) = rx.try_recv() {
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg(seq: u64) -> Datagram {
        Datagram {
            host: "127.0.0.1".into(),
            port: 10006,
            payload: format!("msg {seq}"),
            seq,
        }
    }

    #[test]
    fn channel_sink_delivers_in_order() {
        let (sink, rx) = ChannelSink::new();
        for i in 0..5 {
            sink.send(dg(i));
        }
        let got = drain(&rx);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].payload, "msg 0");
        assert_eq!(got[4].seq, 4);
        assert_eq!(sink.sent_count(), 5);
    }

    #[test]
    fn channel_sink_survives_disconnected_receiver() {
        let (sink, rx) = ChannelSink::new();
        drop(rx);
        sink.send(dg(0)); // must not panic — UDP semantics
        assert_eq!(sink.sent_count(), 1);
    }

    #[test]
    fn lossy_sink_zero_probability_drops_nothing() {
        let inner = CollectingSink::new();
        let lossy = ChaosSink::lossy(inner.clone(), 0.0, 42);
        for i in 0..100 {
            lossy.send(dg(i));
        }
        assert_eq!(inner.len(), 100);
        assert_eq!(lossy.dropped_count(), 0);
        // A no-fault plan delivers in order.
        let got = inner.take();
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn lossy_sink_one_probability_drops_everything() {
        let inner = CollectingSink::new();
        let lossy = ChaosSink::lossy(inner.clone(), 1.0, 42);
        for i in 0..100 {
            lossy.send(dg(i));
        }
        assert!(inner.is_empty());
        assert_eq!(lossy.dropped_count(), 100);
    }

    #[test]
    fn lossy_sink_partial_drop_is_deterministic_per_seed() {
        let run = |seed| {
            let inner = CollectingSink::new();
            let lossy = ChaosSink::lossy(inner.clone(), 0.3, seed);
            for i in 0..1000 {
                lossy.send(dg(i));
            }
            (inner.len(), lossy.dropped_count())
        };
        let (a_recv, a_drop) = run(7);
        let (b_recv, b_drop) = run(7);
        assert_eq!((a_recv, a_drop), (b_recv, b_drop));
        assert_eq!(a_recv as u64 + a_drop, 1000);
        // Roughly 30% loss.
        assert!((200..400).contains(&(a_drop as usize)), "dropped {a_drop}");
    }

    #[test]
    fn chaos_sink_duplicates_inflate_delivery() {
        let inner = CollectingSink::new();
        let chaos = ChaosSink::new(
            inner.clone(),
            FaultPlan {
                duplicate: 1.0,
                seed: 5,
                ..FaultPlan::default()
            },
        );
        for i in 0..10 {
            chaos.send(dg(i));
        }
        assert_eq!(inner.len(), 20);
        assert_eq!(chaos.duplicated_count(), 10);
        assert_eq!(chaos.dropped_count(), 0);
    }

    #[test]
    fn chaos_sink_reorder_window_permutes_but_loses_nothing() {
        let inner = CollectingSink::new();
        let chaos = ChaosSink::new(
            inner.clone(),
            FaultPlan {
                reorder_window: 8,
                seed: 11,
                ..FaultPlan::default()
            },
        );
        for i in 0..200 {
            chaos.send(dg(i));
        }
        chaos.flush();
        assert_eq!(chaos.in_flight(), 0);
        assert_eq!(
            chaos.reordered_count(),
            200,
            "every send crossed the buffer"
        );
        let mut seqs: Vec<u64> = inner.take().iter().map(|d| d.seq).collect();
        assert_eq!(seqs.len(), 200, "no loss");
        assert!(
            seqs.windows(2).any(|w| w[0] > w[1]),
            "window 8 over 200 sends must permute something"
        );
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn chaos_sink_delay_bursts_hold_then_release() {
        let inner = CollectingSink::new();
        let chaos = ChaosSink::new(
            inner.clone(),
            FaultPlan {
                delay_burst_every: 10,
                delay_burst_len: 3,
                seed: 1,
                ..FaultPlan::default()
            },
        );
        for i in 0..9 {
            chaos.send(dg(i));
        }
        assert_eq!(inner.len(), 9, "before the burst everything flows");
        chaos.send(dg(9)); // send #10 starts the burst — held
        chaos.send(dg(10)); // held
        assert_eq!(inner.len(), 9);
        assert_eq!(chaos.in_flight(), 2);
        chaos.send(dg(11)); // burst of 3 complete — all released
        assert_eq!(inner.len(), 12);
        assert_eq!(chaos.delayed_count(), 3);
    }

    #[test]
    fn chaos_sink_full_plan_is_deterministic_per_seed() {
        let run = |seed| {
            let inner = CollectingSink::new();
            let chaos = ChaosSink::new(
                inner.clone(),
                FaultPlan {
                    drop: 0.4,
                    duplicate: 0.3,
                    reorder_window: 4,
                    delay_burst_every: 16,
                    delay_burst_len: 4,
                    seed,
                },
            );
            for i in 0..500 {
                chaos.send(dg(i));
            }
            chaos.flush();
            let seqs: Vec<u64> = inner.take().iter().map(|d| d.seq).collect();
            (seqs, chaos.dropped_count(), chaos.duplicated_count())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0, "different seeds, different chaos");
    }

    #[test]
    fn fault_plan_noop_detection() {
        assert!(FaultPlan::default().is_noop());
        assert!(!FaultPlan::lossy(0.1, 0).is_noop());
        assert!(!FaultPlan {
            reorder_window: 1,
            ..FaultPlan::default()
        }
        .is_noop());
    }

    #[test]
    fn collecting_sink_take_resets() {
        let sink = CollectingSink::new();
        sink.send(dg(1));
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
    }
}
