//! SQL lexer shared by the engine's parser and the ECA Agent's extended
//! trigger parser.
//!
//! Transact-SQL flavoured: keywords are case-insensitive, string literals use
//! single or double quotes, comments are `/* ... */` or `-- ...`, and
//! statements need no terminating semicolon (the paper's generated code in
//! Figure 11 runs statements together on consecutive lines).

use crate::error::{Error, Result};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Placeholder for a masked-out literal (statement-plan cache). Never
    /// produced by [`tokenize`]; injected by the plan cache before parsing
    /// so repeated batches that differ only in literals share one plan.
    Param(usize),
    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// `^` — used by Snoop for AND in the agent's event expressions.
    Caret,
    /// `|` — used by Snoop for OR.
    Pipe,
    /// `[` / `]` — used by Snoop time-string brackets.
    LBracket,
    RBracket,
    /// `::` — Snoop `Eventname::AppId` qualifier.
    DoubleColon,
    /// `:` — Snoop parameter separator.
    Colon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// If this token is an identifier, return its text.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `src` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment.
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            let mut depth = 1;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                return Err(Error::Lex {
                    pos: start,
                    msg: "unterminated block comment".into(),
                });
            }
            continue;
        }
        // String literals: '...' or "..."; doubled quote escapes itself.
        if c == b'\'' || c == b'"' {
            let quote = c;
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(Error::Lex {
                        pos: start,
                        msg: "unterminated string literal".into(),
                    });
                }
                if bytes[i] == quote {
                    if bytes.get(i + 1) == Some(&quote) {
                        s.push(quote as char);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                // Multi-byte UTF-8 pass-through.
                let ch_len = utf8_len(bytes[i]);
                s.push_str(&src[i..i + ch_len]);
                i += ch_len;
            }
            out.push(Token {
                kind: TokenKind::Str(s),
                pos: start,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| Error::Lex {
                    pos: start,
                    msg: format!("bad float literal '{text}'"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| Error::Lex {
                    pos: start,
                    msg: format!("bad int literal '{text}'"),
                })?)
            };
            out.push(Token { kind, pos: start });
            continue;
        }
        // Identifiers (letters, digits, '_', '@', '#').
        if c.is_ascii_alphabetic() || c == b'_' || c == b'@' || c == b'#' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'@'
                    || bytes[i] == b'#'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident(src[start..i].to_string()),
                pos: start,
            });
            continue;
        }
        // Operators / punctuation.
        let start = i;
        let (kind, len) = match c {
            b'(' => (TokenKind::LParen, 1),
            b')' => (TokenKind::RParen, 1),
            b',' => (TokenKind::Comma, 1),
            b'.' => (TokenKind::Dot, 1),
            b';' => (TokenKind::Semi, 1),
            b'*' => (TokenKind::Star, 1),
            b'+' => (TokenKind::Plus, 1),
            b'-' => (TokenKind::Minus, 1),
            b'/' => (TokenKind::Slash, 1),
            b'%' => (TokenKind::Percent, 1),
            b'^' => (TokenKind::Caret, 1),
            b'|' => (TokenKind::Pipe, 1),
            b'[' => (TokenKind::LBracket, 1),
            b']' => (TokenKind::RBracket, 1),
            b'=' => (TokenKind::Eq, 1),
            b':' if bytes.get(i + 1) == Some(&b':') => (TokenKind::DoubleColon, 2),
            b':' => (TokenKind::Colon, 1),
            b'!' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Neq, 2),
            b'<' if bytes.get(i + 1) == Some(&b'>') => (TokenKind::Neq, 2),
            b'<' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Le, 2),
            b'<' => (TokenKind::Lt, 1),
            b'>' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::Ge, 2),
            b'>' => (TokenKind::Gt, 1),
            _ => {
                return Err(Error::Lex {
                    pos: i,
                    msg: format!(
                        "unexpected character '{}'",
                        src[i..].chars().next().unwrap()
                    ),
                })
            }
        };
        out.push(Token { kind, pos: start });
        i += len;
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

/// Split a script into batches on lines containing only `go`
/// (case-insensitive), mirroring Sybase's isql batch separator.
pub fn split_batches(script: &str) -> Vec<&str> {
    let mut batches = Vec::new();
    let mut start = 0usize;
    let mut offset = 0usize;
    for line in script.split_inclusive('\n') {
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("go") {
            batches.push(&script[start..offset]);
            start = offset + line.len();
        }
        offset += line.len();
    }
    if start <= script.len() {
        batches.push(&script[start..]);
    }
    batches
        .into_iter()
        .filter(|b| !b.trim().is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("select * from t where a = 1"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Star,
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("where".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literals_both_quotes() {
        assert_eq!(
            kinds(r#"'abc' "def""#),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("def".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn doubled_quote_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 3.5"),
            vec![TokenKind::Int(12), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn dotted_names_lex_as_ident_chains() {
        assert_eq!(
            kinds("sentineldb.sharma.stock"),
            vec![
                TokenKind::Ident("sentineldb".into()),
                TokenKind::Dot,
                TokenKind::Ident("sharma".into()),
                TokenKind::Dot,
                TokenKind::Ident("stock".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select /* comment */ 1 -- trailing\n+ 2"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            kinds("/* a /* b */ c */ 1"),
            vec![TokenKind::Int(1), TokenKind::Eof]
        );
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <> b != c <= d >= e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Neq,
                TokenKind::Ident("b".into()),
                TokenKind::Neq,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::Ge,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn snoop_symbols() {
        assert_eq!(
            kinds("e1 ^ e2 | e3 ; [5 sec] a::b x:y"),
            vec![
                TokenKind::Ident("e1".into()),
                TokenKind::Caret,
                TokenKind::Ident("e2".into()),
                TokenKind::Pipe,
                TokenKind::Ident("e3".into()),
                TokenKind::Semi,
                TokenKind::LBracket,
                TokenKind::Int(5),
                TokenKind::Ident("sec".into()),
                TokenKind::RBracket,
                TokenKind::Ident("a".into()),
                TokenKind::DoubleColon,
                TokenKind::Ident("b".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("y".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn is_kw_case_insensitive() {
        let toks = tokenize("SELECT").unwrap();
        assert!(toks[0].kind.is_kw("select"));
        assert!(toks[0].kind.is_kw("SELECT"));
        assert!(!toks[0].kind.is_kw("insert"));
    }

    #[test]
    fn split_batches_on_go() {
        let script = "create table t (a int)\ngo\ninsert t values (1)\nGO\nselect * from t\n";
        let batches = split_batches(script);
        assert_eq!(batches.len(), 3);
        assert!(batches[0].contains("create table"));
        assert!(batches[1].contains("insert"));
        assert!(batches[2].contains("select"));
    }

    #[test]
    fn split_batches_no_go() {
        let batches = split_batches("select 1");
        assert_eq!(batches, vec!["select 1"]);
    }

    #[test]
    fn split_batches_ignores_empty() {
        let batches = split_batches("go\n\ngo\nselect 1\ngo\n");
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn unexpected_character() {
        let err = tokenize("select ~").unwrap_err();
        match err {
            Error::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn at_and_hash_identifiers() {
        assert_eq!(
            kinds("@var #temp"),
            vec![
                TokenKind::Ident("@var".into()),
                TokenKind::Ident("#temp".into()),
                TokenKind::Eof
            ]
        );
    }
}
