//! Access-path planning: route WHERE conjuncts through table indexes.
//!
//! The planner inspects the top-level AND conjuncts of a WHERE clause and,
//! per FROM table, picks at most one **access path**:
//!
//! - `col = lit` / `col IN (lits)` — equality probe (hash or ordered index);
//! - `col BETWEEN lo AND hi`, `col < / <= / > / >= lit` — range probe
//!   (ordered index only);
//! - `col = other_table.col` — **join probe**: once the other table's row
//!   is bound during enumeration, the key is read from it and probed, turning
//!   a nested-loop join into an index nested-loop join.
//!
//! Everything else stays in the residual WHERE, which is always re-evaluated
//! in full against every candidate row — an index access only has to produce
//! a *superset* of the matching rows, so the planner can be (and is)
//! aggressively conservative: any doubt about how a column binds, or how a
//! literal normalizes, simply disqualifies the conjunct.
//!
//! Column binding mirrors `RowEnv::lookup` exactly: a conjunct is only used
//! when its column resolves to **exactly one** FROM table. Zero matches means
//! a correlated outer reference, two means an ambiguity error — both are left
//! to the residual evaluation so visible semantics (including errors on
//! matched rows) are unchanged.

use std::ops::Bound;

use crate::ast::{BinaryOp, Expr};
use crate::eval::SessionCtx;
use crate::index::{key_of, range_key_of, IndexKey, IndexSet};
use crate::table::Schema;
use crate::value::Value;

/// What the planner needs to know about one FROM slot.
pub(crate) struct SlotMeta<'a> {
    pub alias: Option<&'a str>,
    pub table_name: &'a str,
    pub schema: &'a Schema,
}

impl SlotMeta<'_> {
    /// Mirror of `Frame::matches_qualifier`.
    fn matches_qualifier(&self, qualifier: &str, session: &SessionCtx) -> bool {
        if let Some(alias) = self.alias {
            if alias.eq_ignore_ascii_case(qualifier) {
                return true;
            }
        }
        if self.table_name.eq_ignore_ascii_case(qualifier) {
            return true;
        }
        let tn = self.table_name.to_ascii_lowercase();
        let q = qualifier.to_ascii_lowercase();
        if tn.ends_with(&format!(".{q}")) {
            return true;
        }
        let (db, user) = session.prefix();
        tn == format!(
            "{}.{}.{}",
            db.to_ascii_lowercase(),
            user.to_ascii_lowercase(),
            q
        )
    }
}

/// A column reference resolved to exactly one slot, or disqualified.
fn bind_column(
    slots: &[SlotMeta<'_>],
    qualifier: Option<&str>,
    name: &str,
    session: &SessionCtx,
) -> Option<(usize, usize)> {
    let mut found: Option<(usize, usize)> = None;
    for (slot, meta) in slots.iter().enumerate() {
        if let Some(q) = qualifier {
            if !meta.matches_qualifier(q, session) {
                continue;
            }
        }
        if let Some(col) = meta.schema.index_of(name) {
            if found.is_some() {
                return None; // ambiguous — leave to residual eval
            }
            found = Some((slot, col));
        }
    }
    found
}

/// A non-column probe operand normalized to an index key at plan time.
/// `None` means the conjunct is unusable (NULL/NaN literal, unbound param,
/// or not a literal/param at all).
fn const_key(expr: &Expr, params: &[Value]) -> Option<IndexKey> {
    const_value(expr, params).as_ref().and_then(key_of)
}

fn const_value<'a>(expr: &'a Expr, params: &'a [Value]) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Param(i) => params.get(*i).cloned(),
        _ => None,
    }
}

/// One sargable conjunct, normalized.
enum Sarg {
    /// `slot.col = key`
    EqConst {
        slot: usize,
        col: usize,
        key: IndexKey,
    },
    /// `slot.col IN (keys)` — NULL items dropped (they can never match).
    EqSet {
        slot: usize,
        col: usize,
        keys: Vec<IndexKey>,
    },
    /// `slot.col = dep_slot.dep_col`
    EqJoin {
        slot: usize,
        col: usize,
        dep_slot: usize,
        dep_col: usize,
    },
    /// One- or two-sided range on `slot.col`. `Unbounded` marks a side that
    /// is absent or widened away (saturating whole-float literal).
    Range {
        slot: usize,
        col: usize,
        lo: Bound<IndexKey>,
        hi: Bound<IndexKey>,
    },
}

/// Split the top-level AND tree into conjuncts.
fn conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            conjuncts(left, out);
            conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// A range bound from a comparison literal: `Ok(None)` means "no constraint
/// on this side" (saturated literal), `Err(())` means conjunct unusable.
fn range_bound(expr: &Expr, params: &[Value], inclusive: bool) -> Result<Bound<IndexKey>, ()> {
    let v = const_value(expr, params).ok_or(())?;
    match range_key_of(&v) {
        None => Err(()),
        Some(None) => Ok(Bound::Unbounded),
        Some(Some(k)) => Ok(if inclusive {
            Bound::Included(k)
        } else {
            Bound::Excluded(k)
        }),
    }
}

fn classify(
    expr: &Expr,
    slots: &[SlotMeta<'_>],
    session: &SessionCtx,
    params: &[Value],
) -> Option<Sarg> {
    match expr {
        Expr::Binary { op, left, right } => {
            let (col_side, other, op) = match (&**left, op) {
                (Expr::Column { .. }, _) => (&**left, &**right, *op),
                _ => match &**right {
                    // Flip `lit <op> col` into `col <flipped-op> lit`.
                    Expr::Column { .. } => {
                        let flipped = match op {
                            BinaryOp::Eq => BinaryOp::Eq,
                            BinaryOp::Lt => BinaryOp::Gt,
                            BinaryOp::Le => BinaryOp::Ge,
                            BinaryOp::Gt => BinaryOp::Lt,
                            BinaryOp::Ge => BinaryOp::Le,
                            _ => return None,
                        };
                        (&**right, &**left, flipped)
                    }
                    _ => return None,
                },
            };
            let (qualifier, name) = match col_side {
                Expr::Column { qualifier, name } => (qualifier.as_deref(), name.as_str()),
                _ => unreachable!(),
            };
            let (slot, col) = bind_column(slots, qualifier, name, session)?;
            match op {
                BinaryOp::Eq => {
                    if let Expr::Column {
                        qualifier: dq,
                        name: dn,
                    } = other
                    {
                        let (dep_slot, dep_col) = bind_column(slots, dq.as_deref(), dn, session)?;
                        if dep_slot == slot {
                            return None; // same-table col = col: not a probe
                        }
                        return Some(Sarg::EqJoin {
                            slot,
                            col,
                            dep_slot,
                            dep_col,
                        });
                    }
                    let key = const_key(other, params)?;
                    Some(Sarg::EqConst { slot, col, key })
                }
                BinaryOp::Lt | BinaryOp::Le => {
                    let hi = range_bound(other, params, op == BinaryOp::Le).ok()?;
                    Some(Sarg::Range {
                        slot,
                        col,
                        lo: Bound::Unbounded,
                        hi,
                    })
                }
                BinaryOp::Gt | BinaryOp::Ge => {
                    let lo = range_bound(other, params, op == BinaryOp::Ge).ok()?;
                    Some(Sarg::Range {
                        slot,
                        col,
                        lo,
                        hi: Bound::Unbounded,
                    })
                }
                _ => None,
            }
        }
        Expr::InList {
            operand,
            list,
            negated: false,
        } => {
            let (qualifier, name) = match &**operand {
                Expr::Column { qualifier, name } => (qualifier.as_deref(), name.as_str()),
                _ => return None,
            };
            let (slot, col) = bind_column(slots, qualifier, name, session)?;
            let mut keys = Vec::with_capacity(list.len());
            for item in list {
                match const_value(item, params) {
                    // A NULL item can never equal anything; drop it.
                    Some(v) => {
                        if let Some(k) = key_of(&v) {
                            keys.push(k);
                        }
                    }
                    None => return None, // non-literal item: unusable
                }
            }
            Some(Sarg::EqSet { slot, col, keys })
        }
        Expr::Between {
            operand,
            low,
            high,
            negated: false,
        } => {
            let (qualifier, name) = match &**operand {
                Expr::Column { qualifier, name } => (qualifier.as_deref(), name.as_str()),
                _ => return None,
            };
            let (slot, col) = bind_column(slots, qualifier, name, session)?;
            let lo = range_bound(low, params, true).ok()?;
            let hi = range_bound(high, params, true).ok()?;
            Some(Sarg::Range { slot, col, lo, hi })
        }
        _ => None,
    }
}

/// The chosen access for one FROM slot.
pub(crate) enum Access {
    /// Enumerate every row position.
    Full,
    /// Probe index on `col` with the fixed key set.
    Keys { col: usize, keys: Vec<IndexKey> },
    /// Probe index on `col` with the key read from an already-bound slot.
    Join {
        col: usize,
        dep_slot: usize,
        dep_col: usize,
    },
    /// Range-scan the ordered index on `col`.
    Range {
        col: usize,
        lo: Bound<IndexKey>,
        hi: Bound<IndexKey>,
    },
}

/// An accumulated range constraint on one column: `(col, lo, hi)`.
type ColRange = (usize, Bound<IndexKey>, Bound<IndexKey>);

/// The full access plan: one `(slot, access)` per FROM table, in the order
/// the nested-loop enumeration should bind them.
pub(crate) struct AccessPlan {
    pub levels: Vec<(usize, Access)>,
    /// True when at least one slot is served by an index.
    pub any_index: bool,
}

/// Resolve a static (`Keys`/`Range`) access into ascending candidate
/// positions via the index set. `None` for `Full`/`Join` accesses, or if the
/// index the planner saw is unexpectedly gone — callers fall back to a scan.
pub(crate) fn static_candidates(access: &Access, set: &IndexSet) -> Option<Vec<usize>> {
    match access {
        Access::Keys { col, keys } => {
            let ix = set.best_for(*col, false)?;
            let mut out: Vec<usize> = Vec::new();
            for k in keys {
                out.extend_from_slice(ix.probe_eq(k));
            }
            out.sort_unstable();
            out.dedup();
            Some(out)
        }
        Access::Range { col, lo, hi } => {
            let ix = set.best_for(*col, true)?;
            let mut out = Vec::new();
            if !ix.probe_range(lo.as_ref(), hi.as_ref(), &mut out) {
                return None;
            }
            out.sort_unstable();
            Some(out)
        }
        Access::Full | Access::Join { .. } => None,
    }
}

/// Keep the tightest lower bound of two.
fn tighten_lo(cur: Bound<IndexKey>, new: Bound<IndexKey>) -> Bound<IndexKey> {
    use Bound::*;
    match (&cur, &new) {
        (Unbounded, _) => new,
        (_, Unbounded) => cur,
        (Included(a) | Excluded(a), Included(b) | Excluded(b)) => match a.cmp(b) {
            std::cmp::Ordering::Less => new,
            std::cmp::Ordering::Greater => cur,
            std::cmp::Ordering::Equal => {
                if matches!(cur, Excluded(_)) {
                    cur
                } else {
                    new
                }
            }
        },
    }
}

fn tighten_hi(cur: Bound<IndexKey>, new: Bound<IndexKey>) -> Bound<IndexKey> {
    use Bound::*;
    match (&cur, &new) {
        (Unbounded, _) => new,
        (_, Unbounded) => cur,
        (Included(a) | Excluded(a), Included(b) | Excluded(b)) => match a.cmp(b) {
            std::cmp::Ordering::Greater => new,
            std::cmp::Ordering::Less => cur,
            std::cmp::Ordering::Equal => {
                if matches!(cur, Excluded(_)) {
                    cur
                } else {
                    new
                }
            }
        },
    }
}

/// Plan table accesses for a SELECT/UPDATE/DELETE. `sets[slot]` is the
/// (clean) index set of each FROM table, `sizes[slot]` its row count.
pub(crate) fn plan(
    selection: Option<&Expr>,
    slots: &[SlotMeta<'_>],
    sets: &[&IndexSet],
    sizes: &[usize],
    session: &SessionCtx,
    params: &[Value],
) -> AccessPlan {
    let n = slots.len();
    let mut eq_const: Vec<Option<(usize, Vec<IndexKey>, bool)>> = (0..n).map(|_| None).collect();
    let mut ranges: Vec<Option<ColRange>> = (0..n).map(|_| None).collect();
    let mut joins: Vec<Vec<(usize, usize, usize)>> = (0..n).map(|_| Vec::new()).collect();

    if let Some(cond) = selection {
        let mut parts = Vec::new();
        conjuncts(cond, &mut parts);
        for part in parts {
            match classify(part, slots, session, params) {
                Some(Sarg::EqConst { slot, col, key }) => {
                    if sets[slot].best_for(col, false).is_none() {
                        continue;
                    }
                    let unique = sets[slot]
                        .best_for(col, false)
                        .is_some_and(|ix| ix.def.unique);
                    let replace = match &eq_const[slot] {
                        None => true,
                        // Prefer a unique-indexed equality, then fewer keys.
                        Some((_, keys, was_unique)) => !was_unique && (unique || keys.len() > 1),
                    };
                    if replace {
                        eq_const[slot] = Some((col, vec![key], unique));
                    }
                }
                Some(Sarg::EqSet { slot, col, keys }) => {
                    if sets[slot].best_for(col, false).is_none() {
                        continue;
                    }
                    if eq_const[slot].is_none() {
                        eq_const[slot] = Some((col, keys, false));
                    }
                }
                Some(Sarg::EqJoin {
                    slot,
                    col,
                    dep_slot,
                    dep_col,
                }) => {
                    if sets[slot].best_for(col, false).is_some() {
                        joins[slot].push((col, dep_slot, dep_col));
                    }
                    // The symmetric direction is usable too.
                    if sets[dep_slot].best_for(dep_col, false).is_some() {
                        joins[dep_slot].push((dep_col, slot, col));
                    }
                }
                Some(Sarg::Range { slot, col, lo, hi }) => {
                    if sets[slot].best_for(col, true).is_none() {
                        continue;
                    }
                    match ranges[slot].take() {
                        Some((c, cur_lo, cur_hi)) if c == col => {
                            ranges[slot] =
                                Some((c, tighten_lo(cur_lo, lo), tighten_hi(cur_hi, hi)));
                        }
                        Some(other) => ranges[slot] = Some(other),
                        None => ranges[slot] = Some((col, lo, hi)),
                    }
                }
                None => {}
            }
        }
    }

    // Greedy enumeration order: tables that can be probed statically first,
    // then any table whose join probe is satisfied by an already-bound one,
    // then (to seed join chains cheaply) the smallest remaining table.
    let mut bound = vec![false; n];
    let mut levels: Vec<(usize, Access)> = Vec::with_capacity(n);
    let mut any_index = false;
    while levels.len() < n {
        let next_static =
            (0..n).find(|&s| !bound[s] && (eq_const[s].is_some() || ranges[s].is_some()));
        let chosen = if let Some(s) = next_static {
            let access = if let Some((col, keys, _)) = eq_const[s].take() {
                Access::Keys { col, keys }
            } else {
                let (col, lo, hi) = ranges[s].take().expect("checked");
                Access::Range { col, lo, hi }
            };
            any_index = true;
            (s, access)
        } else if let Some((s, &(col, dep_slot, dep_col))) =
            (0..n).filter(|&s| !bound[s]).find_map(|s| {
                joins[s]
                    .iter()
                    .find(|&&(_, dep, _)| bound[dep])
                    .map(|j| (s, j))
            })
        {
            any_index = true;
            (
                s,
                Access::Join {
                    col,
                    dep_slot,
                    dep_col,
                },
            )
        } else {
            let s = (0..n)
                .filter(|&s| !bound[s])
                .min_by_key(|&s| sizes[s])
                .expect("levels.len() < n");
            (s, Access::Full)
        };
        bound[chosen.0] = true;
        levels.push(chosen);
    }
    AccessPlan { levels, any_index }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexDef, IndexKind};
    use crate::table::Column;
    use crate::value::DataType;

    fn schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|n| Column::new(n, DataType::Int, true))
                .collect(),
        )
    }

    fn indexed(schema: &Schema, col_name: &str) -> IndexSet {
        let mut set = IndexSet::default();
        set.create(
            IndexDef {
                name: format!("ix_{col_name}"),
                column: col_name.into(),
                unique: false,
                kind: IndexKind::Ordered,
            },
            schema,
            &[],
        )
        .unwrap();
        set
    }

    fn session() -> SessionCtx {
        SessionCtx::new("db", "u")
    }

    fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    fn lit(i: i64) -> Expr {
        Expr::Literal(Value::Int(i))
    }

    fn eq(l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn equality_on_indexed_column_routes() {
        let s = schema(&["id", "v"]);
        let set = indexed(&s, "id");
        let slots = [SlotMeta {
            alias: None,
            table_name: "t",
            schema: &s,
        }];
        let cond = eq(col("id"), lit(5));
        let plan = plan(Some(&cond), &slots, &[&set], &[10], &session(), &[]);
        assert!(plan.any_index);
        assert!(matches!(plan.levels[0].1, Access::Keys { col: 0, .. }));
    }

    #[test]
    fn unindexed_or_null_literal_falls_back() {
        let s = schema(&["id", "v"]);
        let set = IndexSet::default();
        let slots = [SlotMeta {
            alias: None,
            table_name: "t",
            schema: &s,
        }];
        let cond = eq(col("id"), lit(5));
        let p = plan(Some(&cond), &slots, &[&set], &[10], &session(), &[]);
        assert!(!p.any_index);
        let set = indexed(&s, "id");
        let cond = eq(col("id"), Expr::Literal(Value::Null));
        let p = plan(Some(&cond), &slots, &[&set], &[10], &session(), &[]);
        assert!(!p.any_index, "col = NULL matches nothing; stays residual");
    }

    #[test]
    fn join_probe_binds_small_table_first() {
        let s0 = schema(&["vno", "payload"]);
        let s1 = schema(&["vno"]);
        let set0 = indexed(&s0, "vno");
        let set1 = IndexSet::default();
        let slots = [
            SlotMeta {
                alias: None,
                table_name: "shadow",
                schema: &s0,
            },
            SlotMeta {
                alias: None,
                table_name: "ver",
                schema: &s1,
            },
        ];
        let cond = eq(
            Expr::Column {
                qualifier: Some("shadow".into()),
                name: "vno".into(),
            },
            Expr::Column {
                qualifier: Some("ver".into()),
                name: "vno".into(),
            },
        );
        let p = plan(
            Some(&cond),
            &slots,
            &[&set0, &set1],
            &[100_000, 1],
            &session(),
            &[],
        );
        assert!(p.any_index);
        assert_eq!(p.levels[0].0, 1, "tiny ver table binds first");
        assert!(matches!(p.levels[0].1, Access::Full));
        assert_eq!(p.levels[1].0, 0);
        assert!(matches!(
            p.levels[1].1,
            Access::Join {
                col: 0,
                dep_slot: 1,
                dep_col: 0
            }
        ));
    }

    #[test]
    fn ambiguous_column_disqualifies() {
        let s = schema(&["id"]);
        let set = indexed(&s, "id");
        let slots = [
            SlotMeta {
                alias: None,
                table_name: "a",
                schema: &s,
            },
            SlotMeta {
                alias: None,
                table_name: "b",
                schema: &s,
            },
        ];
        let cond = eq(col("id"), lit(1));
        let p = plan(Some(&cond), &slots, &[&set, &set], &[5, 5], &session(), &[]);
        assert!(!p.any_index);
    }

    #[test]
    fn between_merges_with_comparisons() {
        let s = schema(&["id"]);
        let set = indexed(&s, "id");
        let slots = [SlotMeta {
            alias: None,
            table_name: "t",
            schema: &s,
        }];
        let cond = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Between {
                operand: Box::new(col("id")),
                low: Box::new(lit(1)),
                high: Box::new(lit(100)),
                negated: false,
            }),
            right: Box::new(Expr::Binary {
                op: BinaryOp::Lt,
                left: Box::new(col("id")),
                right: Box::new(lit(50)),
            }),
        };
        let p = plan(Some(&cond), &slots, &[&set], &[10], &session(), &[]);
        match &p.levels[0].1 {
            Access::Range { col: 0, lo, hi } => {
                assert_eq!(*lo, Bound::Included(IndexKey::Int(1)));
                assert_eq!(*hi, Bound::Excluded(IndexKey::Int(50)));
            }
            other => panic!(
                "expected range access, got {:?}",
                std::mem::discriminant(other)
            ),
        }
    }
}
