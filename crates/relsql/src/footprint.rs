//! Batch footprint analysis: which tables will a batch touch?
//!
//! The server's per-table lock scheduler runs each batch under either an
//! exclusive schedule lock (DDL, transactions, anything unresolvable) or a
//! canonical-order group of per-table locks. The footprint walk covers every
//! statement, every expression subquery, procedure bodies reachable through
//! `EXECUTE`, and — crucially — the bodies of native triggers the batch's
//! DML will fire, so the shadow (`_inserted`/`_deleted`) and version
//! (`_ver`) tables a generated trigger touches are part of the footprint
//! and same-event batches stay strictly serialized (vNo sequencing and
//! Sybase trigger-order semantics preserved).
//!
//! The analysis is deliberately conservative: when in doubt (unknown table,
//! unknown procedure, recursion deeper than the walker tracks), it answers
//! [`Footprint::Exclusive`] and the batch runs alone — correctness never
//! depends on the analysis being sharp, only on it never *missing* a table.

use std::collections::{BTreeSet, HashSet};

use crate::ast::{Expr, InsertSource, SelectStmt, Stmt, TriggerOp};
use crate::catalog::Database;
use crate::eval::SessionCtx;

/// What a batch will touch, as decided by static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// The batch must run alone (DDL, transaction control, unresolvable
    /// names, or analysis gave up).
    Exclusive,
    /// The batch touches exactly these catalog table keys. `BTreeSet` gives
    /// the canonical (sorted) acquisition order that makes lock grouping
    /// deadlock-free.
    Tables(BTreeSet<String>),
}

/// Maximum trigger/procedure recursion the walker follows before giving up
/// and answering Exclusive. Matches the engine's default nesting limit.
const MAX_WALK_DEPTH: usize = 16;

/// Analyze a parsed batch against the current catalog.
pub fn analyze_batch(db: &Database, stmts: &[Stmt], session: &SessionCtx) -> Footprint {
    let mut w = Walker {
        db,
        session,
        keys: BTreeSet::new(),
        exclusive: false,
        seen_triggers: HashSet::new(),
        seen_procs: HashSet::new(),
    };
    for s in stmts {
        w.stmt(s, 0);
        if w.exclusive {
            return Footprint::Exclusive;
        }
    }
    Footprint::Tables(w.keys)
}

struct Walker<'a> {
    db: &'a Database,
    session: &'a SessionCtx,
    keys: BTreeSet<String>,
    exclusive: bool,
    seen_triggers: HashSet<(String, TriggerOp)>,
    seen_procs: HashSet<String>,
}

impl Walker<'_> {
    fn give_up(&mut self) {
        self.exclusive = true;
    }

    /// Resolve and record a table name; pseudo-tables resolve to nothing
    /// (they only exist inside a trigger scope and need no lock of their
    /// own — the triggering table is already in the footprint).
    fn table(&mut self, name: &str, depth: usize) -> Option<String> {
        if name.eq_ignore_ascii_case("inserted") || name.eq_ignore_ascii_case("deleted") {
            return None;
        }
        if depth > MAX_WALK_DEPTH {
            self.give_up();
            return None;
        }
        match self.db.resolve_table_key(name, Some(self.session.prefix())) {
            Some(key) => {
                self.keys.insert(key.clone());
                Some(key)
            }
            None => {
                self.give_up();
                None
            }
        }
    }

    /// Record a DML target and recurse into the native trigger it fires.
    fn dml(&mut self, name: &str, op: TriggerOp, depth: usize) {
        let Some(key) = self.table(name, depth) else {
            return;
        };
        if self.exclusive {
            return;
        }
        if let Some(def) = self.db.trigger_for(&key, op) {
            if !self.seen_triggers.insert((key, op)) {
                return;
            }
            if depth + 1 > MAX_WALK_DEPTH {
                self.give_up();
                return;
            }
            // Clone-free walk over the stored body.
            let body: Vec<Stmt> = def.body.clone();
            for s in &body {
                self.stmt(s, depth + 1);
                if self.exclusive {
                    return;
                }
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt, depth: usize) {
        if self.exclusive {
            return;
        }
        if depth > MAX_WALK_DEPTH {
            self.give_up();
            return;
        }
        match stmt {
            // DDL and transaction control always schedule exclusively: they
            // mutate the catalog (or the whole-database snapshot) rather
            // than any one table's rows.
            Stmt::CreateTable { .. }
            | Stmt::DropTable { .. }
            | Stmt::AlterTableAdd { .. }
            | Stmt::CreateTrigger { .. }
            | Stmt::DropTrigger { .. }
            | Stmt::CreateProcedure { .. }
            | Stmt::DropProcedure { .. }
            | Stmt::CreateIndex { .. }
            | Stmt::DropIndex { .. }
            | Stmt::Truncate { .. }
            | Stmt::BeginTran
            | Stmt::Commit
            | Stmt::Rollback => self.give_up(),
            Stmt::Insert {
                table,
                columns: _,
                source,
            } => {
                match source {
                    InsertSource::Values(rows) => {
                        for row in rows {
                            for e in row {
                                self.expr(e, depth);
                            }
                        }
                    }
                    InsertSource::Select(sel) => self.select(sel, depth),
                }
                self.dml(table, TriggerOp::Insert, depth);
            }
            Stmt::Update {
                table,
                assignments,
                selection,
            } => {
                for (_, e) in assignments {
                    self.expr(e, depth);
                }
                if let Some(e) = selection {
                    self.expr(e, depth);
                }
                self.dml(table, TriggerOp::Update, depth);
            }
            Stmt::Delete { table, selection } => {
                if let Some(e) = selection {
                    self.expr(e, depth);
                }
                self.dml(table, TriggerOp::Delete, depth);
            }
            Stmt::Select(sel) => {
                if sel.into.is_some() {
                    // SELECT INTO creates a table: catalog mutation.
                    self.give_up();
                } else {
                    self.select(sel, depth);
                }
            }
            Stmt::Execute { name } => {
                let Some(def) = self.db.procedure(name, Some(self.session.prefix())) else {
                    self.give_up();
                    return;
                };
                let key = def.name.to_ascii_lowercase();
                if !self.seen_procs.insert(key) {
                    return;
                }
                let body: Vec<Stmt> = def.body.clone();
                for s in &body {
                    self.stmt(s, depth + 1);
                    if self.exclusive {
                        return;
                    }
                }
            }
            Stmt::Print(e) => self.expr(e, depth),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond, depth);
                self.stmt(then_branch, depth);
                if let Some(e) = else_branch {
                    self.stmt(e, depth);
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond, depth);
                self.stmt(body, depth);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, depth);
                    if self.exclusive {
                        return;
                    }
                }
            }
        }
    }

    fn select(&mut self, sel: &SelectStmt, depth: usize) {
        for tref in &sel.from {
            self.table(&tref.name, depth);
        }
        for item in &sel.projection {
            if let crate::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr, depth);
            }
        }
        if let Some(e) = &sel.selection {
            self.expr(e, depth);
        }
        for e in &sel.group_by {
            self.expr(e, depth);
        }
        if let Some(e) = &sel.having {
            self.expr(e, depth);
        }
        for o in &sel.order_by {
            self.expr(&o.expr, depth);
        }
    }

    fn expr(&mut self, expr: &Expr, depth: usize) {
        if self.exclusive {
            return;
        }
        match expr {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
            Expr::Unary { operand, .. } => self.expr(operand, depth),
            Expr::Binary { left, right, .. } => {
                self.expr(left, depth);
                self.expr(right, depth);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    self.expr(a, depth);
                }
            }
            Expr::IsNull { operand, .. } => self.expr(operand, depth),
            Expr::InList { operand, list, .. } => {
                self.expr(operand, depth);
                for e in list {
                    self.expr(e, depth);
                }
            }
            Expr::Between {
                operand, low, high, ..
            } => {
                self.expr(operand, depth);
                self.expr(low, depth);
                self.expr(high, depth);
            }
            Expr::Like {
                operand, pattern, ..
            } => {
                self.expr(operand, depth);
                self.expr(pattern, depth);
            }
            Expr::Exists(sub) | Expr::Subquery(sub) => self.select(sub, depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::parser::parse_script;

    fn setup() -> (Engine, SessionCtx) {
        let e = Engine::new();
        let s = SessionCtx::new("db", "u");
        for sql in [
            "create table t1 (a int)",
            "create table t2 (a int)",
            "create table audit (n int)",
            "create trigger tr1 on t1 for insert as insert audit values (1)",
            "create procedure p1 as insert t2 values (1)",
        ] {
            e.execute(sql, &s).unwrap();
        }
        (e, s)
    }

    fn fp(e: &Engine, s: &SessionCtx, sql: &str) -> Footprint {
        let stmts = parse_script(sql).unwrap();
        let db = e.database();
        analyze_batch(&db, &stmts, s)
    }

    fn tables(f: Footprint) -> Vec<String> {
        match f {
            Footprint::Tables(t) => t.into_iter().collect(),
            Footprint::Exclusive => panic!("expected table footprint"),
        }
    }

    #[test]
    fn plain_dml_lists_its_table() {
        let (e, s) = setup();
        assert_eq!(tables(fp(&e, &s, "insert t2 values (1)")), vec!["t2"]);
        assert_eq!(
            tables(fp(&e, &s, "select a from t2 where a > 1")),
            vec!["t2"]
        );
    }

    #[test]
    fn dml_footprint_includes_trigger_body_tables() {
        let (e, s) = setup();
        // Inserting into t1 fires tr1, which writes audit.
        assert_eq!(
            tables(fp(&e, &s, "insert t1 values (1)")),
            vec!["audit", "t1"]
        );
    }

    #[test]
    fn execute_recurses_into_procedure() {
        let (e, s) = setup();
        assert_eq!(tables(fp(&e, &s, "execute p1")), vec!["t2"]);
    }

    #[test]
    fn subqueries_are_walked() {
        let (e, s) = setup();
        assert_eq!(
            tables(fp(
                &e,
                &s,
                "select a from t1 where a = (select max(a) from t2)"
            )),
            vec!["t1", "t2"]
        );
    }

    #[test]
    fn ddl_tx_and_unknowns_are_exclusive() {
        let (e, s) = setup();
        for sql in [
            "create table x (a int)",
            "drop table t1",
            "alter table t1 add b int null",
            "truncate table t1",
            "begin tran",
            "commit",
            "rollback",
            "select * into x from t1",
            "insert nosuch values (1)",
            "execute nosuchproc",
            "create trigger trx on t1 for delete as print 'x'",
            "create index i1 on t1 (a)",
            "create unique hash index i2 on t2 (a)",
            "drop index i1",
        ] {
            assert_eq!(fp(&e, &s, sql), Footprint::Exclusive, "{sql}");
        }
    }

    #[test]
    fn self_recursive_trigger_terminates() {
        let (e, s) = setup();
        e.execute("create table r (a int)", &s).unwrap();
        e.execute(
            "create trigger trr on r for insert as insert r values (1)",
            &s,
        )
        .unwrap();
        assert_eq!(tables(fp(&e, &s, "insert r values (0)")), vec!["r"]);
    }
}
