//! Batch classification: what will a batch read, what will it write, and
//! which scheduling lane does that put it in?
//!
//! The analysis produces a typed [`BatchPlan`] from two conceptual passes
//! over the parsed statements (the lix `sql2` shape):
//!
//! - [`derive_requirements`] — the **read set**: every table a SELECT, a
//!   subquery, a WHERE clause, or a reachable procedure/trigger body scans.
//! - [`derive_effects`] — the **write set**: every DML target, including
//!   the targets inside the bodies of native triggers the batch's DML will
//!   fire. This is why the generated shadow (`_inserted`/`_deleted`) and
//!   version (`_ver`) tables stay in the write set: the native trigger
//!   writes them on every evented DML, so same-event batches must stay
//!   strictly serialized (vNo sequencing and Sybase trigger-order
//!   semantics preserved).
//!
//! From the two sets falls out the [`BatchClass`]:
//!
//! - [`BatchClass::ReadPure`] — no effects, no `syb_sendmsg`, every name
//!   resolved. Eligible for the server's lock-free MVCC snapshot lane.
//! - [`BatchClass::Effectful`] — writes rows or sends datagrams; scheduled
//!   under per-table lock groups over `requirements ∪ effects`.
//! - [`BatchClass::Barrier`] — DDL, transaction control, `SELECT INTO`,
//!   unresolvable names, or the walk gave up; runs alone under the
//!   exclusive schedule lock.
//!
//! The walk covers every statement, every expression subquery, procedure
//! bodies reachable through `EXECUTE`, and trigger bodies reachable from
//! DML targets. It is deliberately conservative: when in doubt (unknown
//! table, unknown procedure, recursion deeper than the walker tracks) it
//! answers Barrier — correctness never depends on the analysis being
//! sharp, only on it never *missing* a table.

use std::collections::{BTreeSet, HashSet};

use crate::ast::{Expr, InsertSource, SelectStmt, Stmt, TriggerOp};
use crate::catalog::Database;
use crate::eval::SessionCtx;

/// The tables a batch reads (catalog keys, canonically sorted).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadSet {
    pub tables: BTreeSet<String>,
}

/// The tables a batch writes (catalog keys, canonically sorted), including
/// every table written by native trigger bodies its DML fires.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteSet {
    pub tables: BTreeSet<String>,
}

/// Which scheduling lane a batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClass {
    /// No effects at all: eligible for lock-free MVCC snapshot execution.
    ReadPure,
    /// Writes rows and/or sends datagrams: per-table lock scheduling over
    /// `requirements ∪ effects`.
    Effectful,
    /// DDL, transaction control, or unresolvable: exclusive schedule lock.
    Barrier,
}

/// The typed result of batch classification — what the server's scheduler
/// consumes (it replaced the old untyped `Footprint` enum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Tables the batch reads.
    pub requirements: ReadSet,
    /// Tables the batch writes (trigger bodies included).
    pub effects: WriteSet,
    /// The scheduling lane the two sets imply.
    pub class: BatchClass,
    /// Catalog keys (`name_key` of the stored name) of every procedure the
    /// batch `EXECUTE`s, transitively. Snapshot execution pins these
    /// definitions alongside the read-set tables. Best-effort for Barrier
    /// plans.
    pub procedures: BTreeSet<String>,
}

impl BatchPlan {
    /// Classify a parsed batch against the current catalog. One walk
    /// computes both passes ([`derive_requirements`] and
    /// [`derive_effects`] are projections of the same analysis).
    pub fn derive(db: &Database, stmts: &[Stmt], session: &SessionCtx) -> BatchPlan {
        let w = Analysis::run(db, stmts, session);
        let class = if w.barrier {
            BatchClass::Barrier
        } else if !w.writes.is_empty() || w.sends_messages {
            BatchClass::Effectful
        } else {
            BatchClass::ReadPure
        };
        BatchPlan {
            requirements: ReadSet { tables: w.reads },
            effects: WriteSet { tables: w.writes },
            class,
            procedures: w.procedures,
        }
    }

    /// The canonical per-table lock acquisition set for the Effectful
    /// lane: everything the batch reads or writes, sorted (the sorted
    /// order is what makes lock grouping deadlock-free).
    pub fn lock_tables(&self) -> BTreeSet<String> {
        self.requirements
            .tables
            .union(&self.effects.tables)
            .cloned()
            .collect()
    }
}

/// The read-set pass: which tables must be readable for this batch?
/// `None` means the batch is a [`BatchClass::Barrier`] (analysis gave up).
pub fn derive_requirements(db: &Database, stmts: &[Stmt], session: &SessionCtx) -> Option<ReadSet> {
    let w = Analysis::run(db, stmts, session);
    (!w.barrier).then_some(ReadSet { tables: w.reads })
}

/// The write-set pass: which tables will this batch (and the native
/// triggers its DML fires) mutate? `None` means the batch is a
/// [`BatchClass::Barrier`] (analysis gave up).
pub fn derive_effects(db: &Database, stmts: &[Stmt], session: &SessionCtx) -> Option<WriteSet> {
    let w = Analysis::run(db, stmts, session);
    (!w.barrier).then_some(WriteSet { tables: w.writes })
}

/// Maximum trigger/procedure recursion the walker follows before giving up
/// and answering Barrier. Matches the engine's default nesting limit.
const MAX_WALK_DEPTH: usize = 16;

struct Analysis<'a> {
    db: &'a Database,
    session: &'a SessionCtx,
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
    procedures: BTreeSet<String>,
    sends_messages: bool,
    barrier: bool,
    seen_triggers: HashSet<(String, TriggerOp)>,
    seen_procs: HashSet<String>,
}

impl<'a> Analysis<'a> {
    fn run(db: &'a Database, stmts: &[Stmt], session: &'a SessionCtx) -> Self {
        let mut w = Analysis {
            db,
            session,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            procedures: BTreeSet::new(),
            sends_messages: false,
            barrier: false,
            seen_triggers: HashSet::new(),
            seen_procs: HashSet::new(),
        };
        for s in stmts {
            w.stmt(s, 0);
            if w.barrier {
                break;
            }
        }
        w
    }

    fn give_up(&mut self) {
        self.barrier = true;
    }

    /// Resolve a table name to its catalog key; pseudo-tables resolve to
    /// nothing (they only exist inside a trigger scope and need no lock of
    /// their own — the triggering table is already in the footprint).
    fn resolve(&mut self, name: &str, depth: usize) -> Option<String> {
        if name.eq_ignore_ascii_case("inserted") || name.eq_ignore_ascii_case("deleted") {
            return None;
        }
        if depth > MAX_WALK_DEPTH {
            self.give_up();
            return None;
        }
        match self.db.resolve_table_key(name, Some(self.session.prefix())) {
            Some(key) => Some(key),
            None => {
                self.give_up();
                None
            }
        }
    }

    /// Record a table the batch reads.
    fn read(&mut self, name: &str, depth: usize) {
        if let Some(key) = self.resolve(name, depth) {
            self.reads.insert(key);
        }
    }

    /// Record a DML target and recurse into the native trigger it fires.
    fn dml(&mut self, name: &str, op: TriggerOp, depth: usize) {
        let Some(key) = self.resolve(name, depth) else {
            return;
        };
        self.writes.insert(key.clone());
        if self.barrier {
            return;
        }
        if let Some(def) = self.db.trigger_for(&key, op) {
            if !self.seen_triggers.insert((key, op)) {
                return;
            }
            if depth + 1 > MAX_WALK_DEPTH {
                self.give_up();
                return;
            }
            // Clone-free walk over the stored body.
            let body: Vec<Stmt> = def.body.clone();
            for s in &body {
                self.stmt(s, depth + 1);
                if self.barrier {
                    return;
                }
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt, depth: usize) {
        if self.barrier {
            return;
        }
        if depth > MAX_WALK_DEPTH {
            self.give_up();
            return;
        }
        match stmt {
            // DDL and transaction control always schedule exclusively: they
            // mutate the catalog (or the whole-database snapshot) rather
            // than any one table's rows.
            Stmt::CreateTable { .. }
            | Stmt::DropTable { .. }
            | Stmt::AlterTableAdd { .. }
            | Stmt::CreateTrigger { .. }
            | Stmt::DropTrigger { .. }
            | Stmt::CreateProcedure { .. }
            | Stmt::DropProcedure { .. }
            | Stmt::CreateIndex { .. }
            | Stmt::DropIndex { .. }
            | Stmt::Truncate { .. }
            | Stmt::BeginTran
            | Stmt::Commit
            | Stmt::Rollback => self.give_up(),
            Stmt::Insert {
                table,
                columns: _,
                source,
            } => {
                match source {
                    InsertSource::Values(rows) => {
                        for row in rows {
                            for e in row {
                                self.expr(e, depth);
                            }
                        }
                    }
                    InsertSource::Select(sel) => self.select(sel, depth),
                }
                self.dml(table, TriggerOp::Insert, depth);
            }
            Stmt::Update {
                table,
                assignments,
                selection,
            } => {
                for (_, e) in assignments {
                    self.expr(e, depth);
                }
                if let Some(e) = selection {
                    self.expr(e, depth);
                }
                self.dml(table, TriggerOp::Update, depth);
            }
            Stmt::Delete { table, selection } => {
                if let Some(e) = selection {
                    self.expr(e, depth);
                }
                self.dml(table, TriggerOp::Delete, depth);
            }
            Stmt::Select(sel) => {
                if sel.into.is_some() {
                    // SELECT INTO creates a table: catalog mutation.
                    self.give_up();
                } else {
                    self.select(sel, depth);
                }
            }
            Stmt::Execute { name } => {
                let Some(def) = self.db.procedure(name, Some(self.session.prefix())) else {
                    self.give_up();
                    return;
                };
                let key = def.name.to_ascii_lowercase();
                self.procedures.insert(key.clone());
                if !self.seen_procs.insert(key) {
                    return;
                }
                let body: Vec<Stmt> = def.body.clone();
                for s in &body {
                    self.stmt(s, depth + 1);
                    if self.barrier {
                        return;
                    }
                }
            }
            Stmt::Print(e) => self.expr(e, depth),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond, depth);
                self.stmt(then_branch, depth);
                if let Some(e) = else_branch {
                    self.stmt(e, depth);
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond, depth);
                self.stmt(body, depth);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, depth);
                    if self.barrier {
                        return;
                    }
                }
            }
        }
    }

    fn select(&mut self, sel: &SelectStmt, depth: usize) {
        for tref in &sel.from {
            self.read(&tref.name, depth);
        }
        for item in &sel.projection {
            if let crate::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr, depth);
            }
        }
        if let Some(e) = &sel.selection {
            self.expr(e, depth);
        }
        for e in &sel.group_by {
            self.expr(e, depth);
        }
        if let Some(e) = &sel.having {
            self.expr(e, depth);
        }
        for o in &sel.order_by {
            self.expr(&o.expr, depth);
        }
    }

    fn expr(&mut self, expr: &Expr, depth: usize) {
        if self.barrier {
            return;
        }
        match expr {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
            Expr::Unary { operand, .. } => self.expr(operand, depth),
            Expr::Binary { left, right, .. } => {
                self.expr(left, depth);
                self.expr(right, depth);
            }
            Expr::Function { name, args, .. } => {
                // Sending a datagram is an effect even from inside a
                // SELECT: the notification channel observes lock-order
                // serialization, so sendmsg batches never ride the
                // snapshot lane.
                if name.eq_ignore_ascii_case("syb_sendmsg") {
                    self.sends_messages = true;
                }
                for a in args {
                    self.expr(a, depth);
                }
            }
            Expr::IsNull { operand, .. } => self.expr(operand, depth),
            Expr::InList { operand, list, .. } => {
                self.expr(operand, depth);
                for e in list {
                    self.expr(e, depth);
                }
            }
            Expr::Between {
                operand, low, high, ..
            } => {
                self.expr(operand, depth);
                self.expr(low, depth);
                self.expr(high, depth);
            }
            Expr::Like {
                operand, pattern, ..
            } => {
                self.expr(operand, depth);
                self.expr(pattern, depth);
            }
            Expr::Exists(sub) | Expr::Subquery(sub) => self.select(sub, depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::parser::parse_script;

    fn setup() -> (Engine, SessionCtx) {
        let e = Engine::new();
        let s = SessionCtx::new("db", "u");
        for sql in [
            "create table t1 (a int)",
            "create table t2 (a int)",
            "create table audit (n int)",
            "create trigger tr1 on t1 for insert as insert audit values (1)",
            "create procedure p1 as insert t2 values (1)",
        ] {
            e.execute(sql, &s).unwrap();
        }
        (e, s)
    }

    fn plan(e: &Engine, s: &SessionCtx, sql: &str) -> BatchPlan {
        let stmts = parse_script(sql).unwrap();
        let db = e.database();
        BatchPlan::derive(&db, &stmts, s)
    }

    fn vecs(set: &BTreeSet<String>) -> Vec<String> {
        set.iter().cloned().collect()
    }

    #[test]
    fn plain_dml_lists_its_table_as_effect() {
        let (e, s) = setup();
        let p = plan(&e, &s, "insert t2 values (1)");
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.effects.tables), vec!["t2"]);
        assert!(p.requirements.tables.is_empty());
        assert_eq!(vecs(&p.lock_tables()), vec!["t2"]);
    }

    #[test]
    fn plain_select_is_read_pure() {
        let (e, s) = setup();
        let p = plan(&e, &s, "select a from t2 where a > 1");
        assert_eq!(p.class, BatchClass::ReadPure);
        assert_eq!(vecs(&p.requirements.tables), vec!["t2"]);
        assert!(p.effects.tables.is_empty());
    }

    #[test]
    fn sendmsg_select_is_effectful_not_read_pure() {
        let (e, s) = setup();
        let p = plan(
            &e,
            &s,
            "select syb_sendmsg('127.0.0.1', 1200, 'hi') from t2",
        );
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.requirements.tables), vec!["t2"]);
        assert!(p.effects.tables.is_empty());
    }

    #[test]
    fn dml_effects_include_trigger_body_tables() {
        let (e, s) = setup();
        // Inserting into t1 fires tr1, which writes audit.
        let p = plan(&e, &s, "insert t1 values (1)");
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.effects.tables), vec!["audit", "t1"]);
        assert_eq!(vecs(&p.lock_tables()), vec!["audit", "t1"]);
    }

    #[test]
    fn execute_recurses_into_procedure_and_records_it() {
        let (e, s) = setup();
        let p = plan(&e, &s, "execute p1");
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.effects.tables), vec!["t2"]);
        // Recorded under its catalog storage key (`name_key(def.name)`), so
        // the snapshot pin can fetch it with a plain map lookup.
        assert_eq!(vecs(&p.procedures), vec!["p1"]);
    }

    #[test]
    fn subqueries_are_walked() {
        let (e, s) = setup();
        let p = plan(&e, &s, "select a from t1 where a = (select max(a) from t2)");
        assert_eq!(p.class, BatchClass::ReadPure);
        assert_eq!(vecs(&p.requirements.tables), vec!["t1", "t2"]);
    }

    #[test]
    fn update_reads_its_sources_and_writes_its_target() {
        let (e, s) = setup();
        let p = plan(
            &e,
            &s,
            "update t1 set a = (select max(a) from t2) where a > 0",
        );
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.requirements.tables), vec!["t2"]);
        assert_eq!(vecs(&p.effects.tables), vec!["t1"]);
        assert_eq!(vecs(&p.lock_tables()), vec!["t1", "t2"]);
    }

    #[test]
    fn ddl_tx_and_unknowns_are_barriers() {
        let (e, s) = setup();
        for sql in [
            "create table x (a int)",
            "drop table t1",
            "alter table t1 add b int null",
            "truncate table t1",
            "begin tran",
            "commit",
            "rollback",
            "select * into x from t1",
            "insert nosuch values (1)",
            "execute nosuchproc",
            "create trigger trx on t1 for delete as print 'x'",
            "create index i1 on t1 (a)",
            "create unique hash index i2 on t2 (a)",
            "drop index i1",
        ] {
            assert_eq!(plan(&e, &s, sql).class, BatchClass::Barrier, "{sql}");
        }
    }

    #[test]
    fn split_passes_project_the_same_analysis() {
        let (e, s) = setup();
        let stmts = parse_script("insert t1 select a from t2").unwrap();
        let db = e.database();
        let reqs = derive_requirements(&db, &stmts, &s).unwrap();
        let effs = derive_effects(&db, &stmts, &s).unwrap();
        assert_eq!(vecs(&reqs.tables), vec!["t2"]);
        assert_eq!(vecs(&effs.tables), vec!["audit", "t1"]);
        let barrier = parse_script("begin tran").unwrap();
        assert!(derive_requirements(&db, &barrier, &s).is_none());
        assert!(derive_effects(&db, &barrier, &s).is_none());
    }

    #[test]
    fn self_recursive_trigger_terminates() {
        let (e, s) = setup();
        e.execute("create table r (a int)", &s).unwrap();
        e.execute(
            "create trigger trr on r for insert as insert r values (1)",
            &s,
        )
        .unwrap();
        let p = plan(&e, &s, "insert r values (0)");
        assert_eq!(p.class, BatchClass::Effectful);
        assert_eq!(vecs(&p.effects.tables), vec!["r"]);
    }

    #[test]
    fn lock_tables_covers_trigger_write_set_and_barrier_class() {
        let (e, s) = setup();
        let db = e.database();
        let stmts = parse_script("insert t1 values (1)").unwrap();
        let p = BatchPlan::derive(&db, &stmts, &s);
        assert_eq!(vecs(&p.lock_tables()), vec!["audit", "t1"]);
        let ddl = parse_script("begin tran").unwrap();
        assert_eq!(BatchPlan::derive(&db, &ddl, &s).class, BatchClass::Barrier);
    }
}
