//! The storage boundary for the durability subsystem.
//!
//! Everything the WAL and checkpointer do to disk goes through the
//! [`Storage`] trait, so the production `std::fs` implementation
//! ([`FsStorage`]) and the deterministic fault-injecting test double
//! ([`FaultyStorage`]) are interchangeable. `FaultyStorage` mirrors the
//! ChaosSink/FaultPlan design of the notification channel at the disk
//! layer: it models the gap between *written* and *durable* bytes
//! explicitly (an `fsync` moves pending bytes into the durable set) and
//! lets a test crash the "machine" at an arbitrary byte offset — a torn
//! write — or drop fsyncs and fail writes on cue, all reproducibly.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};

/// Byte-level file operations the durability layer needs. Implementations
/// must be safe to call from multiple threads.
pub trait Storage: Send + Sync {
    /// Full contents of `name`, or `None` if the file does not exist.
    fn load(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Append `bytes` to `name`, creating it if missing. The bytes are
    /// *written*, not yet durable — see [`Storage::sync`].
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Make every byte written to `name` so far durable (fsync).
    fn sync(&self, name: &str) -> Result<()>;

    /// Atomically replace `name` with `bytes` (write-temp, fsync, rename,
    /// fsync directory). After this returns the new contents are durable
    /// and a crash can never expose a half-written file.
    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Truncate `name` to empty, durably.
    fn reset(&self, name: &str) -> Result<()>;
}

fn io_err(what: &str, name: &str, e: std::io::Error) -> Error {
    Error::Io {
        msg: format!("{what} '{name}': {e}"),
    }
}

// ---------------------------------------------------------------------------
// Production implementation over std::fs
// ---------------------------------------------------------------------------

/// `std::fs`-backed storage rooted at a data directory. Append handles are
/// cached so the per-commit WAL append does not reopen the file.
pub struct FsStorage {
    dir: PathBuf,
    handles: Mutex<HashMap<String, std::fs::File>>,
}

impl FsStorage {
    /// Open (creating if needed) a data directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Arc<Self>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err("create data dir", &dir.display().to_string(), e))?;
        Ok(Arc::new(FsStorage {
            dir,
            handles: Mutex::new(HashMap::new()),
        }))
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// fsync the data directory itself so renames/creations are durable.
    fn sync_dir(&self) -> Result<()> {
        let d = std::fs::File::open(&self.dir)
            .map_err(|e| io_err("open data dir", &self.dir.display().to_string(), e))?;
        d.sync_all()
            .map_err(|e| io_err("sync data dir", &self.dir.display().to_string(), e))
    }
}

impl Storage for FsStorage {
    fn load(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", name, e)),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut handles = self.handles.lock();
        if !handles.contains_key(name) {
            let created = !self.path(name).exists();
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))
                .map_err(|e| io_err("open for append", name, e))?;
            if created {
                // Make the new directory entry durable immediately;
                // otherwise a power loss after the first fsynced commits
                // can lose the whole file — acknowledged bytes included —
                // because only the file's *data* was ever synced.
                self.sync_dir()?;
            }
            handles.insert(name.to_string(), f);
        }
        let f = handles.get_mut(name).expect("just inserted");
        f.write_all(bytes).map_err(|e| io_err("append to", name, e))
    }

    fn sync(&self, name: &str) -> Result<()> {
        let handles = self.handles.lock();
        match handles.get(name) {
            Some(f) => f.sync_data().map_err(|e| io_err("sync", name, e)),
            // Nothing appended yet: nothing to make durable.
            None => Ok(()),
        }
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        // Drop any cached append handle: it points at the old inode.
        self.handles.lock().remove(name);
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", name, e))?;
            f.write_all(bytes).map_err(|e| io_err("write", name, e))?;
            f.sync_all().map_err(|e| io_err("sync temp for", name, e))?;
        }
        std::fs::rename(&tmp, self.path(name)).map_err(|e| io_err("rename into", name, e))?;
        self.sync_dir()
    }

    fn reset(&self, name: &str) -> Result<()> {
        self.replace(name, &[])
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting in-memory implementation
// ---------------------------------------------------------------------------

/// Declarative fault schedule for [`FaultyStorage`] — the disk-layer
/// sibling of the notification channel's `FaultPlan`. All counters are
/// 1-based calls on the storage as a whole, so a given plan produces the
/// same fault at the same operation on every run.
#[derive(Debug, Clone, Default)]
pub struct DiskFaultPlan {
    /// Silently drop every fsync: `sync` reports success but nothing moves
    /// from pending to durable (a lying disk / disabled write cache).
    pub drop_fsyncs: bool,
    /// Fail (with an I/O error) every append after this many appends have
    /// succeeded. `None` disables.
    pub fail_appends_after: Option<u64>,
    /// Fail (with an I/O error) every fsync after this many fsyncs have
    /// succeeded. `None` disables.
    pub fail_fsyncs_after: Option<u64>,
    /// Fail (with an I/O error) every atomic replace after this many have
    /// succeeded (`reset` counts — it is a replace-with-empty). `None`
    /// disables. `Some(1)` at checkpoint time is exactly the crash window
    /// between the snapshot replace and the WAL truncation.
    pub fail_replaces_after: Option<u64>,
}

#[derive(Debug, Default, Clone)]
struct FaultFile {
    /// Bytes guaranteed to survive a crash.
    durable: Vec<u8>,
    /// Bytes written but not fsynced: a crash keeps an arbitrary prefix.
    pending: Vec<u8>,
}

impl FaultFile {
    fn visible(&self) -> Vec<u8> {
        let mut v = self.durable.clone();
        v.extend_from_slice(&self.pending);
        v
    }
}

/// In-memory storage that models durability precisely and injects faults
/// deterministically. With a default (no-op) [`DiskFaultPlan`] it doubles
/// as a plain memory-backed storage for tests and benchmarks.
#[derive(Default)]
pub struct FaultyStorage {
    files: Mutex<HashMap<String, FaultFile>>,
    plan: DiskFaultPlan,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    replaces: AtomicU64,
    dropped_fsyncs: AtomicU64,
}

impl FaultyStorage {
    /// Fault-free in-memory storage.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultyStorage::default())
    }

    /// In-memory storage with a fault schedule.
    pub fn with_plan(plan: DiskFaultPlan) -> Arc<Self> {
        Arc::new(FaultyStorage {
            plan,
            ..Default::default()
        })
    }

    /// Number of fsyncs the plan silently dropped.
    pub fn dropped_fsync_count(&self) -> u64 {
        self.dropped_fsyncs.load(Ordering::Relaxed)
    }

    /// Total written length (durable + pending) of `name`.
    pub fn visible_len(&self, name: &str) -> u64 {
        self.files
            .lock()
            .get(name)
            .map(|f| f.visible().len() as u64)
            .unwrap_or(0)
    }

    /// Length of the durable prefix of `name`.
    pub fn durable_len(&self, name: &str) -> u64 {
        self.files
            .lock()
            .get(name)
            .map(|f| f.durable.len() as u64)
            .unwrap_or(0)
    }

    /// Simulate a hard crash where the machine persisted exactly the first
    /// `k` bytes of `name`'s written contents — a torn write when `k` lands
    /// inside a record. Bytes past `k` are gone; pending state is cleared.
    /// (A real crash cannot lose already-fsynced data, but letting `k` cut
    /// below the durable boundary is useful for modelling lying hardware.)
    pub fn crash_at(&self, name: &str, k: u64) {
        let mut files = self.files.lock();
        if let Some(f) = files.get_mut(name) {
            let mut all = f.visible();
            all.truncate(k as usize);
            f.durable = all;
            f.pending.clear();
        }
    }

    /// Simulate a hard crash that keeps only fsynced bytes: every file's
    /// pending tail is dropped.
    pub fn crash_to_durable(&self) {
        let mut files = self.files.lock();
        for f in files.values_mut() {
            f.pending.clear();
        }
    }

    /// Re-append the byte range `[start, end)` of `name`'s current
    /// contents at the tail — used to inject a duplicated tail frame
    /// (a storage stack that retried a write it had already completed).
    pub fn duplicate_range(&self, name: &str, start: u64, end: u64) {
        let mut files = self.files.lock();
        if let Some(f) = files.get_mut(name) {
            let all = f.visible();
            let (s, e) = (start as usize, (end as usize).min(all.len()));
            if s < e {
                let dup = all[s..e].to_vec();
                f.pending.extend_from_slice(&dup);
            }
        }
    }

    /// Flip one byte of `name` in place (silent media corruption).
    pub fn corrupt_byte(&self, name: &str, offset: u64) {
        let mut files = self.files.lock();
        if let Some(f) = files.get_mut(name) {
            let mut all = f.visible();
            if let Some(b) = all.get_mut(offset as usize) {
                *b ^= 0xFF;
                let durable_len = f.durable.len().min(all.len());
                f.durable = all[..durable_len].to_vec();
                f.pending = all[durable_len..].to_vec();
            }
        }
    }
}

impl Storage for FaultyStorage {
    fn load(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.files.lock().get(name).map(FaultFile::visible))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        if let Some(limit) = self.plan.fail_appends_after {
            if self.appends.load(Ordering::Relaxed) >= limit {
                return Err(Error::Io {
                    msg: format!("injected append failure on '{name}'"),
                });
            }
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.files
            .lock()
            .entry(name.to_string())
            .or_default()
            .pending
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<()> {
        if let Some(limit) = self.plan.fail_fsyncs_after {
            if self.fsyncs.load(Ordering::Relaxed) >= limit {
                return Err(Error::Io {
                    msg: format!("injected fsync failure on '{name}'"),
                });
            }
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if self.plan.drop_fsyncs {
            self.dropped_fsyncs.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // lie: report success, persist nothing
        }
        let mut files = self.files.lock();
        if let Some(f) = files.get_mut(name) {
            let pending = std::mem::take(&mut f.pending);
            f.durable.extend_from_slice(&pending);
        }
        Ok(())
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        if let Some(limit) = self.plan.fail_replaces_after {
            if self.replaces.load(Ordering::Relaxed) >= limit {
                return Err(Error::Io {
                    msg: format!("injected replace failure on '{name}'"),
                });
            }
        }
        self.replaces.fetch_add(1, Ordering::Relaxed);
        // Atomic rename: all-or-nothing and immediately durable.
        let mut files = self.files.lock();
        let f = files.entry(name.to_string()).or_default();
        f.durable = bytes.to_vec();
        f.pending.clear();
        Ok(())
    }

    fn reset(&self, name: &str) -> Result<()> {
        self.replace(name, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_storage_models_durability() {
        let s = FaultyStorage::new();
        s.append("f", b"abc").unwrap();
        assert_eq!(s.load("f").unwrap().unwrap(), b"abc");
        assert_eq!(s.durable_len("f"), 0);
        s.sync("f").unwrap();
        assert_eq!(s.durable_len("f"), 3);
        s.append("f", b"defgh").unwrap();
        // Crash mid-pending: durable prefix plus a torn slice survives.
        s.crash_at("f", 5);
        assert_eq!(s.load("f").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn crash_to_durable_drops_pending_only() {
        let s = FaultyStorage::new();
        s.append("f", b"abc").unwrap();
        s.sync("f").unwrap();
        s.append("f", b"xyz").unwrap();
        s.crash_to_durable();
        assert_eq!(s.load("f").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn dropped_fsyncs_persist_nothing() {
        let s = FaultyStorage::with_plan(DiskFaultPlan {
            drop_fsyncs: true,
            ..Default::default()
        });
        s.append("f", b"abc").unwrap();
        s.sync("f").unwrap();
        assert_eq!(s.dropped_fsync_count(), 1);
        s.crash_to_durable();
        assert_eq!(s.load("f").unwrap().unwrap(), b"");
    }

    #[test]
    fn injected_failures_fire_on_schedule() {
        let s = FaultyStorage::with_plan(DiskFaultPlan {
            fail_appends_after: Some(2),
            fail_fsyncs_after: Some(1),
            ..Default::default()
        });
        s.append("f", b"a").unwrap();
        s.append("f", b"b").unwrap();
        assert!(matches!(s.append("f", b"c"), Err(Error::Io { .. })));
        s.sync("f").unwrap();
        assert!(matches!(s.sync("f"), Err(Error::Io { .. })));
    }

    #[test]
    fn injected_replace_failures_fire_on_schedule() {
        let s = FaultyStorage::with_plan(DiskFaultPlan {
            fail_replaces_after: Some(1),
            ..Default::default()
        });
        s.replace("snap", b"new").unwrap();
        // The second replace — a reset counts — fails: exactly the shape of
        // a checkpoint interrupted between snapshot replace and WAL reset.
        assert!(matches!(s.reset("wal"), Err(Error::Io { .. })));
        assert!(matches!(s.replace("snap", b"x"), Err(Error::Io { .. })));
        assert_eq!(s.load("snap").unwrap().unwrap(), b"new");
    }

    #[test]
    fn replace_is_atomic_and_durable() {
        let s = FaultyStorage::new();
        s.append("f", b"old").unwrap();
        s.replace("f", b"new").unwrap();
        s.crash_to_durable();
        assert_eq!(s.load("f").unwrap().unwrap(), b"new");
        s.reset("f").unwrap();
        assert_eq!(s.load("f").unwrap().unwrap(), b"");
    }

    #[test]
    fn duplicate_range_appends_a_copy() {
        let s = FaultyStorage::new();
        s.append("f", b"abcdef").unwrap();
        s.duplicate_range("f", 3, 6);
        assert_eq!(s.load("f").unwrap().unwrap(), b"abcdefdef");
    }

    #[test]
    fn corrupt_byte_flips_in_place() {
        let s = FaultyStorage::new();
        s.append("f", b"abc").unwrap();
        s.sync("f").unwrap();
        s.corrupt_byte("f", 1);
        assert_eq!(s.load("f").unwrap().unwrap(), &[b'a', b'b' ^ 0xFF, b'c']);
    }

    #[test]
    fn fs_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("relsql_fs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FsStorage::open(&dir).unwrap();
        assert_eq!(s.load("w").unwrap(), None);
        s.append("w", b"abc").unwrap();
        s.append("w", b"def").unwrap();
        s.sync("w").unwrap();
        assert_eq!(s.load("w").unwrap().unwrap(), b"abcdef");
        s.replace("snap", b"state").unwrap();
        assert_eq!(s.load("snap").unwrap().unwrap(), b"state");
        s.reset("w").unwrap();
        assert_eq!(s.load("w").unwrap().unwrap(), b"");
        // Appends still work after the handle cache was invalidated.
        s.append("w", b"xyz").unwrap();
        assert_eq!(s.load("w").unwrap().unwrap(), b"xyz");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
