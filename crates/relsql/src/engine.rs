//! The execution engine: statement dispatch, DML with native trigger firing,
//! stored procedures, transactions and control flow.
//!
//! Native trigger behaviour intentionally replicates Sybase's restrictions
//! (paper §2.2): statement-level triggers, one per (table, operation) with
//! silent overwrite, `inserted`/`deleted` pseudo-tables, and a nesting
//! limit. The ECA Agent builds full active-database semantics on top of
//! exactly this machinery.
//!
//! The engine is shared (`&self` throughout): the catalog sits behind a
//! `RwLock`, per-execution state (trigger scope, bound parameters) is
//! threaded explicitly, and row storage is interior-mutable per table. The
//! server layer serializes conflicting batches with per-table lock groups;
//! the engine's own locks only guard individual statements' short critical
//! sections. A statement's notification (`syb_sendmsg`) is evaluated *after*
//! the row mutation it describes — the row write-lock release
//! happens-before the sink enqueue, so a consumer that reads the table in
//! response to the notification always sees the rows for the vNo it was
//! handed.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use crate::ast::{InsertSource, Stmt, TriggerOp};
use crate::catalog::{Database, ProcedureDef, TriggerDef};
use crate::clock::LogicalClock;
use crate::error::{Error, ObjectKind, Result};
use crate::eval::Frame;
use crate::eval::{eval_expr, PseudoFrame, QueryCtx, RowEnv, SessionCtx};
use crate::exec::{self, LoweredCache};
use crate::index::{IndexDef, IndexKind, IndexSet};
use crate::lexer::split_batches;
use crate::notify::NotificationSink;
use crate::parser::parse_script;
use crate::plan::{self, SlotMeta};
use crate::table::{Row, Schema, Table};
use crate::value::Value;

/// Cumulative access-path counters, exposed through the server's STATS
/// command. `index_hits`/`index_misses` count FROM slots (and DML match
/// phases) served by an index probe vs. a full scan; `rows_scanned` counts
/// candidate row visits, so a workload whose `rows_scanned` stays flat as
/// tables grow is running entirely on point lookups.
#[derive(Debug, Default)]
pub struct ScanStats {
    pub index_hits: AtomicU64,
    pub index_misses: AtomicU64,
    pub rows_scanned: AtomicU64,
    /// Statements executed through the compiled physical-plan executor.
    pub exec_compiled: AtomicU64,
    /// Statements that ran the row-at-a-time interpreter instead (sum of
    /// the three fallback-reason counters below).
    pub exec_interpreted: AtomicU64,
    /// Interpreter fallbacks because the statement shape isn't lowerable
    /// (subqueries, rejected projections).
    pub exec_fallback_expr: AtomicU64,
    /// Interpreter fallbacks because execution was inside a trigger scope.
    pub exec_fallback_scope: AtomicU64,
    /// Interpreter fallbacks because `EngineConfig::compiled_exec` is off.
    pub exec_fallback_disabled: AtomicU64,
    /// Candidate batches pushed through the vectorized filter pipeline.
    pub batches_vectorized: AtomicU64,
    /// Candidate tuples carried in those batches.
    pub rows_batched: AtomicU64,
    /// Lowered-plan cache hits (per statement execution).
    pub plan_lowered_hits: AtomicU64,
    /// Lowered-plan cache misses (statement had to be lowered).
    pub plan_lowered_misses: AtomicU64,
}

impl ScanStats {
    pub fn hits(&self) -> u64 {
        self.index_hits.load(AtomicOrdering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.index_misses.load(AtomicOrdering::Relaxed)
    }

    pub fn scanned(&self) -> u64 {
        self.rows_scanned.load(AtomicOrdering::Relaxed)
    }

    pub fn compiled(&self) -> u64 {
        self.exec_compiled.load(AtomicOrdering::Relaxed)
    }

    pub fn interpreted(&self) -> u64 {
        self.exec_interpreted.load(AtomicOrdering::Relaxed)
    }

    pub fn fallback_expr(&self) -> u64 {
        self.exec_fallback_expr.load(AtomicOrdering::Relaxed)
    }

    pub fn fallback_scope(&self) -> u64 {
        self.exec_fallback_scope.load(AtomicOrdering::Relaxed)
    }

    pub fn fallback_disabled(&self) -> u64 {
        self.exec_fallback_disabled.load(AtomicOrdering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches_vectorized.load(AtomicOrdering::Relaxed)
    }

    pub fn batched_rows(&self) -> u64 {
        self.rows_batched.load(AtomicOrdering::Relaxed)
    }

    pub fn lowered_hits(&self) -> u64 {
        self.plan_lowered_hits.load(AtomicOrdering::Relaxed)
    }

    pub fn lowered_misses(&self) -> u64 {
        self.plan_lowered_misses.load(AtomicOrdering::Relaxed)
    }
}

/// The result of one SELECT or DML statement. Column names are shared
/// handles into the table schemas (or interned output aliases) — cloning a
/// result never copies name strings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    pub columns: Vec<Arc<str>>,
    pub rows: Vec<Row>,
    pub rows_affected: usize,
}

impl QueryResult {
    fn affected(n: usize) -> Self {
        QueryResult {
            rows_affected: n,
            ..Default::default()
        }
    }

    /// First value of the first row, if any.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Everything a batch produced, in statement order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchResult {
    pub results: Vec<QueryResult>,
    /// PRINT output, including prints from triggers and procedures.
    pub messages: Vec<String>,
}

impl BatchResult {
    /// The last result set that actually has columns (i.e. came from a
    /// SELECT), which is usually what a client wants to inspect.
    pub fn last_select(&self) -> Option<&QueryResult> {
        self.results.iter().rev().find(|r| !r.columns.is_empty())
    }

    /// Scalar of the last SELECT.
    pub fn scalar(&self) -> Option<&Value> {
        self.last_select().and_then(QueryResult::scalar)
    }

    /// Total rows affected across all DML statements.
    pub fn total_affected(&self) -> usize {
        self.results.iter().map(|r| r.rows_affected).sum()
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum trigger/procedure nesting depth (Sybase default: 16).
    pub max_depth: usize,
    /// Global switch for native trigger firing.
    pub fire_triggers: bool,
    /// Safety valve for `WHILE` loops.
    pub max_while_iterations: usize,
    /// Run top-level SELECT/DML through the compiled physical-plan executor
    /// ([`crate::exec`]) when the statement shape allows it. Off means every
    /// statement takes the row-at-a-time interpreter; results are
    /// byte-identical either way (the twin-run suite pins this).
    pub compiled_exec: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_depth: 16,
            fire_triggers: true,
            max_while_iterations: 100_000,
            compiled_exec: true,
        }
    }
}

/// Per-execution state threaded through statement dispatch: the trigger
/// pseudo-table scope stack, the bound parameters of the current batch, and
/// the batch's lowered-plan cache (shared with the server's masked-literal
/// plan cache entry; `None` for uncached executions).
struct ExecState<'p> {
    scope: Vec<PseudoFrame>,
    params: &'p [Value],
    lowered: Option<&'p LoweredCache>,
}

/// The in-memory SQL engine ("the SQL Server" of Figure 1). Shareable
/// across threads; conflicting batches must be serialized by the caller
/// (the server's per-table lock groups do this).
pub struct Engine {
    db: RwLock<Database>,
    config: EngineConfig,
    clock: Arc<LogicalClock>,
    sink: RwLock<Option<Arc<dyn NotificationSink>>>,
    datagram_seq: AtomicU64,
    tx_snapshot: Mutex<Option<Database>>,
    rollbacks: AtomicU64,
    scan_stats: ScanStats,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// A consistent read view of the engine for the duration of one statement:
/// catalog read guard plus a pinned sink reference.
struct EngineRead<'e> {
    engine: &'e Engine,
    db: RwLockReadGuard<'e, Database>,
    sink: Option<Arc<dyn NotificationSink>>,
}

impl<'e> EngineRead<'e> {
    fn ctx<'a>(&'a self, session: &'a SessionCtx, state: &'a ExecState<'_>) -> QueryCtx<'a> {
        QueryCtx {
            db: &self.db,
            session,
            scope: &state.scope,
            clock: &self.engine.clock,
            sink: self.sink.as_deref(),
            datagram_seq: &self.engine.datagram_seq,
            params: state.params,
            stats: &self.engine.scan_stats,
            compiled: self.engine.config.compiled_exec,
        }
    }
}

impl Engine {
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            db: RwLock::new(Database::new()),
            config,
            clock: Arc::new(LogicalClock::default()),
            sink: RwLock::new(None),
            datagram_seq: AtomicU64::new(0),
            tx_snapshot: Mutex::new(None),
            rollbacks: AtomicU64::new(0),
            scan_stats: ScanStats::default(),
        }
    }

    /// Access-path counters (index hits/misses, rows scanned).
    pub fn scan_stats(&self) -> &ScanStats {
        &self.scan_stats
    }

    /// Register the notification sink that `syb_sendmsg()` posts to.
    pub fn set_sink(&self, sink: Arc<dyn NotificationSink>) {
        *self.sink.write() = Some(sink);
    }

    pub fn clock(&self) -> Arc<LogicalClock> {
        Arc::clone(&self.clock)
    }

    /// Read-only catalog access for introspection and tests. Holds the
    /// catalog read lock for the guard's lifetime — don't hold it across
    /// calls back into the engine's DDL paths.
    pub fn database(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read_recursive()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the whole catalog — used by crash recovery to install a
    /// decoded snapshot before WAL replay. Must not be called while any
    /// statements are executing.
    pub fn restore_database(&self, db: Database) {
        *self.db.write() = db;
    }

    /// True while an explicit transaction is open.
    pub fn in_tx(&self) -> bool {
        self.tx_snapshot.lock().is_some()
    }

    /// Number of `ROLLBACK` statements that restored a snapshot. Monotonic;
    /// part of the agent's loss signal (a rollback can rewind event-version
    /// counters the detector has already observed).
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks.load(AtomicOrdering::SeqCst)
    }

    /// Acquire a consistent read view for one statement.
    fn read(&self) -> EngineRead<'_> {
        EngineRead {
            engine: self,
            db: self.db.read_recursive(),
            sink: self.sink.read().clone(),
        }
    }

    /// Execute a script: batches split on `go` lines, statements within a
    /// batch run in order. Execution stops at the first error (effects of
    /// earlier statements persist, as on a real server without an explicit
    /// transaction).
    pub fn execute(&self, script: &str, session: &SessionCtx) -> Result<BatchResult> {
        let mut out = BatchResult::default();
        for batch in split_batches(script) {
            let stmts = parse_script(batch)?;
            self.run_stmts(&stmts, &[], session, &mut out)?;
        }
        Ok(out)
    }

    /// Execute one pre-parsed batch with bound parameters — the server's
    /// statement-plan-cache entry point. `params` backs any `Expr::Param`
    /// placeholders the plan cache masked out of the batch text.
    pub fn run_stmts(
        &self,
        stmts: &[Stmt],
        params: &[Value],
        session: &SessionCtx,
        out: &mut BatchResult,
    ) -> Result<()> {
        self.run_stmts_with(stmts, params, session, out, None)
    }

    /// [`Engine::run_stmts`] with the batch's lowered-plan cache attached.
    /// The cache is keyed by statement address, so `stmts` must be the same
    /// allocation the cache entry was created for (the server guarantees
    /// this by storing both in one `CachedPlan`).
    pub(crate) fn run_stmts_with(
        &self,
        stmts: &[Stmt],
        params: &[Value],
        session: &SessionCtx,
        out: &mut BatchResult,
        lowered: Option<&LoweredCache>,
    ) -> Result<()> {
        let mut state = ExecState {
            scope: Vec::new(),
            params,
            lowered,
        };
        for stmt in stmts {
            self.exec_stmt(stmt, session, &mut state, out, 0)?;
        }
        Ok(())
    }

    /// Execute one pre-parsed **read-pure** batch against a pinned snapshot
    /// database — the MVCC read lane. Takes no engine locks at all: the
    /// snapshot owns (shares `Arc`s of) everything the batch can touch, so
    /// evaluation proceeds concurrently with writers, DDL, and other
    /// readers. Shares the engine's logical clock and scan counters, and
    /// runs the *same* `run_select` evaluator as the locked path, so
    /// results are byte-identical for any batch the classifier marks
    /// `ReadPure`.
    ///
    /// Callers must only pass batches classified read-pure; any statement
    /// with effects (DML, DDL, transaction control) is rejected as an
    /// internal error rather than silently half-executed.
    pub fn run_snapshot_stmts(
        &self,
        snap: &Database,
        stmts: &[Stmt],
        params: &[Value],
        session: &SessionCtx,
        out: &mut BatchResult,
    ) -> Result<()> {
        self.run_snapshot_stmts_with(snap, stmts, params, session, out, None)
    }

    /// [`Engine::run_snapshot_stmts`] with the batch's lowered-plan cache
    /// attached, so the MVCC read lane runs compiled plans against pinned
    /// versions too.
    pub(crate) fn run_snapshot_stmts_with(
        &self,
        snap: &Database,
        stmts: &[Stmt],
        params: &[Value],
        session: &SessionCtx,
        out: &mut BatchResult,
        lowered: Option<&LoweredCache>,
    ) -> Result<()> {
        let sink = self.sink.read().clone();
        let state = ExecState {
            scope: Vec::new(),
            params,
            lowered,
        };
        for stmt in stmts {
            self.exec_snapshot_stmt(snap, sink.as_deref(), stmt, session, &state, out, 0)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_snapshot_stmt(
        &self,
        snap: &Database,
        sink: Option<&dyn NotificationSink>,
        stmt: &Stmt,
        session: &SessionCtx,
        state: &ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
    ) -> Result<()> {
        if depth > self.config.max_depth {
            return Err(Error::TriggerDepth {
                limit: self.config.max_depth,
            });
        }
        let ctx = QueryCtx {
            db: snap,
            session,
            scope: &state.scope,
            clock: &self.clock,
            sink,
            datagram_seq: &self.datagram_seq,
            params: state.params,
            stats: &self.scan_stats,
            compiled: self.config.compiled_exec,
        };
        match stmt {
            Stmt::Select(sel) if sel.into.is_none() => {
                let (columns, rows, _) = exec::run_select_exec(&ctx, sel, state.lowered)?;
                let affected = rows.len();
                out.results.push(QueryResult {
                    columns,
                    rows,
                    rows_affected: affected,
                });
                Ok(())
            }
            Stmt::Print(expr) => {
                let v = eval_expr(&ctx, &RowEnv::empty(), expr)?;
                out.messages.push(v.to_string());
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let truthy = eval_expr(&ctx, &RowEnv::empty(), cond)?.is_truthy();
                if truthy {
                    self.exec_snapshot_stmt(snap, sink, then_branch, session, state, out, depth)?;
                } else if let Some(e) = else_branch {
                    self.exec_snapshot_stmt(snap, sink, e, session, state, out, depth)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let mut iterations = 0usize;
                loop {
                    let truthy = eval_expr(&ctx, &RowEnv::empty(), cond)?.is_truthy();
                    if !truthy {
                        break;
                    }
                    iterations += 1;
                    if iterations > self.config.max_while_iterations {
                        return Err(Error::exec(format!(
                            "WHILE exceeded {} iterations",
                            self.config.max_while_iterations
                        )));
                    }
                    self.exec_snapshot_stmt(snap, sink, body, session, state, out, depth)?;
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_snapshot_stmt(snap, sink, s, session, state, out, depth)?;
                }
                Ok(())
            }
            Stmt::Execute { name } => {
                // The classifier pinned every reachable procedure into the
                // snapshot, so resolution here mirrors the live path.
                let proc = snap
                    .procedure(name, Some(session.prefix()))
                    .ok_or_else(|| Error::NotFound {
                        kind: ObjectKind::Procedure,
                        name: name.clone(),
                    })?
                    .clone();
                // The body is a per-execution clone: its statement addresses
                // are transient, so it must not touch the lowered-plan cache.
                let body_state = ExecState {
                    scope: state.scope.clone(),
                    params: state.params,
                    lowered: None,
                };
                for s in &proc.body {
                    self.exec_snapshot_stmt(snap, sink, s, session, &body_state, out, depth + 1)?;
                }
                Ok(())
            }
            other => Err(Error::exec(format!(
                "internal: statement {other:?} reached the snapshot lane but is not read-pure"
            ))),
        }
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        session: &SessionCtx,
        state: &mut ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
    ) -> Result<()> {
        if depth > self.config.max_depth {
            return Err(Error::TriggerDepth {
                limit: self.config.max_depth,
            });
        }
        match stmt {
            Stmt::CreateTable { name, columns } => {
                let table = Table::from_defs(name.clone(), columns)?;
                self.db.write().create_table(table)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::DropTable { name } => {
                self.db.write().drop_table(name)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::AlterTableAdd { table, column } => {
                let mut db = self.db.write();
                let key = Self::resolve_in(&db, table, session)?;
                db.table_mut(&key).expect("resolved").add_column(column)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::Insert {
                table,
                columns,
                source,
            } => self.exec_insert(
                table,
                columns.as_deref(),
                source,
                session,
                state,
                out,
                depth,
                stmt as *const Stmt as usize,
            ),
            Stmt::Update {
                table,
                assignments,
                selection,
            } => self.exec_update(
                table,
                assignments,
                selection.as_ref(),
                session,
                state,
                out,
                depth,
                stmt as *const Stmt as usize,
            ),
            Stmt::Delete { table, selection } => self.exec_delete(
                table,
                selection.as_ref(),
                session,
                state,
                out,
                depth,
                stmt as *const Stmt as usize,
            ),
            Stmt::Truncate { table } => {
                let n = {
                    let rd = self.read();
                    let key = Self::resolve_in(&rd.db, table, session)?;
                    let t = rd.db.table(&key).expect("resolved");
                    let mut w = t.write();
                    let n = w.rows().len();
                    w.truncate();
                    n
                };
                out.results.push(QueryResult::affected(n));
                Ok(())
            }
            Stmt::CreateIndex {
                name,
                table,
                column,
                unique,
                hash,
            } => {
                let def = IndexDef {
                    name: name.clone(),
                    column: column.clone(),
                    unique: *unique,
                    kind: if *hash {
                        IndexKind::Hash
                    } else {
                        IndexKind::Ordered
                    },
                };
                self.db
                    .write()
                    .create_index(table, def, Some(session.prefix()))?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::DropIndex { name } => {
                self.db.write().drop_index(name)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::Select(sel) => {
                if let Some(into) = &sel.into {
                    let (names, rows, cols) = {
                        let rd = self.read();
                        let lowered = state.lowered;
                        let ctx = rd.ctx(session, state);
                        exec::run_select_exec(&ctx, sel, lowered)?
                    };
                    let mut db = self.db.write();
                    if db.has_table(into) {
                        return Err(Error::AlreadyExists {
                            kind: ObjectKind::Table,
                            name: into.clone(),
                        });
                    }
                    let mut unique = cols;
                    // Disambiguate duplicate output names (e.g. vNo from two
                    // joined tables) by suffixing.
                    let mut seen: Vec<String> = Vec::new();
                    for c in &mut unique {
                        let mut candidate = c.name.to_string();
                        let mut n = 1;
                        while seen.iter().any(|s| s.eq_ignore_ascii_case(&candidate)) {
                            n += 1;
                            candidate = format!("{}{n}", c.name);
                        }
                        if *candidate != *c.name {
                            c.name = Arc::from(candidate.as_str());
                        }
                        seen.push(candidate);
                    }
                    let mut table = Table::new(into.clone(), Schema::new(unique));
                    let n = rows.len();
                    for row in rows {
                        table.insert_row(row)?;
                    }
                    db.create_table(table)?;
                    let _ = names;
                    out.results.push(QueryResult::affected(n));
                } else {
                    let (columns, rows, _) = {
                        let rd = self.read();
                        let lowered = state.lowered;
                        let ctx = rd.ctx(session, state);
                        exec::run_select_exec(&ctx, sel, lowered)?
                    };
                    let affected = rows.len();
                    out.results.push(QueryResult {
                        columns,
                        rows,
                        rows_affected: affected,
                    });
                }
                Ok(())
            }
            Stmt::CreateTrigger {
                name,
                table,
                operation,
                body,
                body_src,
            } => {
                let mut db = self.db.write();
                let table_key = Self::resolve_in(&db, table, session)?;
                db.create_trigger(TriggerDef {
                    name: name.clone(),
                    table_key,
                    operation: *operation,
                    body: body.clone(),
                    body_src: body_src.clone(),
                })?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::DropTrigger { name } => {
                self.db.write().drop_trigger(name)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::CreateProcedure {
                name,
                body,
                body_src,
            } => {
                self.db.write().create_procedure(ProcedureDef {
                    name: name.clone(),
                    body: body.clone(),
                    body_src: body_src.clone(),
                })?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::DropProcedure { name } => {
                self.db.write().drop_procedure(name)?;
                out.results.push(QueryResult::affected(0));
                Ok(())
            }
            Stmt::Execute { name } => {
                let proc = {
                    let db = self.db.read_recursive();
                    db.procedure(name, Some(session.prefix()))
                        .ok_or_else(|| Error::NotFound {
                            kind: ObjectKind::Procedure,
                            name: name.clone(),
                        })?
                        .clone()
                };
                // The body is a per-execution clone: its statement addresses
                // are transient, so it must not touch the lowered-plan cache
                // (a later allocation could reuse an address and collide).
                let saved = state.lowered.take();
                let result = (|| {
                    for s in &proc.body {
                        self.exec_stmt(s, session, state, out, depth + 1)?;
                    }
                    Ok(())
                })();
                state.lowered = saved;
                result
            }
            Stmt::Print(expr) => {
                let v = {
                    let rd = self.read();
                    let ctx = rd.ctx(session, state);
                    eval_expr(&ctx, &RowEnv::empty(), expr)?
                };
                out.messages.push(v.to_string());
                Ok(())
            }
            Stmt::BeginTran => {
                let mut tx = self.tx_snapshot.lock();
                if tx.is_some() {
                    return Err(Error::Transaction {
                        msg: "nested transactions are not supported".into(),
                    });
                }
                *tx = Some(self.db.read_recursive().clone());
                Ok(())
            }
            Stmt::Commit => {
                if self.tx_snapshot.lock().take().is_none() {
                    return Err(Error::Transaction {
                        msg: "COMMIT without BEGIN TRAN".into(),
                    });
                }
                Ok(())
            }
            Stmt::Rollback => {
                let snapshot = self.tx_snapshot.lock().take();
                match snapshot {
                    Some(snapshot) => {
                        *self.db.write() = snapshot;
                        // A rollback can regress durable event-version
                        // counters below watermarks an observer has already
                        // recorded; the SeqCst bump is the observer's cue to
                        // re-reconcile against durable state.
                        self.rollbacks.fetch_add(1, AtomicOrdering::SeqCst);
                        Ok(())
                    }
                    None => Err(Error::Transaction {
                        msg: "ROLLBACK without BEGIN TRAN".into(),
                    }),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let truthy = {
                    let rd = self.read();
                    let ctx = rd.ctx(session, state);
                    eval_expr(&ctx, &RowEnv::empty(), cond)?.is_truthy()
                };
                if truthy {
                    self.exec_stmt(then_branch, session, state, out, depth)?;
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, session, state, out, depth)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let mut iterations = 0usize;
                loop {
                    let truthy = {
                        let rd = self.read();
                        let ctx = rd.ctx(session, state);
                        eval_expr(&ctx, &RowEnv::empty(), cond)?.is_truthy()
                    };
                    if !truthy {
                        break;
                    }
                    iterations += 1;
                    if iterations > self.config.max_while_iterations {
                        return Err(Error::exec(format!(
                            "WHILE exceeded {} iterations",
                            self.config.max_while_iterations
                        )));
                    }
                    self.exec_stmt(body, session, state, out, depth)?;
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(s, session, state, out, depth)?;
                }
                Ok(())
            }
        }
    }

    fn resolve_in(db: &Database, name: &str, session: &SessionCtx) -> Result<String> {
        // Pseudo-tables can never be DML'd into by name in this engine.
        db.resolve_table_key(name, Some(session.prefix()))
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Table,
                name: name.to_string(),
            })
    }

    /// Row positions a single-table UPDATE/DELETE must examine, in ascending
    /// (scan) order. When the WHERE clause is sargable on an indexed column
    /// the candidates come from an index probe — a *superset* of the matching
    /// rows; the caller still evaluates the full predicate on each.
    fn dml_candidates(
        &self,
        t: &Table,
        set: &IndexSet,
        row_count: usize,
        selection: Option<&crate::ast::Expr>,
        session: &SessionCtx,
        params: &[Value],
    ) -> Vec<usize> {
        let slots = [SlotMeta {
            alias: None,
            table_name: &t.name,
            schema: &t.schema,
        }];
        let p = plan::plan(selection, &slots, &[set], &[row_count], session, params);
        let candidates = p
            .levels
            .first()
            .and_then(|(_, access)| plan::static_candidates(access, set));
        let out = match candidates {
            Some(positions) => {
                self.scan_stats
                    .index_hits
                    .fetch_add(1, AtomicOrdering::Relaxed);
                positions
            }
            None => {
                self.scan_stats
                    .index_misses
                    .fetch_add(1, AtomicOrdering::Relaxed);
                (0..row_count).collect()
            }
        };
        self.scan_stats
            .rows_scanned
            .fetch_add(out.len() as u64, AtomicOrdering::Relaxed);
        out
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn exec_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
        session: &SessionCtx,
        state: &mut ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
        stmt_key: usize,
    ) -> Result<()> {
        // `INSERT inserted/deleted` is nonsense we reject early.
        if table.eq_ignore_ascii_case("inserted") || table.eq_ignore_ascii_case("deleted") {
            return Err(Error::exec("cannot modify trigger pseudo-tables"));
        }
        let (key, checked) = {
            let rd = self.read();
            let key = Self::resolve_in(&rd.db, table, session)?;
            let lowered = state.lowered;
            // Immutable phase: compute the source rows.
            let source_rows: Vec<Row> = {
                let ctx = rd.ctx(session, state);
                match source {
                    InsertSource::Values(rows) => {
                        match exec::plan_insert(&ctx, lowered, stmt_key, rows) {
                            Some(ci) => exec::eval_insert_rows(&ctx, &ci)?,
                            None => {
                                let env = RowEnv::empty();
                                let mut acc = Vec::with_capacity(rows.len());
                                for exprs in rows {
                                    let mut row = Vec::with_capacity(exprs.len());
                                    for e in exprs {
                                        row.push(eval_expr(&ctx, &env, e)?);
                                    }
                                    acc.push(row);
                                }
                                acc
                            }
                        }
                    }
                    InsertSource::Select(sel) => exec::run_select_exec(&ctx, sel, lowered)?.1,
                }
            };
            let t = rd.db.table(&key).expect("resolved");
            // Shape the rows to the full schema.
            let schema = &t.schema;
            let mut shaped = Vec::with_capacity(source_rows.len());
            for row in source_rows {
                let full = match columns {
                    None => row,
                    Some(cols) => {
                        if cols.len() != row.len() {
                            return Err(Error::Shape {
                                msg: format!(
                                    "INSERT lists {} columns but supplies {} values",
                                    cols.len(),
                                    row.len()
                                ),
                            });
                        }
                        let mut full = vec![Value::Null; schema.len()];
                        for (c, v) in cols.iter().zip(row) {
                            let idx = schema.index_of(c).ok_or_else(|| Error::NotFound {
                                kind: ObjectKind::Column,
                                name: c.clone(),
                            })?;
                            full[idx] = v;
                        }
                        full
                    }
                };
                shaped.push(full);
            }
            // Validate all rows before mutating anything (statement
            // atomicity).
            let mut checked = Vec::with_capacity(shaped.len());
            for row in shaped {
                checked.push(t.check_row(row)?);
            }
            // Mutation phase: all row-read guards from the compute phase
            // have been released; the rows write-lock release below
            // happens-before any notification the trigger will enqueue.
            // `append` checks unique indexes before any row lands.
            t.write().append(&checked)?;
            (key, checked)
        };
        out.results.push(QueryResult::affected(checked.len()));
        self.fire_trigger(
            &key,
            TriggerOp::Insert,
            checked,
            Vec::new(),
            session,
            state,
            out,
            depth,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_update(
        &self,
        table: &str,
        assignments: &[(String, crate::ast::Expr)],
        selection: Option<&crate::ast::Expr>,
        session: &SessionCtx,
        state: &mut ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
        stmt_key: usize,
    ) -> Result<()> {
        if table.eq_ignore_ascii_case("inserted") || table.eq_ignore_ascii_case("deleted") {
            return Err(Error::exec("cannot modify trigger pseudo-tables"));
        }
        let (key, old_rows, new_rows) = {
            let rd = self.read();
            let key = Self::resolve_in(&rd.db, table, session)?;
            let t = rd.db.table(&key).expect("resolved");
            let lowered = state.lowered;
            // Immutable phase: find matching rows and compute replacements.
            // Candidates come from an index probe when the WHERE clause
            // allows it; the full predicate is still evaluated per candidate.
            let mut updates: Vec<(usize, Row)> = Vec::new();
            let mut old_rows = Vec::new();
            let mut new_rows = Vec::new();
            {
                let ctx = rd.ctx(session, state);
                let rows = t.rows();
                let set = t.index_set();
                let candidates =
                    self.dml_candidates(t, &set, rows.len(), selection, session, state.params);
                match exec::plan_update(&ctx, lowered, stmt_key, t, assignments, selection) {
                    Some(cu) => {
                        let (u, o, n) =
                            exec::run_update_compiled(&ctx, &cu, t, &rows, &candidates)?;
                        updates = u;
                        old_rows = o;
                        new_rows = n;
                    }
                    None => {
                        for i in candidates {
                            let row = &rows[i];
                            let env = RowEnv {
                                frames: vec![Frame {
                                    alias: None,
                                    table_name: t.name.clone(),
                                    schema: &t.schema,
                                    row,
                                }],
                                parent: None,
                            };
                            let matches = match selection {
                                Some(cond) => eval_expr(&ctx, &env, cond)?.is_truthy(),
                                None => true,
                            };
                            if !matches {
                                continue;
                            }
                            let mut new_row = row.clone();
                            for (col, e) in assignments {
                                let idx =
                                    t.schema.index_of(col).ok_or_else(|| Error::NotFound {
                                        kind: ObjectKind::Column,
                                        name: col.clone(),
                                    })?;
                                new_row[idx] = eval_expr(&ctx, &env, e)?;
                            }
                            let new_row = t.check_row(new_row)?;
                            old_rows.push(row.clone());
                            new_rows.push(new_row.clone());
                            updates.push((i, new_row));
                        }
                    }
                }
            }
            t.write().apply_updates(&updates)?;
            (key, old_rows, new_rows)
        };
        out.results.push(QueryResult::affected(new_rows.len()));
        self.fire_trigger(
            &key,
            TriggerOp::Update,
            new_rows,
            old_rows,
            session,
            state,
            out,
            depth,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_delete(
        &self,
        table: &str,
        selection: Option<&crate::ast::Expr>,
        session: &SessionCtx,
        state: &mut ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
        stmt_key: usize,
    ) -> Result<()> {
        if table.eq_ignore_ascii_case("inserted") || table.eq_ignore_ascii_case("deleted") {
            return Err(Error::exec("cannot modify trigger pseudo-tables"));
        }
        let (key, removed) = {
            let rd = self.read();
            let key = Self::resolve_in(&rd.db, table, session)?;
            let t = rd.db.table(&key).expect("resolved");
            let lowered = state.lowered;
            let mut doomed = Vec::new();
            {
                let ctx = rd.ctx(session, state);
                let rows = t.rows();
                let set = t.index_set();
                let candidates =
                    self.dml_candidates(t, &set, rows.len(), selection, session, state.params);
                match exec::plan_delete(&ctx, lowered, stmt_key, t, selection) {
                    Some(cd) => {
                        doomed = exec::run_delete_compiled(&ctx, &cd, &rows, &candidates)?;
                    }
                    None => {
                        for i in candidates {
                            let row = &rows[i];
                            let env = RowEnv {
                                frames: vec![Frame {
                                    alias: None,
                                    table_name: t.name.clone(),
                                    schema: &t.schema,
                                    row,
                                }],
                                parent: None,
                            };
                            let matches = match selection {
                                Some(cond) => eval_expr(&ctx, &env, cond)?.is_truthy(),
                                None => true,
                            };
                            if matches {
                                doomed.push(i);
                            }
                        }
                    }
                }
            }
            let removed: Vec<Row> = {
                let mut w = t.write();
                let removed = doomed.iter().map(|&i| w.rows()[i].clone()).collect();
                w.delete(&doomed);
                removed
            };
            (key, removed)
        };
        out.results.push(QueryResult::affected(removed.len()));
        self.fire_trigger(
            &key,
            TriggerOp::Delete,
            Vec::new(),
            removed,
            session,
            state,
            out,
            depth,
        )
    }

    /// Fire the native trigger for (table, op), if any. Statement-level:
    /// fires once per statement even when zero rows were affected, matching
    /// Sybase. Called only after the triggering statement's mutation is
    /// fully visible (its rows write-lock has been released), so any
    /// `syb_sendmsg` the body evaluates is ordered after row visibility.
    #[allow(clippy::too_many_arguments)]
    fn fire_trigger(
        &self,
        table_key: &str,
        op: TriggerOp,
        inserted: Vec<Row>,
        deleted: Vec<Row>,
        session: &SessionCtx,
        state: &mut ExecState<'_>,
        out: &mut BatchResult,
        depth: usize,
    ) -> Result<()> {
        if !self.config.fire_triggers {
            return Ok(());
        }
        let (def, schema) = {
            let db = self.db.read_recursive();
            match db.trigger_for(table_key, op) {
                Some(d) => {
                    let schema = db.table(table_key).expect("table exists").schema.clone();
                    (d.clone(), schema)
                }
                None => return Ok(()),
            }
        };
        if depth + 1 > self.config.max_depth {
            return Err(Error::TriggerDepth {
                limit: self.config.max_depth,
            });
        }
        state.scope.push(PseudoFrame {
            inserted: Table::with_rows("inserted", schema.clone(), inserted),
            deleted: Table::with_rows("deleted", schema, deleted),
        });
        let result = (|| {
            for s in &def.body {
                self.exec_stmt(s, session, state, out, depth + 1)?;
            }
            Ok(())
        })();
        state.scope.pop();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (Engine, SessionCtx) {
        (Engine::new(), SessionCtx::new("sentineldb", "sharma"))
    }

    fn run(e: &mut Engine, s: &SessionCtx, sql: &str) -> BatchResult {
        e.execute(sql, s)
            .unwrap_or_else(|err| panic!("{sql}: {err}"))
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let (mut e, s) = engine();
        run(
            &mut e,
            &s,
            "create table stock (symbol varchar(10), price float)",
        );
        run(
            &mut e,
            &s,
            "insert stock values ('IBM', 100.0), ('HP', 50.5)",
        );
        let r = run(
            &mut e,
            &s,
            "select symbol, price from stock order by symbol",
        );
        let sel = r.last_select().unwrap();
        let names: Vec<&str> = sel.columns.iter().map(|c| &**c).collect();
        assert_eq!(names, ["symbol", "price"]);
        assert_eq!(sel.rows.len(), 2);
        assert_eq!(sel.rows[0][0], Value::Str("HP".into()));
    }

    #[test]
    fn where_filters() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int)");
        run(&mut e, &s, "insert t values (1, 10), (2, 20), (3, 30)");
        let r = run(&mut e, &s, "select a from t where b >= 20");
        assert_eq!(r.last_select().unwrap().rows.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int)");
        run(&mut e, &s, "insert t values (1, 10), (2, 20)");
        let r = run(&mut e, &s, "update t set b = b + 1 where a = 1");
        assert_eq!(r.total_affected(), 1);
        let r = run(&mut e, &s, "select b from t where a = 1");
        assert_eq!(r.scalar(), Some(&Value::Int(11)));
        let r = run(&mut e, &s, "delete t where a = 2");
        assert_eq!(r.total_affected(), 1);
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn select_into_clones_schema_with_zero_rows() {
        // The Figure 11 idiom.
        let (mut e, s) = engine();
        run(
            &mut e,
            &s,
            "create table stock (symbol varchar(10), price float)",
        );
        run(&mut e, &s, "insert stock values ('IBM', 1.0)");
        run(
            &mut e,
            &s,
            "select * into sentineldb.sharma.stock_inserted from stock where 1=2",
        );
        run(
            &mut e,
            &s,
            "alter table sentineldb.sharma.stock_inserted add vNo int null",
        );
        let db = e.database();
        let t = db.table("sentineldb.sharma.stock_inserted").unwrap();
        assert_eq!(t.schema.len(), 3);
        assert_eq!(t.row_count(), 0);
        assert_eq!(&*t.schema.columns[2].name, "vNo");
    }

    #[test]
    fn insert_select_star_from_join() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table a (x int)");
        run(&mut e, &s, "create table v (vno int)");
        run(&mut e, &s, "create table shadow (x int, vno int)");
        run(&mut e, &s, "insert a values (1), (2)");
        run(&mut e, &s, "insert v values (7)");
        run(&mut e, &s, "insert shadow select * from a, v");
        let r = run(&mut e, &s, "select x, vno from shadow order by x");
        let sel = r.last_select().unwrap();
        assert_eq!(
            sel.rows,
            vec![
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(2), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn native_trigger_fires_and_sees_inserted() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "create table log (a int)");
        run(
            &mut e,
            &s,
            "create trigger tr on t for insert as insert log select * from inserted print 'fired'",
        );
        let r = run(&mut e, &s, "insert t values (5), (6)");
        assert_eq!(r.messages, vec!["fired"]);
        let r = run(&mut e, &s, "select count(*) from log");
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn update_trigger_sees_old_and_new() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "create table log (old_a int, new_a int)");
        run(&mut e, &s, "insert t values (1)");
        run(
            &mut e,
            &s,
            "create trigger tr on t for update as insert log select deleted.a, inserted.a from deleted, inserted",
        );
        run(&mut e, &s, "update t set a = 9");
        let r = run(&mut e, &s, "select old_a, new_a from log");
        assert_eq!(
            r.last_select().unwrap().rows[0],
            vec![Value::Int(1), Value::Int(9)]
        );
    }

    #[test]
    fn delete_trigger_sees_deleted() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "create table log (a int)");
        run(&mut e, &s, "insert t values (1), (2)");
        run(
            &mut e,
            &s,
            "create trigger tr on t for delete as insert log select a from deleted",
        );
        run(&mut e, &s, "delete t where a = 1");
        let r = run(&mut e, &s, "select a from log");
        assert_eq!(r.last_select().unwrap().rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn trigger_fires_even_for_zero_rows() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(
            &mut e,
            &s,
            "create trigger tr on t for delete as print 'statement trigger'",
        );
        let r = run(&mut e, &s, "delete t where a = 999");
        assert_eq!(r.messages, vec!["statement trigger"]);
    }

    #[test]
    fn trigger_nesting_limit() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        // Self-recursive trigger: insert into t fires the trigger, which
        // inserts into t again.
        run(
            &mut e,
            &s,
            "create trigger tr on t for insert as insert t values (1)",
        );
        let err = e.execute("insert t values (0)", &s).unwrap_err();
        assert!(matches!(err, Error::TriggerDepth { .. }));
    }

    #[test]
    fn procedure_execute() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(
            &mut e,
            &s,
            "create procedure addone as insert t values (1) print 'done'",
        );
        let r = run(&mut e, &s, "execute addone");
        assert_eq!(r.messages, vec!["done"]);
        let r = run(&mut e, &s, "exec addone");
        assert_eq!(r.messages, vec!["done"]);
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn session_prefix_resolution() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table sentineldb.sharma.stock (a int)");
        run(&mut e, &s, "insert stock values (1)");
        let r = run(&mut e, &s, "select a from sentineldb.sharma.stock");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn getdate_is_monotonic() {
        let (mut e, s) = engine();
        let r1 = run(&mut e, &s, "select getdate()");
        let r2 = run(&mut e, &s, "select getdate()");
        match (r1.scalar(), r2.scalar()) {
            (Some(Value::DateTime(a)), Some(Value::DateTime(b))) => assert!(b > a),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sendmsg_posts_to_sink() {
        use crate::notify::CollectingSink;
        let (mut e, s) = engine();
        let sink = CollectingSink::new();
        e.set_sink(sink.clone());
        run(
            &mut e,
            &s,
            "select syb_sendmsg('128.227.205.215', 10006, 'hello agent')",
        );
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].port, 10006);
        assert_eq!(got[0].payload, "hello agent");
    }

    #[test]
    fn sendmsg_without_sink_is_noop() {
        let (mut e, s) = engine();
        let r = run(&mut e, &s, "select syb_sendmsg('h', 1, 'x')");
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn transactions_rollback() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1)");
        run(&mut e, &s, "begin tran insert t values (2) rollback");
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        run(&mut e, &s, "begin tran insert t values (2) commit");
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn transaction_errors() {
        let (mut e, s) = engine();
        assert!(e.execute("commit", &s).is_err());
        assert!(e.execute("rollback", &s).is_err());
        run(&mut e, &s, "begin tran");
        assert!(e.execute("begin tran", &s).is_err());
    }

    #[test]
    fn if_and_while() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(
            &mut e,
            &s,
            "while (select count(*) from t) < 3 insert t values (1)",
        );
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        let r = run(
            &mut e,
            &s,
            "if (select count(*) from t) = 3 print 'three' else print 'not three'",
        );
        assert_eq!(r.messages, vec!["three"]);
    }

    #[test]
    fn while_iteration_guard() {
        let (mut e, s) = engine();
        let cfg = EngineConfig {
            max_while_iterations: 10,
            ..EngineConfig::default()
        };
        let mut e2 = Engine::with_config(cfg);
        run(&mut e2, &s, "create table t (a int)");
        assert!(e2.execute("while 1 = 1 insert t values (1)", &s).is_err());
        let _ = &mut e;
    }

    #[test]
    fn group_by_and_having() {
        let (mut e, s) = engine();
        run(
            &mut e,
            &s,
            "create table trades (symbol varchar(8), qty int)",
        );
        run(
            &mut e,
            &s,
            "insert trades values ('IBM', 10), ('IBM', 20), ('HP', 5)",
        );
        let r = run(
            &mut e,
            &s,
            "select symbol, sum(qty) total from trades group by symbol having count(*) > 1",
        );
        let sel = r.last_select().unwrap();
        assert_eq!(sel.rows.len(), 1);
        assert_eq!(sel.rows[0], vec![Value::Str("IBM".into()), Value::Int(30)]);
    }

    #[test]
    fn aggregates_over_empty_table() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        let r = run(
            &mut e,
            &s,
            "select count(*), sum(a), avg(a), min(a), max(a) from t",
        );
        let row = &r.last_select().unwrap().rows[0];
        assert_eq!(row[0], Value::Int(0));
        assert!(row[1].is_null());
        assert!(row[2].is_null());
    }

    #[test]
    fn distinct_and_order_desc() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (2), (1), (2), (3)");
        let r = run(&mut e, &s, "select distinct a from t order by a desc");
        let rows: Vec<i64> = r
            .last_select()
            .unwrap()
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(rows, vec![3, 2, 1]);
    }

    #[test]
    fn exists_and_scalar_subquery() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1), (2)");
        let r = run(
            &mut e,
            &s,
            "select a from t where exists (select * from t where a = 2) order by a",
        );
        assert_eq!(r.last_select().unwrap().rows.len(), 2);
        let r = run(
            &mut e,
            &s,
            "select a from t where a = (select max(a) from t)",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table a (x int)");
        run(&mut e, &s, "create table b (x int)");
        run(&mut e, &s, "insert a values (1)");
        run(&mut e, &s, "insert b values (2)");
        let err = e.execute("select x from a, b", &s).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        // Qualification resolves it.
        let r = run(&mut e, &s, "select a.x from a, b");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1)");
        assert!(e.execute("select * from t group by a", &s).is_err());
    }

    #[test]
    fn order_by_ordinal_out_of_range() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1)");
        assert!(e.execute("select a from t order by 2", &s).is_err());
        assert!(e.execute("select a from t order by 0", &s).is_err());
    }

    #[test]
    fn unknown_function_reports_name() {
        let (e, s) = engine();
        let err = e.execute("select frobnicate(1)", &s).unwrap_err();
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn scalar_subquery_cardinality_errors() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int)");
        run(&mut e, &s, "insert t values (1, 1), (2, 2)");
        // Too many rows.
        let err = e
            .execute("select 1 where 1 = (select a from t)", &s)
            .unwrap_err();
        assert!(err.to_string().contains("rows"), "{err}");
        // Too many columns.
        let err = e
            .execute("select 1 where 1 = (select a, b from t where a = 1)", &s)
            .unwrap_err();
        assert!(err.to_string().contains("column"), "{err}");
        // Empty result is NULL (filters everything out, no error).
        let r = run(
            &mut e,
            &s,
            "select count(*) from t where a = (select a from t where a = 99)",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn empty_from_select_evaluates_expressions() {
        let (mut e, s) = engine();
        let r = run(&mut e, &s, "select 1 + 2, 'a' + 'b', 10 / 4, 10.0 / 4");
        let row = &r.last_select().unwrap().rows[0];
        assert_eq!(row[0], Value::Int(3));
        assert_eq!(row[1], Value::Str("ab".into()));
        assert_eq!(row[2], Value::Int(2), "integer division truncates");
        assert_eq!(row[3], Value::Float(2.5));
    }

    #[test]
    fn correlated_subquery_sees_outer_row() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table dept (id int, name varchar(10))");
        run(&mut e, &s, "create table emp (dept_id int, salary int)");
        run(&mut e, &s, "insert dept values (1, 'eng'), (2, 'ops')");
        run(&mut e, &s, "insert emp values (1, 100), (1, 200), (2, 50)");
        let r = run(
            &mut e,
            &s,
            "select name from dept \
             where (select sum(salary) from emp where emp.dept_id = dept.id) > 150",
        );
        assert_eq!(r.scalar(), Some(&Value::Str("eng".into())));
    }

    #[test]
    fn correlated_exists() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table a (x int)");
        run(&mut e, &s, "create table b (x int)");
        run(&mut e, &s, "insert a values (1), (2), (3)");
        run(&mut e, &s, "insert b values (2), (3)");
        let r = run(
            &mut e,
            &s,
            "select a.x from a where exists (select * from b where b.x = a.x) order by x",
        );
        assert_eq!(
            r.last_select().unwrap().rows,
            vec![vec![Value::Int(2)], vec![Value::Int(3)]]
        );
        // NOT EXISTS via `not`.
        let r = run(
            &mut e,
            &s,
            "select a.x from a where not exists (select * from b where b.x = a.x)",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn inner_frame_shadows_outer_in_subquery() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (x int)");
        run(&mut e, &s, "insert t values (1), (2)");
        // Unqualified `x` inside the subquery binds to the inner t, so the
        // subquery is uncorrelated and returns max over all rows.
        let r = run(
            &mut e,
            &s,
            "select count(*) from t where x = (select max(x) from t)",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn batch_go_separators() {
        let (mut e, s) = engine();
        let r = run(
            &mut e,
            &s,
            "create table t (a int)\ngo\ninsert t values (1)\ngo\nselect a from t\n",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn error_stops_execution() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        let err = e
            .execute("insert t values (1) insert nosuch values (2)", &s)
            .unwrap_err();
        assert!(matches!(err, Error::NotFound { .. }));
        // First insert persisted (no implicit transaction).
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn cannot_modify_pseudo_tables() {
        let (e, s) = engine();
        assert!(e.execute("insert inserted values (1)", &s).is_err());
        assert!(e.execute("delete deleted", &s).is_err());
        assert!(e.execute("update inserted set a = 1", &s).is_err());
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int, c varchar(5))");
        run(&mut e, &s, "insert t (c, a) values ('x', 1)");
        let r = run(&mut e, &s, "select a, b, c from t");
        let row = &r.last_select().unwrap().rows[0];
        assert_eq!(row[0], Value::Int(1));
        assert!(row[1].is_null());
        assert_eq!(row[2], Value::Str("x".into()));
    }

    #[test]
    fn insert_atomicity_on_bad_row() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int not null)");
        let err = e.execute("insert t values (1), (null)", &s).unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }));
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(0)), "no partial insert");
    }

    #[test]
    fn fire_triggers_can_be_disabled() {
        let s = SessionCtx::new("db", "u");
        let cfg = EngineConfig {
            fire_triggers: false,
            ..EngineConfig::default()
        };
        let mut e = Engine::with_config(cfg);
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "create trigger tr on t for insert as print 'x'");
        let r = run(&mut e, &s, "insert t values (1)");
        assert!(r.messages.is_empty());
    }

    #[test]
    fn print_expression() {
        let (mut e, s) = engine();
        let r = run(&mut e, &s, "print 'a' + 'b'");
        assert_eq!(r.messages, vec!["ab"]);
    }

    #[test]
    fn db_and_user_name_builtins() {
        let (mut e, s) = engine();
        let r = run(&mut e, &s, "select db_name(), user_name()");
        let row = &r.last_select().unwrap().rows[0];
        assert_eq!(row[0], Value::Str("sentineldb".into()));
        assert_eq!(row[1], Value::Str("sharma".into()));
    }

    #[test]
    fn comma_join_with_where() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table a (x int)");
        run(&mut e, &s, "create table b (x int, y varchar(5))");
        run(&mut e, &s, "insert a values (1), (2)");
        run(&mut e, &s, "insert b values (1, 'one'), (2, 'two')");
        let r = run(
            &mut e,
            &s,
            "select b.y from a, b where a.x = b.x and a.x = 2",
        );
        assert_eq!(r.scalar(), Some(&Value::Str("two".into())));
    }

    #[test]
    fn select_into_duplicate_column_names_get_suffixed() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table a (v int)");
        run(&mut e, &s, "create table b (v int)");
        run(&mut e, &s, "insert a values (1)");
        run(&mut e, &s, "insert b values (2)");
        run(&mut e, &s, "select * into c from a, b");
        let db = e.database();
        let t = db.table("c").unwrap();
        assert_eq!(&*t.schema.columns[0].name, "v");
        assert_eq!(&*t.schema.columns[1].name, "v2");
    }

    #[test]
    fn truncate_does_not_fire_triggers() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1)");
        run(&mut e, &s, "create trigger tr on t for delete as print 'x'");
        let r = run(&mut e, &s, "truncate table t");
        assert!(r.messages.is_empty());
        assert_eq!(r.total_affected(), 1);
    }

    #[test]
    fn create_index_ddl_and_point_lookup() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b varchar(5))");
        run(&mut e, &s, "insert t values (1, 'x'), (2, 'y'), (3, 'z')");
        run(&mut e, &s, "create index ix_a on t (a)");
        let misses_before = e.scan_stats().misses();
        let hits_before = e.scan_stats().hits();
        let r = run(&mut e, &s, "select b from t where a = 2");
        assert_eq!(r.scalar(), Some(&Value::Str("y".into())));
        assert!(e.scan_stats().hits() > hits_before, "probe counted as hit");
        assert_eq!(e.scan_stats().misses(), misses_before);
        // Range probe through the ordered index.
        let r = run(&mut e, &s, "select count(*) from t where a between 2 and 3");
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        run(&mut e, &s, "drop index ix_a");
        let misses_before = e.scan_stats().misses();
        let r = run(&mut e, &s, "select b from t where a = 2");
        assert_eq!(r.scalar(), Some(&Value::Str("y".into())));
        assert!(e.scan_stats().misses() > misses_before, "back to scanning");
        assert!(e.execute("drop index ix_a", &s).is_err(), "already gone");
    }

    #[test]
    fn unique_index_rejects_duplicates_via_sql() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int)");
        run(&mut e, &s, "insert t values (1, 10)");
        run(&mut e, &s, "create unique hash index ux_a on t (a)");
        let err = e.execute("insert t values (1, 99)", &s).unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }), "{err}");
        let r = run(&mut e, &s, "select count(*) from t");
        assert_eq!(r.scalar(), Some(&Value::Int(1)), "no partial insert");
        // UPDATE into a collision is rejected too ...
        run(&mut e, &s, "insert t values (2, 20)");
        let err = e.execute("update t set a = 1 where a = 2", &s).unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }), "{err}");
        // ... but an update that vacates and reuses a key within the same
        // statement is fine.
        run(&mut e, &s, "update t set a = a + 10");
        let r = run(&mut e, &s, "select count(*) from t where a = 11");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn create_unique_index_on_duplicate_data_fails() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "insert t values (1), (1)");
        let err = e
            .execute("create unique index ux on t (a)", &s)
            .unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }), "{err}");
        // The failed index was not installed.
        run(&mut e, &s, "create index ux on t (a)");
    }

    #[test]
    fn indexed_update_and_delete_match_scan_semantics() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int, b int)");
        run(&mut e, &s, "insert t values (1, 1), (2, 2), (3, 3), (2, 4)");
        run(&mut e, &s, "create index ix on t (a)");
        let r = run(&mut e, &s, "update t set b = 0 where a = 2");
        assert_eq!(r.total_affected(), 2);
        let r = run(&mut e, &s, "delete t where a = 2");
        assert_eq!(r.total_affected(), 2);
        let r = run(&mut e, &s, "select a from t order by a");
        assert_eq!(
            r.last_select().unwrap().rows,
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn index_survives_transaction_rollback() {
        let (mut e, s) = engine();
        run(&mut e, &s, "create table t (a int)");
        run(&mut e, &s, "create index ix on t (a)");
        run(&mut e, &s, "insert t values (1)");
        run(&mut e, &s, "begin tran insert t values (2) rollback");
        // The snapshot restore must leave a consistent index: the probe
        // below must not see the rolled-back row.
        let r = run(&mut e, &s, "select count(*) from t where a = 2");
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
        let r = run(&mut e, &s, "select count(*) from t where a = 1");
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn params_bind_in_run_stmts() {
        let (e, s) = engine();
        e.execute("create table t (a int, b varchar(5))", &s)
            .unwrap();
        // Simulate what the plan cache does: parse a masked batch and run
        // it twice with different bindings.
        let masked = crate::parser::parse_script("insert t values (0, '')").unwrap();
        let stmts: Vec<Stmt> = masked
            .into_iter()
            .map(|st| match st {
                Stmt::Insert { table, columns, .. } => Stmt::Insert {
                    table,
                    columns,
                    source: InsertSource::Values(vec![vec![
                        crate::ast::Expr::Param(0),
                        crate::ast::Expr::Param(1),
                    ]]),
                },
                other => other,
            })
            .collect();
        let mut out = BatchResult::default();
        e.run_stmts(
            &stmts,
            &[Value::Int(1), Value::Str("one".into())],
            &s,
            &mut out,
        )
        .unwrap();
        e.run_stmts(
            &stmts,
            &[Value::Int(2), Value::Str("two".into())],
            &s,
            &mut out,
        )
        .unwrap();
        let r = e.execute("select a, b from t order by a", &s).unwrap();
        let sel = r.last_select().unwrap();
        assert_eq!(
            sel.rows,
            vec![
                vec![Value::Int(1), Value::Str("one".into())],
                vec![Value::Int(2), Value::Str("two".into())],
            ]
        );
        // Unbound parameter is a hard error, not silent NULL.
        let mut out = BatchResult::default();
        assert!(e.run_stmts(&stmts, &[Value::Int(9)], &s, &mut out).is_err());
    }
}
