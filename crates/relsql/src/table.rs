//! In-memory tables: schemas and row storage.
//!
//! Row storage is interior-mutable (`RwLock<Vec<Row>>`) so the engine can be
//! shared (`&Engine`) across sessions: the server's per-table lock groups
//! serialize conflicting *batches*, while the row lock only guards the short
//! critical section of a single statement's read or mutation. Read paths use
//! `read_recursive` so a statement that re-reads a table it is already
//! scanning (e.g. `insert t select * from t`) cannot deadlock against a
//! queued writer.

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::ast::ColumnDef;
use crate::error::{Error, ObjectKind, Result};
use crate::value::{DataType, Value};

/// A single column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl From<&ColumnDef> for Column {
    fn from(def: &ColumnDef) -> Self {
        Column {
            name: def.name.clone(),
            data_type: def.data_type,
            nullable: def.nullable,
        }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A row is a vector of values, positionally matching the schema.
pub type Row = Vec<Value>;

/// A heap table: schema plus rows behind a per-table row lock.
#[derive(Debug)]
pub struct Table {
    /// Canonical (as-created) full name, possibly dotted.
    pub name: String,
    pub schema: Schema,
    rows: RwLock<Vec<Row>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: RwLock::new(self.rows.read_recursive().clone()),
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name || self.schema != other.schema {
            return false;
        }
        if std::ptr::eq(self, other) {
            return true;
        }
        *self.rows.read_recursive() == *other.rows.read_recursive()
    }
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: RwLock::new(Vec::new()),
        }
    }

    /// Build a table pre-populated with rows (used for the trigger
    /// `inserted`/`deleted` pseudo-tables and SELECT INTO).
    pub fn with_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: RwLock::new(rows),
        }
    }

    /// Build a table from column definitions, validating uniqueness.
    pub fn from_defs(name: impl Into<String>, defs: &[ColumnDef]) -> Result<Self> {
        let name = name.into();
        if defs.is_empty() {
            return Err(Error::Shape {
                msg: format!("table '{name}' must have at least one column"),
            });
        }
        let mut columns: Vec<Column> = Vec::with_capacity(defs.len());
        for def in defs {
            if columns
                .iter()
                .any(|c| c.name.eq_ignore_ascii_case(&def.name))
            {
                return Err(Error::AlreadyExists {
                    kind: ObjectKind::Column,
                    name: def.name.clone(),
                });
            }
            columns.push(def.into());
        }
        Ok(Table::new(name, Schema::new(columns)))
    }

    /// Shared read access to the rows. Recursive so re-entrant reads within
    /// one statement never deadlock against a queued writer.
    pub fn rows(&self) -> RwLockReadGuard<'_, Vec<Row>> {
        self.rows.read_recursive()
    }

    /// Exclusive write access to the rows.
    pub fn rows_mut(&self) -> RwLockWriteGuard<'_, Vec<Row>> {
        self.rows.write()
    }

    /// Coerce and validate a row against the schema, then append it.
    pub fn insert_row(&mut self, row: Row) -> Result<()> {
        let coerced = self.check_row(row)?;
        self.rows.get_mut().push(coerced);
        Ok(())
    }

    /// Validate a row (arity, types, NOT NULL) and return the coerced copy.
    pub fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(Error::Shape {
                msg: format!(
                    "table '{}' expects {} values, got {}",
                    self.name,
                    self.schema.len(),
                    row.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            let v = v.coerce_to(col.data_type)?;
            if v.is_null() && !col.nullable {
                return Err(Error::Constraint {
                    msg: format!(
                        "column '{}' of table '{}' does not allow NULL",
                        col.name, self.name
                    ),
                });
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Add a column with NULL backfill (ALTER TABLE ADD).
    pub fn add_column(&mut self, def: &ColumnDef) -> Result<()> {
        if self.schema.index_of(&def.name).is_some() {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Column,
                name: def.name.clone(),
            });
        }
        if !def.nullable {
            return Err(Error::Constraint {
                msg: format!(
                    "cannot add NOT NULL column '{}' to non-empty table",
                    def.name
                ),
            });
        }
        self.schema.columns.push(def.into());
        for row in self.rows.get_mut().iter_mut() {
            row.push(Value::Null);
        }
        Ok(())
    }

    /// An empty clone of this table (schema only) under a new name — the
    /// engine's `SELECT * INTO new FROM t WHERE 1=2` building block.
    pub fn empty_like(&self, name: impl Into<String>) -> Table {
        Table::new(name, self.schema.clone())
    }

    pub fn row_count(&self) -> usize {
        self.rows.read_recursive().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "symbol".into(),
                data_type: DataType::Varchar(10),
                nullable: false,
            },
            ColumnDef {
                name: "price".into(),
                data_type: DataType::Float,
                nullable: true,
            },
        ]
    }

    #[test]
    fn from_defs_builds_schema() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        assert_eq!(t.schema.len(), 2);
        assert_eq!(t.schema.index_of("PRICE"), Some(1));
        assert!(t.schema.column("symbol").is_some());
        assert!(t.schema.column("missing").is_none());
    }

    #[test]
    fn empty_defs_rejected() {
        assert!(Table::from_defs("t", &[]).is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let mut d = defs();
        d.push(ColumnDef {
            name: "SYMBOL".into(),
            data_type: DataType::Int,
            nullable: true,
        });
        assert!(Table::from_defs("t", &d).is_err());
    }

    #[test]
    fn insert_coerces_types() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Int(100)])
            .unwrap();
        assert_eq!(t.rows()[0][1], Value::Float(100.0));
    }

    #[test]
    fn insert_enforces_not_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        let err = t
            .insert_row(vec![Value::Null, Value::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }));
    }

    #[test]
    fn insert_enforces_arity() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        assert!(t.insert_row(vec![Value::Str("IBM".into())]).is_err());
    }

    #[test]
    fn add_column_backfills_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        t.add_column(&ColumnDef {
            name: "vNo".into(),
            data_type: DataType::Int,
            nullable: true,
        })
        .unwrap();
        assert_eq!(t.schema.len(), 3);
        assert_eq!(t.rows()[0][2], Value::Null);
    }

    #[test]
    fn add_column_rejects_duplicates_and_not_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        assert!(t
            .add_column(&ColumnDef {
                name: "price".into(),
                data_type: DataType::Int,
                nullable: true,
            })
            .is_err());
        assert!(t
            .add_column(&ColumnDef {
                name: "x".into(),
                data_type: DataType::Int,
                nullable: false,
            })
            .is_err());
    }

    #[test]
    fn empty_like_copies_schema_only() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        let shadow = t.empty_like("stock_inserted");
        assert_eq!(shadow.name, "stock_inserted");
        assert_eq!(shadow.schema, t.schema);
        assert_eq!(shadow.row_count(), 0);
    }

    #[test]
    fn varchar_truncates_on_insert() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("VERYLONGSYMBOL".into()), Value::Float(1.0)])
            .unwrap();
        assert_eq!(t.rows()[0][0], Value::Str("VERYLONGSY".into()));
    }

    #[test]
    fn clone_snapshots_rows() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        let c = t.clone();
        assert_eq!(c, t);
        t.rows_mut().clear();
        assert_eq!(c.row_count(), 1);
        assert_ne!(c, t);
    }
}
