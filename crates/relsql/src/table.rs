//! In-memory tables: schemas, row storage, and per-table secondary indexes.
//!
//! Row storage is interior-mutable (`RwLock<Arc<Vec<Row>>>`) so the engine
//! can be shared (`&Engine`) across sessions: the server's per-table lock
//! groups serialize conflicting *batches*, while the row lock only guards
//! the short critical section of a single statement's read or mutation.
//! Read paths use `read_recursive` so a statement that re-reads a table it
//! is already scanning (e.g. `insert t select * from t`) cannot deadlock
//! against a queued writer.
//!
//! The `Arc` makes snapshots copy-on-write: `Table::clone` (used by
//! `BEGIN TRAN` to snapshot the whole database) is O(1) per table, and the
//! first mutation after a snapshot pays the one row-vector copy via
//! `Arc::make_mut`. The old eager `Vec` clone made `BEGIN TRAN` O(total
//! rows) on every transaction regardless of what it touched.
//!
//! Indexes live beside the rows under their own lock ([`IndexState`]).
//! **Lock order is always rows → indexes → published**; every path below
//! acquires the row lock (read or write) before touching the index lock,
//! and the published-version lock last, so the three can never deadlock
//! against each other. Engine DML maintains indexes incrementally through
//! [`TableWrite`]; foreign mutators that use the raw [`Table::rows_mut`]
//! escape hatch just mark the set dirty and the next probe rebuilds it
//! lazily.
//!
//! ## Published versions (MVCC)
//!
//! Beside the *live* rows every table keeps a **published** version: the
//! `(rows, indexes)` pair as of the last batch-consistent point. The server
//! calls [`Table::publish`] at the end of each write batch (while still
//! holding that batch's scheduling locks, so the pair it captures is never
//! a mid-batch state), and read-pure batches execute against [`Table::pinned`]
//! clones of the published version — sharing the `Arc`s, holding no locks,
//! and never observing a half-applied batch. The raw [`Table::rows_mut`]
//! escape hatch republishes on guard drop so direct writes (e.g. watermark
//! write-behind) cannot leave the published view stale forever.

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::ast::ColumnDef;
use crate::error::{Error, ObjectKind, Result};
use crate::index::{IndexDef, IndexSet, IndexState};
use crate::value::{DataType, Value};

/// A single column of a table schema. The name is interned (`Arc<str>`) so
/// per-statement output paths can reuse it without allocating.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: Arc<str>,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl AsRef<str>, data_type: DataType, nullable: bool) -> Self {
        Column {
            name: Arc::from(name.as_ref()),
            data_type,
            nullable,
        }
    }
}

impl From<&ColumnDef> for Column {
    fn from(def: &ColumnDef) -> Self {
        Column {
            name: Arc::from(def.name.as_str()),
            data_type: def.data_type,
            nullable: def.nullable,
        }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column names as shared handles (refcount bumps, no string copies).
    pub fn names(&self) -> Vec<Arc<str>> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A row is a vector of values, positionally matching the schema.
pub type Row = Vec<Value>;

/// The batch-consistent `(rows, indexes)` pair most recently published for
/// a table — what MVCC snapshot readers pin instead of the live state.
#[derive(Debug, Clone)]
struct TableVersion {
    rows: Arc<Vec<Row>>,
    indexes: IndexState,
}

/// A heap table: schema plus rows behind a per-table row lock, plus the
/// table's secondary indexes and its last published (batch-consistent)
/// version.
#[derive(Debug)]
pub struct Table {
    /// Canonical (as-created) full name, possibly dotted.
    pub name: String,
    pub schema: Schema,
    rows: RwLock<Arc<Vec<Row>>>,
    indexes: RwLock<IndexState>,
    published: RwLock<TableVersion>,
}

impl Clone for Table {
    /// O(1) copy-on-write snapshot: shares the row vector, the built
    /// index set, and the published version; whichever side mutates first
    /// pays the copy.
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: RwLock::new(Arc::clone(&self.rows.read_recursive())),
            indexes: RwLock::new(self.indexes.read_recursive().clone()),
            published: RwLock::new(self.published.read_recursive().clone()),
        }
    }
}

impl PartialEq for Table {
    /// Compares name, schema and rows. Indexes are derived state (they are
    /// rebuildable from the rows) and deliberately excluded.
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name || self.schema != other.schema {
            return false;
        }
        if std::ptr::eq(self, other) {
            return true;
        }
        *self.rows.read_recursive() == *other.rows.read_recursive()
    }
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let rows = Arc::new(Vec::new());
        Table {
            name: name.into(),
            schema,
            rows: RwLock::new(Arc::clone(&rows)),
            indexes: RwLock::new(IndexState::default()),
            published: RwLock::new(TableVersion {
                rows,
                indexes: IndexState::default(),
            }),
        }
    }

    /// Build a table pre-populated with rows (used for the trigger
    /// `inserted`/`deleted` pseudo-tables and SELECT INTO).
    pub fn with_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        let rows = Arc::new(rows);
        Table {
            name: name.into(),
            schema,
            rows: RwLock::new(Arc::clone(&rows)),
            indexes: RwLock::new(IndexState::default()),
            published: RwLock::new(TableVersion {
                rows,
                indexes: IndexState::default(),
            }),
        }
    }

    /// Build a table from column definitions, validating uniqueness.
    pub fn from_defs(name: impl Into<String>, defs: &[ColumnDef]) -> Result<Self> {
        let name = name.into();
        if defs.is_empty() {
            return Err(Error::Shape {
                msg: format!("table '{name}' must have at least one column"),
            });
        }
        let mut columns: Vec<Column> = Vec::with_capacity(defs.len());
        for def in defs {
            if columns
                .iter()
                .any(|c| c.name.eq_ignore_ascii_case(&def.name))
            {
                return Err(Error::AlreadyExists {
                    kind: ObjectKind::Column,
                    name: def.name.clone(),
                });
            }
            columns.push(def.into());
        }
        Ok(Table::new(name, Schema::new(columns)))
    }

    /// Shared read access to the rows. Recursive so re-entrant reads within
    /// one statement never deadlock against a queued writer.
    pub fn rows(&self) -> RowsReadGuard<'_> {
        RowsReadGuard(self.rows.read_recursive())
    }

    /// Exclusive write access to the raw rows — the escape hatch for
    /// callers outside the engine's DML paths. Marks the index set dirty;
    /// the next probe rebuilds it. Engine DML uses [`Table::write`]
    /// instead, which maintains indexes incrementally. The guard
    /// republishes the table on drop (single-table direct writes are their
    /// own batch, so the post-write state is batch-consistent by
    /// definition).
    pub fn rows_mut(&self) -> RowsWriteGuard<'_> {
        let guard = self.rows.write();
        self.indexes.write().dirty = true;
        RowsWriteGuard { table: self, guard }
    }

    /// Publish the current live `(rows, indexes)` pair as the new
    /// batch-consistent version that [`Table::pinned`] snapshots see.
    ///
    /// The caller must guarantee the live state *is* batch-consistent —
    /// the server calls this at batch end while still holding the batch's
    /// scheduling locks, so no concurrent writer can slip a half-applied
    /// statement into the captured pair.
    pub fn publish(&self) {
        let rows = self.rows.read_recursive();
        self.publish_version(Arc::clone(&rows));
    }

    /// Store `rows` plus the current index state as the published version.
    /// Callers hold the row lock (read or write), keeping the pair
    /// consistent; lock order rows → indexes → published.
    fn publish_version(&self, rows: Arc<Vec<Row>>) {
        let indexes = self.indexes.read().clone();
        *self.published.write() = TableVersion { rows, indexes };
    }

    /// An O(1) clone of the last *published* version — the MVCC read pin.
    /// Shares the published row vector and index set; never blocks on and
    /// is never blocked by live-row writers. If the published index state
    /// was dirty, the pinned table rebuilds it lazily over the pinned rows
    /// on first probe.
    pub fn pinned(&self) -> Table {
        let v = self.published.read_recursive().clone();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: RwLock::new(Arc::clone(&v.rows)),
            indexes: RwLock::new(v.indexes.clone()),
            published: RwLock::new(v),
        }
    }

    /// Open an index-maintaining write handle (engine DML entry point).
    /// Must not be called while holding a read guard from [`Table::rows`]
    /// on the same thread.
    pub fn write(&self) -> TableWrite<'_> {
        let rows = self.rows.write();
        let mut indexes = self.indexes.write();
        if indexes.dirty {
            Arc::make_mut(&mut indexes.set).rebuild(&rows);
            indexes.dirty = false;
        }
        TableWrite {
            table: self,
            rows,
            indexes,
        }
    }

    /// The table's built index set, rebuilt first if a foreign mutation
    /// left it stale. The returned handle stays valid after the internal
    /// locks drop; the row positions inside are only meaningful while the
    /// caller prevents concurrent mutation (holds a row guard or the
    /// server-level table lock).
    pub fn index_set(&self) -> Arc<IndexSet> {
        let rows = self.rows.read_recursive();
        {
            let st = self.indexes.read();
            if !st.dirty {
                return Arc::clone(&st.set);
            }
        }
        let mut st = self.indexes.write();
        if st.dirty {
            Arc::make_mut(&mut st.set).rebuild(&rows);
            st.dirty = false;
        }
        Arc::clone(&st.set)
    }

    /// Create and build a secondary index over the current rows.
    pub fn create_index(&self, def: IndexDef) -> Result<()> {
        let rows = self.rows.read_recursive();
        let mut st = self.indexes.write();
        if st.dirty {
            Arc::make_mut(&mut st.set).rebuild(&rows);
            st.dirty = false;
        }
        Arc::make_mut(&mut st.set).create(def, &self.schema, &rows)
    }

    /// Drop an index by name; `false` if this table does not have it.
    pub fn drop_index(&self, name: &str) -> bool {
        let _rows = self.rows.read_recursive();
        let mut st = self.indexes.write();
        Arc::make_mut(&mut st.set).drop(name)
    }

    /// Definitions of the table's indexes (catalog introspection).
    pub fn index_defs(&self) -> Vec<IndexDef> {
        let _rows = self.rows.read_recursive();
        self.indexes.read().set.defs().cloned().collect()
    }

    /// Coerce and validate a row against the schema, then append it.
    pub fn insert_row(&mut self, row: Row) -> Result<()> {
        let coerced = self.check_row(row)?;
        let rows = Arc::make_mut(self.rows.get_mut());
        let st = self.indexes.get_mut();
        if !st.set.is_empty() {
            if st.dirty {
                Arc::make_mut(&mut st.set).rebuild(rows);
                st.dirty = false;
            }
            let set = Arc::make_mut(&mut st.set);
            set.check_append(std::slice::from_ref(&coerced))?;
            set.append(rows.len(), std::slice::from_ref(&coerced));
        }
        rows.push(coerced);
        Ok(())
    }

    /// Validate a row (arity, types, NOT NULL) and return the coerced copy.
    pub fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(Error::Shape {
                msg: format!(
                    "table '{}' expects {} values, got {}",
                    self.name,
                    self.schema.len(),
                    row.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            let v = v.coerce_to(col.data_type)?;
            if v.is_null() && !col.nullable {
                return Err(Error::Constraint {
                    msg: format!(
                        "column '{}' of table '{}' does not allow NULL",
                        col.name, self.name
                    ),
                });
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Add a column with NULL backfill (ALTER TABLE ADD). Existing index
    /// columns keep their positions, so the built maps stay valid.
    pub fn add_column(&mut self, def: &ColumnDef) -> Result<()> {
        if self.schema.index_of(&def.name).is_some() {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Column,
                name: def.name.clone(),
            });
        }
        if !def.nullable {
            return Err(Error::Constraint {
                msg: format!(
                    "cannot add NOT NULL column '{}' to non-empty table",
                    def.name
                ),
            });
        }
        self.schema.columns.push(def.into());
        for row in Arc::make_mut(self.rows.get_mut()).iter_mut() {
            row.push(Value::Null);
        }
        Ok(())
    }

    /// An empty clone of this table (schema only) under a new name — the
    /// engine's `SELECT * INTO new FROM t WHERE 1=2` building block.
    pub fn empty_like(&self, name: impl Into<String>) -> Table {
        Table::new(name, self.schema.clone())
    }

    pub fn row_count(&self) -> usize {
        self.rows.read_recursive().len()
    }
}

/// Read guard over a table's rows (copy-on-write aware).
pub struct RowsReadGuard<'a>(RwLockReadGuard<'a, Arc<Vec<Row>>>);

impl std::ops::Deref for RowsReadGuard<'_> {
    type Target = Vec<Row>;
    fn deref(&self) -> &Vec<Row> {
        &self.0
    }
}

/// Write guard over a table's rows. `DerefMut` unshares the copy-on-write
/// vector on first use (`Arc::make_mut` is a refcount check when unique).
/// Republishes the table's version on drop, while still holding the row
/// lock, so snapshot readers always pin a whole direct write or none of it.
pub struct RowsWriteGuard<'a> {
    table: &'a Table,
    guard: RwLockWriteGuard<'a, Arc<Vec<Row>>>,
}

impl std::ops::Deref for RowsWriteGuard<'_> {
    type Target = Vec<Row>;
    fn deref(&self) -> &Vec<Row> {
        &self.guard
    }
}

impl std::ops::DerefMut for RowsWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Vec<Row> {
        Arc::make_mut(&mut self.guard)
    }
}

impl Drop for RowsWriteGuard<'_> {
    fn drop(&mut self) {
        self.table.publish_version(Arc::clone(&self.guard));
    }
}

/// An exclusive, index-maintaining write handle over one table. Holds both
/// the row and index locks for the duration of a statement's mutation so
/// matched row positions cannot go stale between matching and applying.
pub struct TableWrite<'a> {
    table: &'a Table,
    rows: RwLockWriteGuard<'a, Arc<Vec<Row>>>,
    indexes: RwLockWriteGuard<'a, IndexState>,
}

impl TableWrite<'_> {
    /// The rows as they currently stand (matching phase).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The clean, built index set (probe phase for UPDATE/DELETE).
    pub fn index_set(&self) -> &IndexSet {
        &self.indexes.set
    }

    /// Append pre-validated rows; unique indexes are checked before any
    /// row lands (statement atomicity).
    pub fn append(&mut self, new_rows: &[Row]) -> Result<()> {
        if !self.indexes.set.is_empty() {
            let set = Arc::make_mut(&mut self.indexes.set);
            set.check_append(new_rows)?;
            set.append(self.rows.len(), new_rows);
        }
        Arc::make_mut(&mut self.rows).extend_from_slice(new_rows);
        Ok(())
    }

    /// Replace the rows at the given positions; unique indexes are checked
    /// before any row changes.
    pub fn apply_updates(&mut self, updates: &[(usize, Row)]) -> Result<()> {
        if !self.indexes.set.is_empty() {
            let rows: &Vec<Row> = &self.rows;
            self.indexes.set.check_updates(rows, updates)?;
            let old: Vec<Row> = updates.iter().map(|(p, _)| rows[*p].clone()).collect();
            Arc::make_mut(&mut self.indexes.set).apply_updates(&old, updates);
        }
        let rows = Arc::make_mut(&mut self.rows);
        for (pos, new_row) in updates {
            rows[*pos] = new_row.clone();
        }
        Ok(())
    }

    /// Remove the rows at the given (ascending, deduped) positions.
    /// Positions shift, so the index maps are rebuilt — O(rows), the same
    /// order as the removal itself.
    pub fn delete(&mut self, positions: &[usize]) {
        let rows = Arc::make_mut(&mut self.rows);
        for pos in positions.iter().rev() {
            rows.remove(*pos);
        }
        if !self.indexes.set.is_empty() {
            Arc::make_mut(&mut self.indexes.set).rebuild(rows);
        }
    }

    /// Remove every row (TRUNCATE); index definitions survive.
    pub fn truncate(&mut self) {
        Arc::make_mut(&mut self.rows).clear();
        if !self.indexes.set.is_empty() {
            Arc::make_mut(&mut self.indexes.set).clear();
        }
    }

    pub fn table(&self) -> &Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexKey, IndexKind};

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "symbol".into(),
                data_type: DataType::Varchar(10),
                nullable: false,
            },
            ColumnDef {
                name: "price".into(),
                data_type: DataType::Float,
                nullable: true,
            },
        ]
    }

    #[test]
    fn from_defs_builds_schema() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        assert_eq!(t.schema.len(), 2);
        assert_eq!(t.schema.index_of("PRICE"), Some(1));
        assert!(t.schema.column("symbol").is_some());
        assert!(t.schema.column("missing").is_none());
    }

    #[test]
    fn empty_defs_rejected() {
        assert!(Table::from_defs("t", &[]).is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let mut d = defs();
        d.push(ColumnDef {
            name: "SYMBOL".into(),
            data_type: DataType::Int,
            nullable: true,
        });
        assert!(Table::from_defs("t", &d).is_err());
    }

    #[test]
    fn insert_coerces_types() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Int(100)])
            .unwrap();
        assert_eq!(t.rows()[0][1], Value::Float(100.0));
    }

    #[test]
    fn insert_enforces_not_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        let err = t
            .insert_row(vec![Value::Null, Value::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }));
    }

    #[test]
    fn insert_enforces_arity() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        assert!(t.insert_row(vec![Value::Str("IBM".into())]).is_err());
    }

    #[test]
    fn add_column_backfills_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        t.add_column(&ColumnDef {
            name: "vNo".into(),
            data_type: DataType::Int,
            nullable: true,
        })
        .unwrap();
        assert_eq!(t.schema.len(), 3);
        assert_eq!(t.rows()[0][2], Value::Null);
    }

    #[test]
    fn add_column_rejects_duplicates_and_not_null() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        assert!(t
            .add_column(&ColumnDef {
                name: "price".into(),
                data_type: DataType::Int,
                nullable: true,
            })
            .is_err());
        assert!(t
            .add_column(&ColumnDef {
                name: "x".into(),
                data_type: DataType::Int,
                nullable: false,
            })
            .is_err());
    }

    #[test]
    fn empty_like_copies_schema_only() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        let shadow = t.empty_like("stock_inserted");
        assert_eq!(shadow.name, "stock_inserted");
        assert_eq!(shadow.schema, t.schema);
        assert_eq!(shadow.row_count(), 0);
    }

    #[test]
    fn varchar_truncates_on_insert() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("VERYLONGSYMBOL".into()), Value::Float(1.0)])
            .unwrap();
        assert_eq!(t.rows()[0][0], Value::Str("VERYLONGSY".into()));
    }

    #[test]
    fn clone_snapshots_rows() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        let c = t.clone();
        assert_eq!(c, t);
        t.rows_mut().clear();
        assert_eq!(c.row_count(), 1);
        assert_ne!(c, t);
    }

    fn ix(name: &str, column: &str, unique: bool, kind: IndexKind) -> IndexDef {
        IndexDef {
            name: name.into(),
            column: column.into(),
            unique,
            kind,
        }
    }

    #[test]
    fn write_handle_maintains_indexes_incrementally() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.create_index(ix("i_sym", "symbol", false, IndexKind::Hash))
            .unwrap();
        let mut w = t.write();
        w.append(&[
            vec![Value::Str("IBM".into()), Value::Float(1.0)],
            vec![Value::Str("SUN".into()), Value::Float(2.0)],
        ])
        .unwrap();
        let probe = |w: &TableWrite<'_>, s: &str| {
            w.index_set()
                .best_for(0, false)
                .unwrap()
                .probe_eq(&IndexKey::Str(s.into()))
                .to_vec()
        };
        assert_eq!(probe(&w, "SUN"), vec![1]);
        w.apply_updates(&[(1, vec![Value::Str("HP".into()), Value::Float(2.0)])])
            .unwrap();
        assert_eq!(probe(&w, "SUN"), Vec::<usize>::new());
        assert_eq!(probe(&w, "HP"), vec![1]);
        w.delete(&[0]);
        assert_eq!(probe(&w, "HP"), vec![0], "rebuild shifted positions");
        w.truncate();
        assert_eq!(probe(&w, "HP"), Vec::<usize>::new());
        drop(w);
        assert_eq!(t.index_defs().len(), 1, "definitions survive truncate");
    }

    #[test]
    fn rows_mut_marks_dirty_and_probe_rebuilds() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.create_index(ix("i_sym", "symbol", false, IndexKind::Hash))
            .unwrap();
        t.rows_mut()
            .push(vec![Value::Str("IBM".into()), Value::Null]);
        let set = t.index_set();
        let hits = set
            .best_for(0, false)
            .unwrap()
            .probe_eq(&IndexKey::Str("IBM".into()));
        assert_eq!(hits, &[0], "lazy rebuild caught the foreign insert");
    }

    #[test]
    fn unique_index_enforced_through_write_handle() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.create_index(ix("u_sym", "symbol", true, IndexKind::Hash))
            .unwrap();
        let mut w = t.write();
        w.append(&[vec![Value::Str("IBM".into()), Value::Null]])
            .unwrap();
        let err = w
            .append(&[vec![Value::Str("IBM".into()), Value::Null]])
            .unwrap_err();
        assert!(matches!(err, Error::Constraint { .. }));
        assert_eq!(w.rows().len(), 1, "failed append left nothing behind");
    }

    #[test]
    fn clone_shares_until_mutation() {
        let mut t = Table::from_defs("stock", &defs()).unwrap();
        t.insert_row(vec![Value::Str("IBM".into()), Value::Float(1.0)])
            .unwrap();
        let snapshot = t.clone();
        // Mutating the original must not disturb the snapshot ...
        t.write()
            .append(&[vec![Value::Str("SUN".into()), Value::Float(2.0)]])
            .unwrap();
        assert_eq!(snapshot.row_count(), 1);
        assert_eq!(t.row_count(), 2);
        // ... and vice versa.
        snapshot.write().truncate();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn pinned_sees_published_version_not_live_rows() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.write()
            .append(&[vec![Value::Str("IBM".into()), Value::Float(1.0)]])
            .unwrap();
        // Engine DML (`write()`) does not publish — the server does that at
        // batch end — so a pin still sees the initial empty version.
        assert_eq!(t.pinned().row_count(), 0);
        t.publish();
        let pin = t.pinned();
        assert_eq!(pin.row_count(), 1);
        // Later live mutations never leak into an existing pin.
        t.write()
            .append(&[vec![Value::Str("SUN".into()), Value::Float(2.0)]])
            .unwrap();
        t.publish();
        assert_eq!(pin.row_count(), 1);
        assert_eq!(t.pinned().row_count(), 2);
    }

    #[test]
    fn rows_mut_republishes_on_drop() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.rows_mut()
            .push(vec![Value::Str("IBM".into()), Value::Null]);
        assert_eq!(
            t.pinned().row_count(),
            1,
            "direct writes republish when the guard drops"
        );
    }

    #[test]
    fn pinned_rebuilds_dirty_index_over_pinned_rows() {
        let t = Table::from_defs("stock", &defs()).unwrap();
        t.create_index(ix("i_sym", "symbol", false, IndexKind::Hash))
            .unwrap();
        t.rows_mut()
            .push(vec![Value::Str("IBM".into()), Value::Null]);
        let pin = t.pinned();
        // Mutate + republish the live table; the pin's lazy index rebuild
        // must use the pinned rows, not the new live ones.
        t.rows_mut()
            .push(vec![Value::Str("SUN".into()), Value::Null]);
        let set = pin.index_set();
        let hits = set
            .best_for(0, false)
            .unwrap()
            .probe_eq(&IndexKey::Str("IBM".into()));
        assert_eq!(hits, &[0]);
        assert!(set
            .best_for(0, false)
            .unwrap()
            .probe_eq(&IndexKey::Str("SUN".into()))
            .is_empty());
    }
}
