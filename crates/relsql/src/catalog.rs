//! The system catalog: tables, native triggers, and stored procedures.
//!
//! Names are case-insensitive; the catalog is keyed by the lowercased full
//! (possibly dotted) name while preserving the creation-time spelling for
//! display. Trigger semantics follow Sybase (§2.2 of the paper): at most one
//! trigger per (table, operation), and defining a new one **silently
//! overwrites** the previous one — the exact restriction the ECA Agent is
//! designed to lift.

use std::collections::HashMap;

use crate::ast::{Stmt, TriggerOp};
use crate::error::{Error, ObjectKind, Result};
use crate::index::IndexDef;
use crate::table::Table;

/// Canonical catalog key for a name.
pub fn name_key(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// A native trigger definition.
#[derive(Debug, Clone)]
pub struct TriggerDef {
    pub name: String,
    /// Canonical key of the table it watches.
    pub table_key: String,
    pub operation: TriggerOp,
    pub body: Vec<Stmt>,
    pub body_src: String,
}

/// A stored procedure definition.
#[derive(Debug, Clone)]
pub struct ProcedureDef {
    pub name: String,
    pub body: Vec<Stmt>,
    pub body_src: String,
}

/// One logical database: the unit the engine executes against.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    triggers: HashMap<String, TriggerDef>,
    /// (table_key, op) -> trigger name key; enforces the one-per-slot rule.
    trigger_slots: HashMap<(String, TriggerOp), String>,
    procedures: HashMap<String, ProcedureDef>,
    /// Secondary-index registry: index name key -> owning table key. Index
    /// names are database-wide (like trigger names), so `DROP INDEX name`
    /// can find the table without an `ON table` clause.
    indexes: HashMap<String, String>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------- tables

    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let key = name_key(&table.name);
        if self.tables.contains_key(&key) {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Table,
                name: table.name,
            });
        }
        self.tables.insert(key, table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        let key = self
            .resolve_table_key(name, None)
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Table,
                name: name.to_string(),
            })?;
        // Dropping a table drops its triggers, as in Sybase.
        let dropped: Vec<String> = self
            .triggers
            .values()
            .filter(|t| t.table_key == key)
            .map(|t| name_key(&t.name))
            .collect();
        for tkey in dropped {
            if let Some(def) = self.triggers.remove(&tkey) {
                self.trigger_slots.remove(&(def.table_key, def.operation));
            }
        }
        // ... and its indexes.
        self.indexes.retain(|_, table_key| *table_key != key);
        Ok(self.tables.remove(&key).expect("key was resolved"))
    }

    pub fn table(&self, key: &str) -> Option<&Table> {
        self.tables.get(key)
    }

    pub fn table_mut(&mut self, key: &str) -> Option<&mut Table> {
        self.tables.get_mut(key)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name_key(name))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Build a detached snapshot database holding the **published**
    /// versions of the given tables plus the given procedure definitions —
    /// the pinned footprint a read-pure batch executes against (see
    /// [`Table::pinned`]). The pins share `Arc`s; nothing is copied.
    ///
    /// Returns `None` if any key is missing: the classifier resolved every
    /// name against this same catalog moments ago, so a miss means
    /// concurrent DDL intervened and the caller must fall back to the
    /// locked lane.
    pub fn pin_published(
        &self,
        tables: &std::collections::BTreeSet<String>,
        procedures: &std::collections::BTreeSet<String>,
    ) -> Option<Database> {
        let mut snap = Database::new();
        for key in tables {
            let t = self.tables.get(key)?;
            snap.tables.insert(key.clone(), t.pinned());
        }
        for key in procedures {
            let p = self.procedures.get(key)?;
            snap.procedures.insert(key.clone(), p.clone());
        }
        Some(snap)
    }

    /// Publish every table's current live state as its batch-consistent
    /// version (see [`Table::publish`]). The server calls this at the end
    /// of exclusive (barrier) batches — DDL, transactions, recovery — where
    /// the precise write set is unknown.
    pub fn publish_all(&self) {
        for t in self.tables.values() {
            t.publish();
        }
    }

    /// Resolve a table reference to its catalog key.
    ///
    /// Resolution order: exact match; `db.user.name` expansion (when a
    /// session prefix is supplied); unique dotted-suffix match. The last rule
    /// lets the paper's examples say `stock` while the catalog holds
    /// `sentineldb.sharma.stock`.
    pub fn resolve_table_key(&self, name: &str, prefix: Option<(&str, &str)>) -> Option<String> {
        let key = name_key(name);
        if self.tables.contains_key(&key) {
            return Some(key);
        }
        if let Some((db, user)) = prefix {
            let expanded = name_key(&format!("{db}.{user}.{name}"));
            if self.tables.contains_key(&expanded) {
                return Some(expanded);
            }
        }
        let suffix = format!(".{key}");
        let mut matches = self.tables.keys().filter(|k| k.ends_with(&suffix));
        match (matches.next(), matches.next()) {
            (Some(k), None) => Some(k.clone()),
            _ => None,
        }
    }

    // ------------------------------------------------------------ indexes

    /// Create a secondary index on `table`. The table reference is resolved
    /// with the usual session rules; the index name is database-wide.
    pub fn create_index(
        &mut self,
        table: &str,
        def: IndexDef,
        prefix: Option<(&str, &str)>,
    ) -> Result<()> {
        let table_key = self
            .resolve_table_key(table, prefix)
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Table,
                name: table.to_string(),
            })?;
        let index_key = name_key(&def.name);
        if self.indexes.contains_key(&index_key) {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Index,
                name: def.name,
            });
        }
        self.tables
            .get(&table_key)
            .expect("key was resolved")
            .create_index(def)?;
        self.indexes.insert(index_key, table_key);
        Ok(())
    }

    /// Drop a secondary index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let index_key = name_key(name);
        let table_key = self
            .indexes
            .remove(&index_key)
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Index,
                name: name.to_string(),
            })?;
        if let Some(table) = self.tables.get(&table_key) {
            table.drop_index(name);
        }
        Ok(())
    }

    /// Catalog key of the table owning the named index, if any.
    pub fn index_table_key(&self, name: &str) -> Option<&str> {
        self.indexes.get(&name_key(name)).map(String::as_str)
    }

    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    // ----------------------------------------------------------- triggers

    /// Install a trigger with Sybase overwrite semantics: if a trigger
    /// already exists for the same (table, operation) slot it is silently
    /// replaced — no error, no warning (paper §2.2).
    pub fn create_trigger(&mut self, def: TriggerDef) -> Result<()> {
        let name_k = name_key(&def.name);
        // A different trigger (on another slot) may not reuse the name.
        if let Some(existing) = self.triggers.get(&name_k) {
            let same_slot =
                existing.table_key == def.table_key && existing.operation == def.operation;
            if !same_slot {
                return Err(Error::AlreadyExists {
                    kind: ObjectKind::Trigger,
                    name: def.name,
                });
            }
        }
        let slot = (def.table_key.clone(), def.operation);
        if let Some(old_name) = self.trigger_slots.insert(slot, name_k.clone()) {
            if old_name != name_k {
                self.triggers.remove(&old_name);
            }
        }
        self.triggers.insert(name_k, def);
        Ok(())
    }

    pub fn drop_trigger(&mut self, name: &str) -> Result<TriggerDef> {
        let key = name_key(name);
        let def = self.triggers.remove(&key).ok_or_else(|| Error::NotFound {
            kind: ObjectKind::Trigger,
            name: name.to_string(),
        })?;
        self.trigger_slots
            .remove(&(def.table_key.clone(), def.operation));
        Ok(def)
    }

    pub fn trigger(&self, name: &str) -> Option<&TriggerDef> {
        self.triggers.get(&name_key(name))
    }

    pub fn trigger_for(&self, table_key: &str, op: TriggerOp) -> Option<&TriggerDef> {
        self.trigger_slots
            .get(&(table_key.to_string(), op))
            .and_then(|n| self.triggers.get(n))
    }

    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    /// All trigger definitions, sorted by name (deterministic snapshots).
    pub fn trigger_defs(&self) -> Vec<&TriggerDef> {
        let mut defs: Vec<&TriggerDef> = self.triggers.values().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    // --------------------------------------------------------- procedures

    pub fn create_procedure(&mut self, def: ProcedureDef) -> Result<()> {
        let key = name_key(&def.name);
        if self.procedures.contains_key(&key) {
            return Err(Error::AlreadyExists {
                kind: ObjectKind::Procedure,
                name: def.name,
            });
        }
        self.procedures.insert(key, def);
        Ok(())
    }

    pub fn drop_procedure(&mut self, name: &str) -> Result<ProcedureDef> {
        self.procedures
            .remove(&name_key(name))
            .ok_or_else(|| Error::NotFound {
                kind: ObjectKind::Procedure,
                name: name.to_string(),
            })
    }

    /// Look up a procedure: exact name, then `db.user.name` expansion, then
    /// unique suffix match.
    pub fn procedure(&self, name: &str, prefix: Option<(&str, &str)>) -> Option<&ProcedureDef> {
        let key = name_key(name);
        if let Some(p) = self.procedures.get(&key) {
            return Some(p);
        }
        if let Some((db, user)) = prefix {
            if let Some(p) = self
                .procedures
                .get(&name_key(&format!("{db}.{user}.{name}")))
            {
                return Some(p);
            }
        }
        let suffix = format!(".{key}");
        let mut matches = self
            .procedures
            .values()
            .filter(|p| name_key(&p.name).ends_with(&suffix));
        match (matches.next(), matches.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    pub fn procedure_count(&self) -> usize {
        self.procedures.len()
    }

    /// All procedure definitions, sorted by name (deterministic snapshots).
    pub fn procedure_defs(&self) -> Vec<&ProcedureDef> {
        let mut defs: Vec<&ProcedureDef> = self.procedures.values().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;

    fn t(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![crate::table::Column {
                name: "a".into(),
                data_type: crate::value::DataType::Int,
                nullable: true,
            }]),
        )
    }

    fn trig(name: &str, table_key: &str, op: TriggerOp) -> TriggerDef {
        TriggerDef {
            name: name.into(),
            table_key: table_key.into(),
            operation: op,
            body: vec![],
            body_src: String::new(),
        }
    }

    #[test]
    fn table_lifecycle() {
        let mut db = Database::new();
        db.create_table(t("Stock")).unwrap();
        assert!(db.has_table("stock"));
        assert!(db.has_table("STOCK"));
        assert!(db.create_table(t("STOCK")).is_err());
        db.drop_table("Stock").unwrap();
        assert!(!db.has_table("stock"));
        assert!(db.drop_table("stock").is_err());
    }

    #[test]
    fn resolve_exact_prefix_suffix() {
        let mut db = Database::new();
        db.create_table(t("sentineldb.sharma.stock")).unwrap();
        assert_eq!(
            db.resolve_table_key("sentineldb.sharma.stock", None)
                .as_deref(),
            Some("sentineldb.sharma.stock")
        );
        assert_eq!(
            db.resolve_table_key("stock", Some(("sentineldb", "sharma")))
                .as_deref(),
            Some("sentineldb.sharma.stock")
        );
        // Unique suffix works even without a prefix.
        assert_eq!(
            db.resolve_table_key("stock", None).as_deref(),
            Some("sentineldb.sharma.stock")
        );
    }

    #[test]
    fn ambiguous_suffix_fails() {
        let mut db = Database::new();
        db.create_table(t("db1.u.stock")).unwrap();
        db.create_table(t("db2.u.stock")).unwrap();
        assert_eq!(db.resolve_table_key("stock", None), None);
        // But the session prefix disambiguates.
        assert_eq!(
            db.resolve_table_key("stock", Some(("db1", "u"))).as_deref(),
            Some("db1.u.stock")
        );
    }

    #[test]
    fn sybase_trigger_overwrite_is_silent() {
        let mut db = Database::new();
        db.create_table(t("stock")).unwrap();
        db.create_trigger(trig("t1", "stock", TriggerOp::Insert))
            .unwrap();
        assert!(db.trigger("t1").is_some());
        // Second trigger on the same slot replaces the first without error.
        db.create_trigger(trig("t2", "stock", TriggerOp::Insert))
            .unwrap();
        assert!(db.trigger("t1").is_none(), "old trigger silently dropped");
        assert_eq!(
            db.trigger_for("stock", TriggerOp::Insert).unwrap().name,
            "t2"
        );
        assert_eq!(db.trigger_count(), 1);
    }

    #[test]
    fn trigger_redefine_same_name_same_slot() {
        let mut db = Database::new();
        let mut d = trig("t1", "stock", TriggerOp::Insert);
        db.create_trigger(d.clone()).unwrap();
        d.body_src = "print 'v2'".into();
        db.create_trigger(d).unwrap();
        assert_eq!(db.trigger("t1").unwrap().body_src, "print 'v2'");
    }

    #[test]
    fn trigger_name_collision_on_other_slot_errors() {
        let mut db = Database::new();
        db.create_trigger(trig("t1", "stock", TriggerOp::Insert))
            .unwrap();
        assert!(db
            .create_trigger(trig("t1", "stock", TriggerOp::Delete))
            .is_err());
    }

    #[test]
    fn different_ops_coexist() {
        let mut db = Database::new();
        db.create_trigger(trig("ti", "stock", TriggerOp::Insert))
            .unwrap();
        db.create_trigger(trig("td", "stock", TriggerOp::Delete))
            .unwrap();
        db.create_trigger(trig("tu", "stock", TriggerOp::Update))
            .unwrap();
        assert_eq!(db.trigger_count(), 3);
    }

    #[test]
    fn drop_table_drops_its_triggers() {
        let mut db = Database::new();
        db.create_table(t("stock")).unwrap();
        db.create_trigger(trig("t1", "stock", TriggerOp::Insert))
            .unwrap();
        db.drop_table("stock").unwrap();
        assert_eq!(db.trigger_count(), 0);
        assert!(db.trigger_for("stock", TriggerOp::Insert).is_none());
    }

    #[test]
    fn drop_trigger() {
        let mut db = Database::new();
        db.create_trigger(trig("t1", "stock", TriggerOp::Insert))
            .unwrap();
        db.drop_trigger("T1").unwrap();
        assert_eq!(db.trigger_count(), 0);
        assert!(db.drop_trigger("t1").is_err());
    }

    #[test]
    fn procedures() {
        let mut db = Database::new();
        db.create_procedure(ProcedureDef {
            name: "sentineldb.sharma.p1".into(),
            body: vec![],
            body_src: String::new(),
        })
        .unwrap();
        assert!(db.procedure("sentineldb.sharma.p1", None).is_some());
        assert!(db.procedure("p1", Some(("sentineldb", "sharma"))).is_some());
        assert!(db.procedure("p1", None).is_some(), "unique suffix");
        assert!(db
            .create_procedure(ProcedureDef {
                name: "SENTINELDB.sharma.P1".into(),
                body: vec![],
                body_src: String::new(),
            })
            .is_err());
        db.drop_procedure("sentineldb.sharma.p1").unwrap();
        assert_eq!(db.procedure_count(), 0);
    }

    #[test]
    fn index_lifecycle_and_cascade() {
        use crate::index::{IndexDef, IndexKind};
        let idx = |name: &str| IndexDef {
            name: name.into(),
            column: "a".into(),
            unique: false,
            kind: IndexKind::Hash,
        };
        let mut db = Database::new();
        db.create_table(t("sentineldb.sharma.stock")).unwrap();
        db.create_index("stock", idx("ix_a"), Some(("sentineldb", "sharma")))
            .unwrap();
        assert_eq!(
            db.index_table_key("IX_A"),
            Some("sentineldb.sharma.stock"),
            "registry is case-insensitive"
        );
        // Duplicate index names are rejected database-wide.
        assert!(matches!(
            db.create_index("stock", idx("IX_A"), None),
            Err(Error::AlreadyExists {
                kind: ObjectKind::Index,
                ..
            })
        ));
        // Unknown table.
        assert!(db.create_index("nope", idx("ix_b"), None).is_err());
        db.drop_index("ix_a").unwrap();
        assert_eq!(db.index_count(), 0);
        assert!(matches!(
            db.drop_index("ix_a"),
            Err(Error::NotFound {
                kind: ObjectKind::Index,
                ..
            })
        ));
        // Dropping a table drops its registry entries.
        db.create_index("stock", idx("ix_a"), None).unwrap();
        db.drop_table("stock").unwrap();
        assert_eq!(db.index_count(), 0);
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table(t("zeta")).unwrap();
        db.create_table(t("alpha")).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
    }
}
