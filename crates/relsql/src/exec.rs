//! Compiled physical plans + vectorized batch execution.
//!
//! The interpreter in [`crate::select`] re-resolves every column name and
//! rebuilds a [`crate::eval::RowEnv`] (cloning alias/table-name strings) for
//! *every candidate row*. This module lowers a statement **once** into a
//! typed program — column references become `(slot, col)` ordinals, scalar
//! sub-expressions become [`PExpr`] nodes, aggregate expressions become
//! [`PAgg`] nodes — and then executes the scan/filter/aggregate pipeline
//! over ~[`BATCH_ROWS`]-row batches of *row positions*, reading cell values
//! straight out of the table guards without materializing joined rows.
//!
//! # Byte-identity contract
//!
//! Every observable behaviour is pinned to the interpreter:
//!
//! - **Access paths and counters**: the executor re-runs [`plan::plan`] per
//!   execution (the greedy join order depends on live table sizes) and calls
//!   the same [`enumerate_candidates`], so `index_hits`/`index_misses`/
//!   `rows_scanned` and the visit order match exactly.
//! - **3VL + errors**: `PExpr` evaluation copies the interpreter's AND/OR
//!   short-circuiting, `IN`/`BETWEEN`/`LIKE` NULL handling, and shares
//!   [`scalar_fn_lazy`]/[`apply_binary_values`]/[`finish_aggregate`]/
//!   [`finish_rows`] so side effects (`syb_sendmsg`, `getdate` ticks) and
//!   error text cannot drift. Name-resolution failures (ambiguous/unknown
//!   columns, aggregates in row position) are lowered into deferred
//!   [`PExpr::Raise`] nodes that only error if the interpreter would have
//!   evaluated that node — short-circuiting hides them identically.
//! - **Fallback**: any shape the lowerer cannot compile (subqueries,
//!   `EXISTS`), any trigger-scope execution, and `compiled_exec = false` all
//!   run the whole statement through the interpreter. There is no partial
//!   compilation, so a fallback is identical-by-construction.
//!
//! Lowered programs are cached per statement pointer inside the server's
//! masked-literal plan cache ([`LoweredCache`] rides in each `CachedPlan`),
//! so they share its DDL-epoch invalidation; a cheap per-execution bind
//! check ([`CSlot::binds`]) re-lowers if a same-named table was re-created
//! with a different shape.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ast::{is_aggregate_name, BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
use crate::error::{Error, ObjectKind, Result};
use crate::eval::{apply_binary_values, like_match, qualifier_matches, scalar_fn_lazy, QueryCtx};
use crate::index::IndexSet;
use crate::plan::{self, Access, SlotMeta};
use crate::select::{
    cmp_key, enumerate_candidates, finish_aggregate, finish_rows, output_columns, run_select_typed,
    JoinedMeta, TypedRows,
};
use crate::table::{Column, Row, RowsReadGuard, Table};
use crate::value::Value;

/// Rows per execution batch. Filters/aggregates run over chunks of this many
/// candidate tuples between counter ticks.
pub(crate) const BATCH_ROWS: usize = 1024;

fn tick(counter: &AtomicU64) {
    counter.fetch_add(1, AtomicOrdering::Relaxed);
}

// ---------------------------------------------------------------------------
// Lowered-plan cache
// ---------------------------------------------------------------------------

/// Lowered physical plans for one cached batch, keyed by statement address
/// within the batch's `Arc<Vec<Stmt>>` (stable for the cache entry's
/// lifetime; the server drops the whole entry on DDL-epoch bumps). Trigger
/// and procedure bodies are cloned per execution — their statement addresses
/// are transient — so the engine runs trigger bodies interpreted (scope
/// gate) and clears the cache reference around procedure bodies.
#[derive(Default)]
pub(crate) struct LoweredCache {
    selects: PlanMap<CompiledSelect>,
    inserts: PlanMap<CompiledInsert>,
    updates: PlanMap<CompiledUpdate>,
    deletes: PlanMap<CompiledDelete>,
}

/// One statement-address → lowered-plan slot map. `None` entries pin
/// "unsupported shape, stay on the interpreter" so the lowering cost is paid
/// once per cached batch.
type PlanMap<T> = Mutex<HashMap<usize, Option<Arc<T>>>>;

impl std::fmt::Debug for LoweredCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoweredCache")
            .field("selects", &self.selects.lock().len())
            .field("inserts", &self.inserts.lock().len())
            .field("updates", &self.updates.lock().len())
            .field("deletes", &self.deletes.lock().len())
            .finish()
    }
}

/// Shared cache lookup: hit → bind-check → reuse or re-lower; miss → lower
/// and remember the outcome (including `None` = "this shape stays on the
/// interpreter", so unsupported statements don't re-lower every execution).
fn cached_plan<T>(
    ctx: &QueryCtx<'_>,
    map: Option<&PlanMap<T>>,
    key: usize,
    still_binds: impl Fn(&T) -> bool,
    lower: impl FnOnce() -> Option<T>,
) -> Option<Arc<T>> {
    if let Some(map) = map {
        if let Some(entry) = map.lock().get(&key).cloned() {
            tick(&ctx.stats.plan_lowered_hits);
            return match entry {
                Some(p) if still_binds(&p) => Some(p),
                Some(_) => {
                    // Same statement text, different table shape (drop +
                    // re-create without a DDL-epoch bump reaching us first).
                    let fresh = lower().map(Arc::new);
                    map.lock().insert(key, fresh.clone());
                    fresh
                }
                None => None,
            };
        }
        tick(&ctx.stats.plan_lowered_misses);
        let fresh = lower().map(Arc::new);
        map.lock().insert(key, fresh.clone());
        return fresh;
    }
    tick(&ctx.stats.plan_lowered_misses);
    lower().map(Arc::new)
}

/// Common execution gates. A `false` means the caller must run the
/// interpreter; the reason counters are ticked here.
fn gate(ctx: &QueryCtx<'_>) -> bool {
    if !ctx.compiled {
        tick(&ctx.stats.exec_interpreted);
        tick(&ctx.stats.exec_fallback_disabled);
        return false;
    }
    if !ctx.scope.is_empty() {
        // Trigger bodies see `inserted`/`deleted` pseudo-tables and run from
        // per-firing statement clones; both break plan caching, so the whole
        // scope runs interpreted.
        tick(&ctx.stats.exec_interpreted);
        tick(&ctx.stats.exec_fallback_scope);
        return false;
    }
    true
}

// ---------------------------------------------------------------------------
// Compiled program types
// ---------------------------------------------------------------------------

/// What one FROM slot was lowered against, for per-execution bind checks.
struct CSlot {
    table_name: String,
    columns: Vec<Column>,
}

impl CSlot {
    fn of(t: &Table) -> CSlot {
        CSlot {
            table_name: t.name.clone(),
            columns: t.schema.columns.clone(),
        }
    }

    /// Does the live table still look exactly like it did at lowering time?
    fn binds(&self, t: &Table) -> bool {
        t.name == self.table_name
            && t.schema.columns.len() == self.columns.len()
            && t.schema.columns.iter().zip(&self.columns).all(|(a, b)| {
                a.name == b.name && a.data_type == b.data_type && a.nullable == b.nullable
            })
    }
}

/// A deferred name-resolution error: raised only if the node is actually
/// evaluated, mirroring the interpreter's evaluation-time resolution.
#[derive(Debug, Clone)]
enum PErr {
    /// Column name matched in two FROM slots.
    Ambiguous(String),
    /// Column (pre-formatted `q.name` or `name`) matched nowhere.
    NotFoundColumn(String),
    /// Aggregate function referenced in row (non-group) position.
    AggPosition(String),
    /// `DISTINCT` inside a scalar function call.
    DistinctScalar(String),
}

impl PErr {
    fn raise(&self) -> Error {
        match self {
            PErr::Ambiguous(name) => Error::exec(format!("ambiguous column name '{name}'")),
            PErr::NotFoundColumn(name) => Error::NotFound {
                kind: ObjectKind::Column,
                name: name.clone(),
            },
            PErr::AggPosition(name) => Error::exec(format!(
                "aggregate '{name}' is not allowed in this position"
            )),
            PErr::DistinctScalar(name) => Error::exec(format!(
                "DISTINCT is not allowed in scalar function '{name}'"
            )),
        }
    }
}

/// A pre-compiled row-context predicate/scalar program. Column references
/// are `(slot, col)` ordinals into the current candidate tuple.
#[derive(Debug, Clone)]
enum PExpr {
    Lit(Value),
    Param(usize),
    Col {
        slot: usize,
        col: usize,
    },
    Unary {
        op: UnaryOp,
        operand: Box<PExpr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<PExpr>,
        right: Box<PExpr>,
    },
    Func {
        name: String,
        args: Vec<PExpr>,
        star: bool,
    },
    IsNull {
        operand: Box<PExpr>,
        negated: bool,
    },
    InList {
        operand: Box<PExpr>,
        list: Vec<PExpr>,
        negated: bool,
    },
    Between {
        operand: Box<PExpr>,
        low: Box<PExpr>,
        high: Box<PExpr>,
        negated: bool,
    },
    Like {
        operand: Box<PExpr>,
        pattern: Box<PExpr>,
        negated: bool,
    },
    Raise(PErr),
}

/// A pre-compiled group-context program, mirroring
/// `select::eval_grouped`'s dispatch.
#[derive(Debug, Clone)]
enum PAgg {
    /// Non-aggregate expression: value from the group's first row (Sybase
    /// leniency), NULL for an empty group.
    First(PExpr),
    /// An aggregate call. `arg` is `Some` only when exactly one argument
    /// was supplied; the arity error is raised at evaluation time.
    Agg {
        name: String,
        arg: Option<Box<PExpr>>,
        nargs: usize,
        star: bool,
        distinct: bool,
    },
    /// Both sides evaluate (no short-circuit), exactly like `eval_grouped`.
    Bin {
        op: BinaryOp,
        left: Box<PAgg>,
        right: Box<PAgg>,
    },
    Unary {
        op: UnaryOp,
        operand: Box<PAgg>,
    },
    IsNull {
        operand: Box<PAgg>,
        negated: bool,
    },
    /// Shape the grouped evaluator rejects; message pre-formatted at
    /// lowering, raised per group evaluated.
    RaiseGroup(String),
}

/// An infallible, side-effect-free scalar atom: a literal, a bound
/// statement parameter, or a column ordinal. Evaluating one cannot error
/// (parameter arity is checked once per execution before the fast paths
/// engage), so fused loops may skip or reorder atom reads freely without
/// breaking interpreter identity.
#[derive(Debug, Clone)]
enum PAtom {
    Lit(Value),
    Param(usize),
    Col { slot: usize, col: usize },
}

impl PAtom {
    #[inline]
    fn get<'a>(&'a self, rows: &[&'a [Value]], params: &'a [Value]) -> &'a Value {
        match self {
            PAtom::Lit(v) => v,
            PAtom::Param(i) => &params[*i],
            PAtom::Col { slot, col } => &rows[*slot][*col],
        }
    }
}

/// One conjunct of a fused filter: a comparison (or NULL test) between two
/// atoms. `keeps` returns the exact truthiness the interpreter's 3VL would
/// produce for the enclosing AND chain: a NULL comparison is never truthy,
/// and under AND a single non-truthy conjunct makes the whole predicate
/// non-truthy regardless of the others, so short-circuiting over infallible
/// conjuncts is unobservable.
#[derive(Debug, Clone)]
enum PCmp {
    Cmp {
        op: BinaryOp,
        left: PAtom,
        right: PAtom,
    },
    IsNull {
        operand: PAtom,
        negated: bool,
    },
}

impl PCmp {
    #[inline]
    fn keeps(&self, rows: &[&[Value]], params: &[Value]) -> bool {
        match self {
            PCmp::Cmp { op, left, right } => {
                use std::cmp::Ordering::*;
                match left.get(rows, params).sql_cmp(right.get(rows, params)) {
                    Some(ord) => match op {
                        BinaryOp::Eq => ord == Equal,
                        BinaryOp::Neq => ord != Equal,
                        BinaryOp::Lt => ord == Less,
                        BinaryOp::Le => ord != Greater,
                        BinaryOp::Gt => ord == Greater,
                        BinaryOp::Ge => ord != Less,
                        _ => unreachable!("non-comparison op in fused conjunct"),
                    },
                    None => false,
                }
            }
            PCmp::IsNull { operand, negated } => operand.get(rows, params).is_null() != *negated,
        }
    }
}

/// A WHERE clause fused into an AND-list of infallible conjuncts — the
/// value-at-a-time `PExpr` walk (with its per-node `Result` wrapping and
/// `Value` clones) replaced by borrowed `sql_cmp` calls.
#[derive(Debug)]
struct FastFilter {
    conjuncts: Vec<PCmp>,
    /// Parameter slots the conjuncts read; the fast path engages only when
    /// the execution binds at least this many (an unbound slot must raise
    /// through the general evaluator instead).
    params_needed: usize,
}

impl FastFilter {
    /// The conjunct list, if this execution's bindings make it infallible.
    fn usable(&self, ctx: &QueryCtx<'_>) -> Option<&[PCmp]> {
        (self.params_needed <= ctx.params.len()).then_some(&self.conjuncts[..])
    }
}

/// Record an atom read into `needed` (the minimum parameter arity) and
/// lower it, or `None` if the expression is not an atom.
fn fuse_atom(e: &PExpr, needed: &mut usize) -> Option<PAtom> {
    match e {
        PExpr::Lit(v) => Some(PAtom::Lit(v.clone())),
        PExpr::Param(i) => {
            *needed = (*needed).max(i + 1);
            Some(PAtom::Param(*i))
        }
        PExpr::Col { slot, col } => Some(PAtom::Col {
            slot: *slot,
            col: *col,
        }),
        _ => None,
    }
}

/// Fuse a lowered filter into conjuncts, or `None` when any part of it
/// needs the general evaluator (OR, arithmetic, functions, LIKE, ...).
fn fuse_filter(filter: Option<&PExpr>) -> Option<FastFilter> {
    fn walk(e: &PExpr, out: &mut Vec<PCmp>, needed: &mut usize) -> bool {
        match e {
            PExpr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => walk(left, out, needed) && walk(right, out, needed),
            PExpr::Binary { op, left, right }
                if matches!(
                    op,
                    BinaryOp::Eq
                        | BinaryOp::Neq
                        | BinaryOp::Lt
                        | BinaryOp::Le
                        | BinaryOp::Gt
                        | BinaryOp::Ge
                ) =>
            {
                match (fuse_atom(left, needed), fuse_atom(right, needed)) {
                    (Some(l), Some(r)) => {
                        out.push(PCmp::Cmp {
                            op: *op,
                            left: l,
                            right: r,
                        });
                        true
                    }
                    _ => false,
                }
            }
            PExpr::IsNull { operand, negated } => match fuse_atom(operand, needed) {
                Some(a) => {
                    out.push(PCmp::IsNull {
                        operand: a,
                        negated: *negated,
                    });
                    true
                }
                None => false,
            },
            _ => false,
        }
    }
    let e = filter?;
    let mut conjuncts = Vec::new();
    let mut needed = 0usize;
    walk(e, &mut conjuncts, &mut needed).then_some(FastFilter {
        conjuncts,
        params_needed: needed,
    })
}

/// One fused aggregate-projection item: its non-null inputs are collected
/// in a single pass over the group's rows (instead of one full walk per
/// item), then finished with the shared [`finish_aggregate`] in item order
/// — identical inputs, identical results and error order, because atom
/// collection itself cannot error or observe side effects.
#[derive(Debug)]
enum FAgg {
    /// `count(*)`: the group size, no row walk at all.
    CountStar,
    /// Non-aggregate item: the atom from the group's first row.
    First(PAtom),
    /// A one-argument aggregate over an atom.
    Agg {
        name: String,
        arg: PAtom,
        distinct: bool,
    },
}

/// The aggregate select list fused for single-pass collection.
#[derive(Debug)]
struct FusedAggs {
    items: Vec<FAgg>,
    params_needed: usize,
}

/// Fuse an aggregate projection, or `None` when any item needs the general
/// per-item [`eval_pagg`] walk (nested expressions, wildcards, non-atom
/// arguments, `count(*)` shapes that must raise).
fn fuse_aggs(items: &[PAggItem]) -> Option<FusedAggs> {
    let mut needed = 0usize;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let PAggItem::Value(pa) = item else {
            return None;
        };
        out.push(match pa {
            PAgg::First(e) => FAgg::First(fuse_atom(e, &mut needed)?),
            PAgg::Agg {
                name,
                arg,
                nargs,
                star,
                distinct,
            } => {
                if *star {
                    // Only `count(*)` without DISTINCT evaluates infallibly;
                    // every other star shape raises per group.
                    if name.eq_ignore_ascii_case("count") && !*distinct {
                        FAgg::CountStar
                    } else {
                        return None;
                    }
                } else if *nargs == 1 {
                    let arg = arg.as_deref().expect("nargs == 1 implies lowered arg");
                    FAgg::Agg {
                        name: name.clone(),
                        arg: fuse_atom(arg, &mut needed)?,
                        distinct: *distinct,
                    }
                } else {
                    return None;
                }
            }
            _ => return None,
        });
    }
    Some(FusedAggs {
        items: out,
        params_needed: needed,
    })
}

/// One projection item of a non-aggregate SELECT.
#[derive(Debug, Clone)]
enum PProj {
    /// `*`: every slot's full row.
    AllSlots,
    /// `t.*` resolved to one slot.
    Slot(usize),
    Expr(PExpr),
}

/// One projection item of an aggregate/GROUP BY SELECT.
#[derive(Debug, Clone)]
enum PAggItem {
    Value(PAgg),
    /// `*` under GROUP BY: errors per emitted group, as the interpreter does.
    WildcardErr,
}

/// One ORDER BY key source.
#[derive(Debug, Clone)]
enum POrder {
    /// Output-column reference (ordinal or alias hit).
    Out(usize),
    /// Out-of-range ordinal: errors per emitted row.
    OrdinalErr(i64),
    /// Row-context expression (non-aggregate SELECT).
    Row(PExpr),
    /// Group-context expression (aggregate SELECT).
    Group(PAgg),
}

/// A fully lowered SELECT.
pub(crate) struct CompiledSelect {
    slots: Vec<CSlot>,
    filter: Option<PExpr>,
    /// Conjunct-fused twin of `filter`, when every part of it is fusable.
    fast_filter: Option<FastFilter>,
    /// Single-pass twin of `agg_proj`, when every item is fusable.
    fused_aggs: Option<FusedAggs>,
    has_aggregates: bool,
    out_names: Vec<Arc<str>>,
    out_types: Vec<Column>,
    proj: Vec<PProj>,
    agg_proj: Vec<PAggItem>,
    group_by: Vec<PExpr>,
    having: Option<PAgg>,
    order: Vec<POrder>,
}

/// A fully lowered single-table UPDATE.
pub(crate) struct CompiledUpdate {
    slot: CSlot,
    filter: Option<PExpr>,
    fast_filter: Option<FastFilter>,
    /// `(resolved column ordinal, source column name, value program)` —
    /// the ordinal is `None` for an unknown column, raised only when a row
    /// actually matches (interpreter parity).
    assigns: Vec<(Option<usize>, String, PExpr)>,
}

/// A fully lowered single-table DELETE.
pub(crate) struct CompiledDelete {
    slot: CSlot,
    filter: Option<PExpr>,
    fast_filter: Option<FastFilter>,
}

/// Lowered `INSERT ... VALUES` row programs (no FROM slots: column
/// references become deferred not-found errors, as with `RowEnv::empty()`).
pub(crate) struct CompiledInsert {
    rows: Vec<Vec<PExpr>>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct Lowerer<'a> {
    ctx: &'a QueryCtx<'a>,
    metas: &'a [JoinedMeta],
}

impl Lowerer<'_> {
    /// Resolve a column reference to ordinals, mirroring `RowEnv::lookup`
    /// over the FROM frames (top-level statements have no parent
    /// environment). Failures lower to deferred raise nodes.
    fn lower_col(&self, qualifier: Option<&str>, name: &str) -> PExpr {
        let mut found: Option<(usize, usize)> = None;
        for (slot, m) in self.metas.iter().enumerate() {
            if let Some(q) = qualifier {
                if !qualifier_matches(m.alias.as_deref(), &m.table_name, q, self.ctx.session) {
                    continue;
                }
            }
            if let Some(col) = m.schema.index_of(name) {
                if found.is_some() {
                    return PExpr::Raise(PErr::Ambiguous(name.to_string()));
                }
                found = Some((slot, col));
            }
        }
        match found {
            Some((slot, col)) => PExpr::Col { slot, col },
            None => PExpr::Raise(PErr::NotFoundColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
        }
    }

    /// Lower a row-context expression. `None` = shape not compilable
    /// (subqueries); the whole statement then stays on the interpreter.
    fn lower_pexpr(&self, e: &Expr) -> Option<PExpr> {
        Some(match e {
            Expr::Literal(v) => PExpr::Lit(v.clone()),
            Expr::Param(i) => PExpr::Param(*i),
            Expr::Column { qualifier, name } => self.lower_col(qualifier.as_deref(), name),
            Expr::Unary { op, operand } => PExpr::Unary {
                op: *op,
                operand: Box::new(self.lower_pexpr(operand)?),
            },
            Expr::Binary { op, left, right } => PExpr::Binary {
                op: *op,
                left: Box::new(self.lower_pexpr(left)?),
                right: Box::new(self.lower_pexpr(right)?),
            },
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                // Same rejection order as `eval_function`: aggregate-in-row
                // position first, then DISTINCT-on-scalar.
                if is_aggregate_name(name) {
                    PExpr::Raise(PErr::AggPosition(name.clone()))
                } else if *distinct {
                    PExpr::Raise(PErr::DistinctScalar(name.clone()))
                } else {
                    let mut lowered = Vec::with_capacity(args.len());
                    for a in args {
                        lowered.push(self.lower_pexpr(a)?);
                    }
                    PExpr::Func {
                        name: name.clone(),
                        args: lowered,
                        star: *star,
                    }
                }
            }
            Expr::IsNull { operand, negated } => PExpr::IsNull {
                operand: Box::new(self.lower_pexpr(operand)?),
                negated: *negated,
            },
            Expr::InList {
                operand,
                list,
                negated,
            } => {
                let mut lowered = Vec::with_capacity(list.len());
                for item in list {
                    lowered.push(self.lower_pexpr(item)?);
                }
                PExpr::InList {
                    operand: Box::new(self.lower_pexpr(operand)?),
                    list: lowered,
                    negated: *negated,
                }
            }
            Expr::Between {
                operand,
                low,
                high,
                negated,
            } => PExpr::Between {
                operand: Box::new(self.lower_pexpr(operand)?),
                low: Box::new(self.lower_pexpr(low)?),
                high: Box::new(self.lower_pexpr(high)?),
                negated: *negated,
            },
            Expr::Like {
                operand,
                pattern,
                negated,
            } => PExpr::Like {
                operand: Box::new(self.lower_pexpr(operand)?),
                pattern: Box::new(self.lower_pexpr(pattern)?),
                negated: *negated,
            },
            Expr::Exists(_) | Expr::Subquery(_) => return None,
        })
    }

    /// Lower a group-context expression, mirroring `eval_grouped`'s
    /// dispatch order.
    fn lower_pagg(&self, e: &Expr) -> Option<PAgg> {
        if !e.contains_aggregate() {
            return Some(PAgg::First(self.lower_pexpr(e)?));
        }
        Some(match e {
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } if is_aggregate_name(name) => {
                let arg = if args.len() == 1 {
                    Some(Box::new(self.lower_pexpr(&args[0])?))
                } else {
                    None
                };
                PAgg::Agg {
                    name: name.clone(),
                    arg,
                    nargs: args.len(),
                    star: *star,
                    distinct: *distinct,
                }
            }
            Expr::Binary { op, left, right } => PAgg::Bin {
                op: *op,
                left: Box::new(self.lower_pagg(left)?),
                right: Box::new(self.lower_pagg(right)?),
            },
            Expr::Unary { op, operand } => PAgg::Unary {
                op: *op,
                operand: Box::new(self.lower_pagg(operand)?),
            },
            Expr::IsNull { operand, negated } => PAgg::IsNull {
                operand: Box::new(self.lower_pagg(operand)?),
                negated: *negated,
            },
            Expr::Function { name, .. } => PAgg::RaiseGroup(format!(
                "cannot nest scalar function '{name}' over aggregates"
            )),
            other => PAgg::RaiseGroup(format!("unsupported aggregate expression: {other:?}")),
        })
    }
}

/// Find the slot a `t.*` wildcard denotes — the same three-way match
/// `output_columns` uses.
fn find_wildcard_slot(metas: &[JoinedMeta], q: &str) -> Option<usize> {
    metas.iter().position(|m| {
        m.alias
            .as_deref()
            .is_some_and(|a| a.eq_ignore_ascii_case(q))
            || m.table_name.eq_ignore_ascii_case(q)
            || m.table_name
                .to_ascii_lowercase()
                .ends_with(&format!(".{}", q.to_ascii_lowercase()))
    })
}

fn lower_select(
    ctx: &QueryCtx<'_>,
    stmt: &SelectStmt,
    metas: &[JoinedMeta],
    tables: &[&Table],
) -> Option<CompiledSelect> {
    let lw = Lowerer { ctx, metas };
    // A projection the interpreter would reject errors identically via the
    // fallback, so an `Err` here just bails.
    let (out_names, out_types) = output_columns(metas, &stmt.projection).ok()?;
    let has_aggregates = !stmt.group_by.is_empty()
        || stmt
            .projection
            .iter()
            .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || stmt.having.as_ref().is_some_and(Expr::contains_aggregate);

    let filter = match &stmt.selection {
        Some(cond) => Some(lw.lower_pexpr(cond)?),
        None => None,
    };

    let mut group_by = Vec::with_capacity(stmt.group_by.len());
    for g in &stmt.group_by {
        group_by.push(lw.lower_pexpr(g)?);
    }
    // HAVING only applies on the aggregate path (interpreter parity: a
    // HAVING on a non-aggregate SELECT is ignored there too).
    let having = if has_aggregates {
        match &stmt.having {
            Some(h) => Some(lw.lower_pagg(h)?),
            None => None,
        }
    } else {
        None
    };

    let mut proj = Vec::new();
    let mut agg_proj = Vec::new();
    if has_aggregates {
        for item in &stmt.projection {
            agg_proj.push(match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => PAggItem::WildcardErr,
                SelectItem::Expr { expr, .. } => PAggItem::Value(lw.lower_pagg(expr)?),
            });
        }
    } else {
        for item in &stmt.projection {
            proj.push(match item {
                SelectItem::Wildcard => PProj::AllSlots,
                SelectItem::QualifiedWildcard(q) => PProj::Slot(find_wildcard_slot(metas, q)?),
                SelectItem::Expr { expr, .. } => PProj::Expr(lw.lower_pexpr(expr)?),
            });
        }
    }

    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        // Mirror `output_ref`: ordinal and bare-alias references resolve
        // against the output row; everything else evaluates in context.
        let resolved = match &item.expr {
            Expr::Literal(Value::Int(n)) => {
                let idx = *n as usize;
                if idx == 0 || idx > out_names.len() {
                    Some(POrder::OrdinalErr(*n))
                } else {
                    Some(POrder::Out(idx - 1))
                }
            }
            Expr::Column {
                qualifier: None,
                name,
            } => out_names
                .iter()
                .position(|on| on.eq_ignore_ascii_case(name))
                .map(POrder::Out),
            _ => None,
        };
        order.push(match resolved {
            Some(p) => p,
            None if has_aggregates => POrder::Group(lw.lower_pagg(&item.expr)?),
            None => POrder::Row(lw.lower_pexpr(&item.expr)?),
        });
    }

    let fast_filter = fuse_filter(filter.as_ref());
    let fused_aggs = if has_aggregates {
        fuse_aggs(&agg_proj)
    } else {
        None
    };
    Some(CompiledSelect {
        slots: tables.iter().map(|t| CSlot::of(t)).collect(),
        filter,
        fast_filter,
        fused_aggs,
        has_aggregates,
        out_names,
        out_types,
        proj,
        agg_proj,
        group_by,
        having,
        order,
    })
}

fn single_meta(t: &Table) -> JoinedMeta {
    JoinedMeta {
        alias: None,
        table_name: t.name.clone(),
        schema: t.schema.clone(),
        offset: 0,
        width: t.schema.len(),
    }
}

fn lower_update(
    ctx: &QueryCtx<'_>,
    t: &Table,
    assignments: &[(String, Expr)],
    selection: Option<&Expr>,
) -> Option<CompiledUpdate> {
    let metas = [single_meta(t)];
    let lw = Lowerer { ctx, metas: &metas };
    let filter = match selection {
        Some(cond) => Some(lw.lower_pexpr(cond)?),
        None => None,
    };
    let mut assigns = Vec::with_capacity(assignments.len());
    for (col, e) in assignments {
        assigns.push((t.schema.index_of(col), col.clone(), lw.lower_pexpr(e)?));
    }
    let fast_filter = fuse_filter(filter.as_ref());
    Some(CompiledUpdate {
        slot: CSlot::of(t),
        filter,
        fast_filter,
        assigns,
    })
}

fn lower_delete(ctx: &QueryCtx<'_>, t: &Table, selection: Option<&Expr>) -> Option<CompiledDelete> {
    let metas = [single_meta(t)];
    let lw = Lowerer { ctx, metas: &metas };
    let filter = match selection {
        Some(cond) => Some(lw.lower_pexpr(cond)?),
        None => None,
    };
    let fast_filter = fuse_filter(filter.as_ref());
    Some(CompiledDelete {
        slot: CSlot::of(t),
        filter,
        fast_filter,
    })
}

fn lower_insert(ctx: &QueryCtx<'_>, rows: &[Vec<Expr>]) -> Option<CompiledInsert> {
    let lw = Lowerer { ctx, metas: &[] };
    let mut lowered = Vec::with_capacity(rows.len());
    for exprs in rows {
        let mut row = Vec::with_capacity(exprs.len());
        for e in exprs {
            row.push(lw.lower_pexpr(e)?);
        }
        lowered.push(row);
    }
    Some(CompiledInsert { rows: lowered })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Evaluate a compiled row program. `rows[slot]` is the candidate tuple's
/// row slice for that FROM slot — borrowed straight from the table guards,
/// never cloned or re-keyed.
fn eval_p(ctx: &QueryCtx<'_>, rows: &[&[Value]], e: &PExpr) -> Result<Value> {
    match e {
        PExpr::Lit(v) => Ok(v.clone()),
        PExpr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::exec(format!("unbound statement parameter ${i}"))),
        PExpr::Col { slot, col } => Ok(rows[*slot][*col].clone()),
        PExpr::Unary { op, operand } => {
            let v = eval_p(ctx, rows, operand)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!other.is_truthy())),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::type_err(format!("cannot negate {other}"))),
                },
            }
        }
        PExpr::Binary { op, left, right } => match op {
            // AND/OR: the interpreter's exact short-circuit 3VL.
            BinaryOp::And => {
                let l = eval_p(ctx, rows, left)?;
                if !l.is_null() && !l.is_truthy() {
                    return Ok(Value::Int(0));
                }
                let r = eval_p(ctx, rows, right)?;
                Ok(match (l.is_null(), r.is_null()) {
                    (false, false) => Value::Int(i64::from(l.is_truthy() && r.is_truthy())),
                    _ => {
                        if !r.is_null() && !r.is_truthy() {
                            Value::Int(0)
                        } else {
                            Value::Null
                        }
                    }
                })
            }
            BinaryOp::Or => {
                let l = eval_p(ctx, rows, left)?;
                if !l.is_null() && l.is_truthy() {
                    return Ok(Value::Int(1));
                }
                let r = eval_p(ctx, rows, right)?;
                Ok(match (l.is_null(), r.is_null()) {
                    (false, false) => Value::Int(i64::from(l.is_truthy() || r.is_truthy())),
                    _ => {
                        if !r.is_null() && r.is_truthy() {
                            Value::Int(1)
                        } else {
                            Value::Null
                        }
                    }
                })
            }
            _ => {
                let l = eval_p(ctx, rows, left)?;
                let r = eval_p(ctx, rows, right)?;
                apply_binary_values(*op, l, r)
            }
        },
        PExpr::Func { name, args, star } => scalar_fn_lazy(ctx, name, args.len(), *star, |i| {
            eval_p(ctx, rows, &args[i])
        }),
        PExpr::IsNull { operand, negated } => {
            let v = eval_p(ctx, rows, operand)?;
            Ok(Value::Int(i64::from(v.is_null() != *negated)))
        }
        PExpr::InList {
            operand,
            list,
            negated,
        } => {
            let v = eval_p(ctx, rows, operand)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval_p(ctx, rows, item)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Int(i64::from(!*negated)));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(i64::from(*negated)))
            }
        }
        PExpr::Between {
            operand,
            low,
            high,
            negated,
        } => {
            let v = eval_p(ctx, rows, operand)?;
            let lo = eval_p(ctx, rows, low)?;
            let hi = eval_p(ctx, rows, high)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Int(i64::from(inside != *negated)))
                }
                _ => Ok(Value::Null),
            }
        }
        PExpr::Like {
            operand,
            pattern,
            negated,
        } => {
            let v = eval_p(ctx, rows, operand)?;
            let p = eval_p(ctx, rows, pattern)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    Ok(Value::Int(i64::from(like_match(&s, &pat) != *negated)))
                }
                (a, b) => Err(Error::type_err(format!(
                    "LIKE requires strings, got {a} LIKE {b}"
                ))),
            }
        }
        PExpr::Raise(p) => Err(p.raise()),
    }
}

/// The filtered candidate set of one SELECT: a flat buffer of passing
/// tuples (`stride` positions each) over the held row guards.
struct BatchCtx<'a> {
    guards: &'a [RowsReadGuard<'a>],
    pass: &'a [usize],
    stride: usize,
    npass: usize,
}

impl BatchCtx<'_> {
    fn tuple(&self, ti: usize) -> &[usize] {
        &self.pass[ti * self.stride..(ti + 1) * self.stride]
    }

    /// Refill `rows` with the tuple's per-slot row slices.
    fn load<'s>(&'s self, ti: usize, rows: &mut Vec<&'s [Value]>) {
        rows.clear();
        for (s, &pos) in self.tuple(ti).iter().enumerate() {
            rows.push(self.guards[s][pos].as_slice());
        }
    }
}

/// Evaluate a compiled group program over `group` (indices of passing
/// tuples), mirroring `eval_grouped` + `compute_aggregate`.
fn eval_pagg(ctx: &QueryCtx<'_>, b: &BatchCtx<'_>, group: &[usize], pa: &PAgg) -> Result<Value> {
    match pa {
        PAgg::First(e) => match group.first() {
            Some(&ti) => {
                let mut rows = Vec::with_capacity(b.stride);
                b.load(ti, &mut rows);
                eval_p(ctx, &rows, e)
            }
            None => Ok(Value::Null),
        },
        PAgg::Agg {
            name,
            arg,
            nargs,
            star,
            distinct,
        } => {
            if name.eq_ignore_ascii_case("count") && *star {
                if *distinct {
                    return Err(Error::exec("DISTINCT is not allowed with count(*)"));
                }
                return Ok(Value::Int(group.len() as i64));
            }
            if *nargs != 1 {
                return Err(Error::exec(format!("{name}() expects one argument")));
            }
            let arg = arg.as_deref().expect("nargs == 1 implies lowered arg");
            let mut vals = Vec::with_capacity(group.len());
            let mut rows = Vec::with_capacity(b.stride);
            for &ti in group {
                b.load(ti, &mut rows);
                let v = eval_p(ctx, &rows, arg)?;
                if !v.is_null() {
                    vals.push(v);
                }
            }
            finish_aggregate(name, vals, *distinct)
        }
        PAgg::Bin { op, left, right } => {
            let l = eval_pagg(ctx, b, group, left)?;
            let r = eval_pagg(ctx, b, group, right)?;
            apply_binary_values(*op, l, r)
        }
        PAgg::Unary { op, operand } => {
            let v = eval_pagg(ctx, b, group, operand)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!other.is_truthy())),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::type_err(format!("cannot negate {other}"))),
                },
            }
        }
        PAgg::IsNull { operand, negated } => {
            let v = eval_pagg(ctx, b, group, operand)?;
            Ok(Value::Int(i64::from(v.is_null() != *negated)))
        }
        PAgg::RaiseGroup(msg) => Err(Error::exec(msg.clone())),
    }
}

/// Advance a row-position odometer; `false` when exhausted.
fn advance(idx: &mut [usize], sizes: &[usize]) -> bool {
    for k in (0..idx.len()).rev() {
        idx[k] += 1;
        if idx[k] < sizes[k] {
            return true;
        }
        idx[k] = 0;
    }
    false
}

// ---------------------------------------------------------------------------
// SELECT entry point
// ---------------------------------------------------------------------------

/// Execute a top-level SELECT through the compiled executor when possible,
/// falling back to [`run_select_typed`] (whole-statement, so semantics are
/// identical by construction) otherwise.
pub(crate) fn run_select_exec(
    ctx: &QueryCtx<'_>,
    stmt: &SelectStmt,
    lowered: Option<&LoweredCache>,
) -> Result<TypedRows> {
    if !gate(ctx) {
        return run_select_typed(ctx, stmt, None);
    }
    // FROM resolution: same calls, same error order as the interpreter.
    let mut metas: Vec<JoinedMeta> = Vec::with_capacity(stmt.from.len());
    let mut tables: Vec<&Table> = Vec::with_capacity(stmt.from.len());
    let mut offset = 0usize;
    for tref in &stmt.from {
        let table = ctx.resolve_table(&tref.name)?;
        metas.push(JoinedMeta {
            alias: tref.alias.clone(),
            table_name: table.name.clone(),
            schema: table.schema.clone(),
            offset,
            width: table.schema.len(),
        });
        offset += table.schema.len();
        tables.push(table);
    }

    let key = stmt as *const SelectStmt as usize;
    let compiled = cached_plan(
        ctx,
        lowered.map(|c| &c.selects),
        key,
        |cs: &CompiledSelect| {
            cs.slots.len() == tables.len() && cs.slots.iter().zip(&tables).all(|(s, t)| s.binds(t))
        },
        || lower_select(ctx, stmt, &metas, &tables),
    );
    match compiled {
        Some(cs) => {
            tick(&ctx.stats.exec_compiled);
            exec_select(ctx, stmt, &cs, &metas, &tables)
        }
        None => {
            tick(&ctx.stats.exec_interpreted);
            tick(&ctx.stats.exec_fallback_expr);
            run_select_typed(ctx, stmt, None)
        }
    }
}

fn exec_select(
    ctx: &QueryCtx<'_>,
    stmt: &SelectStmt,
    cs: &CompiledSelect,
    metas: &[JoinedMeta],
    tables: &[&Table],
) -> Result<TypedRows> {
    let nslots = tables.len();
    // Guards are held through projection: recursive reads keep self-joins
    // deadlock-free, compiled statements contain no subqueries, and sinks
    // never touch tables, so nothing re-enters the row locks.
    let guards: Vec<RowsReadGuard<'_>> = tables.iter().map(|t| t.rows()).collect();
    let mut pass: Vec<usize> = Vec::new();
    let mut npass = 0usize;
    let mut rows_scratch: Vec<&[Value]> = Vec::with_capacity(nslots.max(1));
    let fast = cs.fast_filter.as_ref().and_then(|ff| ff.usable(ctx));

    if tables.is_empty() {
        // Zero-table SELECT: one conceptual empty tuple through the filter.
        let keep = match &cs.filter {
            Some(f) => eval_p(ctx, &[], f)?.is_truthy(),
            None => true,
        };
        if keep {
            npass = 1;
        }
    } else {
        let sets: Vec<Arc<IndexSet>> = tables.iter().map(|t| t.index_set()).collect();
        let sizes: Vec<usize> = guards.iter().map(|g| g.len()).collect();
        let slots: Vec<SlotMeta<'_>> = metas
            .iter()
            .map(|m| SlotMeta {
                alias: m.alias.as_deref(),
                table_name: &m.table_name,
                schema: &m.schema,
            })
            .collect();
        let set_refs: Vec<&IndexSet> = sets.iter().map(|s| s.as_ref()).collect();
        // Re-plan per execution: the greedy join order depends on live table
        // sizes, and matching the interpreter's order is part of the
        // byte-identity contract (visit order, counters, error rows).
        let aplan = plan::plan(
            stmt.selection.as_ref(),
            &slots,
            &set_refs,
            &sizes,
            ctx.session,
            ctx.params,
        );
        let mut visited: u64 = 0;
        if aplan.any_index {
            for (_, access) in &aplan.levels {
                let counter = match access {
                    Access::Full => &ctx.stats.index_misses,
                    _ => &ctx.stats.index_hits,
                };
                counter.fetch_add(1, AtomicOrdering::Relaxed);
            }
            let static_cands: Vec<Option<Vec<usize>>> = aplan
                .levels
                .iter()
                .map(|(slot, access)| plan::static_candidates(access, &sets[*slot]))
                .collect();
            let mut tuples: Vec<Vec<usize>> = Vec::new();
            let mut current = vec![0usize; nslots];
            enumerate_candidates(
                0,
                &aplan.levels,
                &static_cands,
                &guards,
                &sets,
                &sizes,
                &mut current,
                &mut tuples,
                &mut visited,
            );
            tuples.sort_unstable();
            for chunk in tuples.chunks(BATCH_ROWS) {
                for tup in chunk {
                    rows_scratch.clear();
                    for (s, &pos) in tup.iter().enumerate() {
                        rows_scratch.push(guards[s][pos].as_slice());
                    }
                    let keep = match (fast, &cs.filter) {
                        (Some(cj), _) => cj.iter().all(|c| c.keeps(&rows_scratch, ctx.params)),
                        (None, Some(f)) => eval_p(ctx, &rows_scratch, f)?.is_truthy(),
                        (None, None) => true,
                    };
                    if keep {
                        pass.extend_from_slice(tup);
                        npass += 1;
                    }
                }
                tick(&ctx.stats.batches_vectorized);
                ctx.stats
                    .rows_batched
                    .fetch_add(chunk.len() as u64, AtomicOrdering::Relaxed);
            }
        } else if nslots == 1 {
            // Single-table full scan: iterate the row vector directly in
            // batch-sized spans — no odometer, no position buffer, and with
            // a fused filter no per-row scratch rebuild either. Batch and
            // scan counters land exactly as the odometer would have them.
            ctx.stats.index_misses.fetch_add(1, AtomicOrdering::Relaxed);
            let all: &[Row] = &guards[0];
            let mut start = 0usize;
            while start < all.len() {
                let end = (start + BATCH_ROWS).min(all.len());
                if let Some(cj) = fast {
                    for (k, row) in all[start..end].iter().enumerate() {
                        let r = [row.as_slice()];
                        if cj.iter().all(|c| c.keeps(&r, ctx.params)) {
                            pass.push(start + k);
                            npass += 1;
                        }
                    }
                } else {
                    for (k, row) in all[start..end].iter().enumerate() {
                        rows_scratch.clear();
                        rows_scratch.push(row.as_slice());
                        let keep = match &cs.filter {
                            Some(f) => eval_p(ctx, &rows_scratch, f)?.is_truthy(),
                            None => true,
                        };
                        if keep {
                            pass.push(start + k);
                            npass += 1;
                        }
                    }
                }
                visited += (end - start) as u64;
                tick(&ctx.stats.batches_vectorized);
                ctx.stats
                    .rows_batched
                    .fetch_add((end - start) as u64, AtomicOrdering::Relaxed);
                start = end;
            }
        } else {
            ctx.stats
                .index_misses
                .fetch_add(nslots as u64, AtomicOrdering::Relaxed);
            if sizes.iter().all(|&n| n > 0) {
                // Odometer over row positions, in batches: fill a flat
                // position buffer, then filter it — never materializing the
                // joined row the interpreter clones per candidate.
                let mut buf: Vec<usize> = Vec::with_capacity(BATCH_ROWS * nslots);
                let mut idx = vec![0usize; nslots];
                let mut exhausted = false;
                while !exhausted {
                    buf.clear();
                    let mut n_in = 0usize;
                    while n_in < BATCH_ROWS {
                        buf.extend_from_slice(&idx);
                        n_in += 1;
                        if !advance(&mut idx, &sizes) {
                            exhausted = true;
                            break;
                        }
                    }
                    for ti in 0..n_in {
                        let tup = &buf[ti * nslots..(ti + 1) * nslots];
                        visited += 1;
                        rows_scratch.clear();
                        for (s, &pos) in tup.iter().enumerate() {
                            rows_scratch.push(guards[s][pos].as_slice());
                        }
                        let keep = match (fast, &cs.filter) {
                            (Some(cj), _) => cj.iter().all(|c| c.keeps(&rows_scratch, ctx.params)),
                            (None, Some(f)) => eval_p(ctx, &rows_scratch, f)?.is_truthy(),
                            (None, None) => true,
                        };
                        if keep {
                            pass.extend_from_slice(tup);
                            npass += 1;
                        }
                    }
                    tick(&ctx.stats.batches_vectorized);
                    ctx.stats
                        .rows_batched
                        .fetch_add(n_in as u64, AtomicOrdering::Relaxed);
                }
            }
        }
        // Interpreter parity: scanned count lands only after the whole
        // filter phase succeeded (an error mid-scan skips it there too).
        ctx.stats
            .rows_scanned
            .fetch_add(visited, AtomicOrdering::Relaxed);
    }

    let b = BatchCtx {
        guards: &guards,
        pass: &pass,
        stride: nslots,
        npass,
    };
    let out_names = cs.out_names.clone();
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();

    if cs.has_aggregates {
        // Group keys per passing tuple, sorted + partitioned into runs —
        // the interpreter's exact grouping (and thus group emission order).
        let groups: Vec<Vec<usize>> = if cs.group_by.is_empty() {
            // One global group in scan order — exactly what sorting the
            // all-empty key list yields, without materializing or sorting
            // it. For `npass == 0` this is the single empty group the
            // interpreter emits for a global aggregate over no rows.
            vec![(0..b.npass).collect()]
        } else {
            let mut keys: Vec<Vec<Value>> = Vec::with_capacity(b.npass);
            for ti in 0..b.npass {
                b.load(ti, &mut rows_scratch);
                let mut key = Vec::with_capacity(cs.group_by.len());
                for g in &cs.group_by {
                    key.push(eval_p(ctx, &rows_scratch, g)?);
                }
                keys.push(key);
            }
            let mut order: Vec<usize> = (0..b.npass).collect();
            order.sort_by(|&x, &y| cmp_key(&keys[x], &keys[y]));

            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut i = 0;
            while i < order.len() {
                let mut j = i + 1;
                while j < order.len()
                    && cmp_key(&keys[order[i]], &keys[order[j]]) == std::cmp::Ordering::Equal
                {
                    j += 1;
                }
                groups.push(order[i..j].to_vec());
                i = j;
            }
            groups
        };
        let fused = cs
            .fused_aggs
            .as_ref()
            .and_then(|fa| (fa.params_needed <= ctx.params.len()).then_some(&fa.items[..]));

        for group in &groups {
            if let Some(having) = &cs.having {
                if !eval_pagg(ctx, &b, group, having)?.is_truthy() {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(out_names.len());
            if let Some(items) = fused {
                // One pass over the group's rows fills every aggregate's
                // non-null input vector; finishes then run in item order,
                // feeding finish_aggregate the exact values the per-item
                // walk would have collected.
                let mut vals: Vec<Vec<Value>> = items
                    .iter()
                    .map(|fa| match fa {
                        FAgg::Agg { .. } => Vec::with_capacity(group.len()),
                        _ => Vec::new(),
                    })
                    .collect();
                for &ti in group {
                    b.load(ti, &mut rows_scratch);
                    for (k, fa) in items.iter().enumerate() {
                        if let FAgg::Agg { arg, .. } = fa {
                            let v = arg.get(&rows_scratch, ctx.params);
                            if !v.is_null() {
                                vals[k].push(v.clone());
                            }
                        }
                    }
                }
                for (k, fa) in items.iter().enumerate() {
                    out_row.push(match fa {
                        FAgg::CountStar => Value::Int(group.len() as i64),
                        FAgg::First(a) => match group.first() {
                            Some(&ti) => {
                                b.load(ti, &mut rows_scratch);
                                a.get(&rows_scratch, ctx.params).clone()
                            }
                            None => Value::Null,
                        },
                        FAgg::Agg { name, distinct, .. } => {
                            finish_aggregate(name, std::mem::take(&mut vals[k]), *distinct)?
                        }
                    });
                }
            } else {
                for item in &cs.agg_proj {
                    match item {
                        PAggItem::WildcardErr => {
                            return Err(Error::exec(
                                "wildcard projection is not allowed with GROUP BY/aggregates",
                            ))
                        }
                        PAggItem::Value(pa) => out_row.push(eval_pagg(ctx, &b, group, pa)?),
                    }
                }
            }
            let mut key = Vec::with_capacity(cs.order.len());
            for o in &cs.order {
                key.push(match o {
                    POrder::Out(i) => out_row[*i].clone(),
                    POrder::OrdinalErr(n) => {
                        return Err(Error::exec(format!("ORDER BY position {n} out of range")))
                    }
                    POrder::Group(pa) => eval_pagg(ctx, &b, group, pa)?,
                    POrder::Row(_) => unreachable!("row-context key on aggregate path"),
                });
            }
            keyed.push((key, out_row));
        }
    } else {
        for ti in 0..b.npass {
            b.load(ti, &mut rows_scratch);
            let mut out_row = Vec::with_capacity(out_names.len());
            for p in &cs.proj {
                match p {
                    PProj::AllSlots => {
                        for slice in &rows_scratch {
                            out_row.extend(slice.iter().cloned());
                        }
                    }
                    PProj::Slot(s) => out_row.extend(rows_scratch[*s].iter().cloned()),
                    PProj::Expr(e) => out_row.push(eval_p(ctx, &rows_scratch, e)?),
                }
            }
            let mut key = Vec::with_capacity(cs.order.len());
            for o in &cs.order {
                key.push(match o {
                    POrder::Out(i) => out_row[*i].clone(),
                    POrder::OrdinalErr(n) => {
                        return Err(Error::exec(format!("ORDER BY position {n} out of range")))
                    }
                    POrder::Row(e) => eval_p(ctx, &rows_scratch, e)?,
                    POrder::Group(_) => unreachable!("group-context key on row path"),
                });
            }
            keyed.push((key, out_row));
        }
    }

    let rows = finish_rows(keyed, stmt.distinct, &stmt.order_by);
    Ok((out_names, rows, cs.out_types.clone()))
}

// ---------------------------------------------------------------------------
// DML entry points
// ---------------------------------------------------------------------------

/// Obtain (or lower) the compiled program for an UPDATE. `None` = run the
/// interpreter loop; all fallback/`exec_compiled` counters tick here.
pub(crate) fn plan_update(
    ctx: &QueryCtx<'_>,
    lowered: Option<&LoweredCache>,
    stmt_key: usize,
    t: &Table,
    assignments: &[(String, Expr)],
    selection: Option<&Expr>,
) -> Option<Arc<CompiledUpdate>> {
    if !gate(ctx) {
        return None;
    }
    let cu = cached_plan(
        ctx,
        lowered.map(|c| &c.updates),
        stmt_key,
        |cu: &CompiledUpdate| cu.slot.binds(t),
        || lower_update(ctx, t, assignments, selection),
    );
    note_dml_outcome(ctx, cu.is_some());
    cu
}

/// Obtain (or lower) the compiled program for a DELETE.
pub(crate) fn plan_delete(
    ctx: &QueryCtx<'_>,
    lowered: Option<&LoweredCache>,
    stmt_key: usize,
    t: &Table,
    selection: Option<&Expr>,
) -> Option<Arc<CompiledDelete>> {
    if !gate(ctx) {
        return None;
    }
    let cd = cached_plan(
        ctx,
        lowered.map(|c| &c.deletes),
        stmt_key,
        |cd: &CompiledDelete| cd.slot.binds(t),
        || lower_delete(ctx, t, selection),
    );
    note_dml_outcome(ctx, cd.is_some());
    cd
}

/// Obtain (or lower) the compiled row programs for an `INSERT ... VALUES`.
pub(crate) fn plan_insert(
    ctx: &QueryCtx<'_>,
    lowered: Option<&LoweredCache>,
    stmt_key: usize,
    rows: &[Vec<Expr>],
) -> Option<Arc<CompiledInsert>> {
    if !gate(ctx) {
        return None;
    }
    let ci = cached_plan(
        ctx,
        lowered.map(|c| &c.inserts),
        stmt_key,
        // VALUES programs reference no tables; shaping/validation use the
        // live schema in the engine, so there is nothing to re-bind.
        |_: &CompiledInsert| true,
        || lower_insert(ctx, rows),
    );
    note_dml_outcome(ctx, ci.is_some());
    ci
}

fn note_dml_outcome(ctx: &QueryCtx<'_>, compiled: bool) {
    if compiled {
        tick(&ctx.stats.exec_compiled);
    } else {
        tick(&ctx.stats.exec_interpreted);
        tick(&ctx.stats.exec_fallback_expr);
    }
}

/// `(row updates to apply, old rows, new rows)` for the trigger machinery.
pub(crate) type UpdateSet = (Vec<(usize, Row)>, Vec<Row>, Vec<Row>);

/// Run a compiled UPDATE's match/compute phase over the probe candidates.
/// Mirrors the engine's interpreter loop row-for-row (filter, then resolve
/// each assignment column, then evaluate, then `check_row`).
pub(crate) fn run_update_compiled(
    ctx: &QueryCtx<'_>,
    cu: &CompiledUpdate,
    t: &Table,
    rows: &[Row],
    candidates: &[usize],
) -> Result<UpdateSet> {
    let mut updates: Vec<(usize, Row)> = Vec::new();
    let mut old_rows: Vec<Row> = Vec::new();
    let mut new_rows: Vec<Row> = Vec::new();
    let fast = cu.fast_filter.as_ref().and_then(|ff| ff.usable(ctx));
    for chunk in candidates.chunks(BATCH_ROWS) {
        for &i in chunk {
            let sr = [rows[i].as_slice()];
            let matches = match (fast, &cu.filter) {
                (Some(cj), _) => cj.iter().all(|c| c.keeps(&sr, ctx.params)),
                (None, Some(f)) => eval_p(ctx, &sr, f)?.is_truthy(),
                (None, None) => true,
            };
            if !matches {
                continue;
            }
            let mut new_row = rows[i].clone();
            for (idx, name, e) in &cu.assigns {
                let idx = idx.ok_or_else(|| Error::NotFound {
                    kind: ObjectKind::Column,
                    name: name.clone(),
                })?;
                new_row[idx] = eval_p(ctx, &sr, e)?;
            }
            let new_row = t.check_row(new_row)?;
            old_rows.push(rows[i].clone());
            new_rows.push(new_row.clone());
            updates.push((i, new_row));
        }
        tick(&ctx.stats.batches_vectorized);
        ctx.stats
            .rows_batched
            .fetch_add(chunk.len() as u64, AtomicOrdering::Relaxed);
    }
    Ok((updates, old_rows, new_rows))
}

/// Run a compiled DELETE's match phase; returns doomed row positions in
/// ascending candidate order.
pub(crate) fn run_delete_compiled(
    ctx: &QueryCtx<'_>,
    cd: &CompiledDelete,
    rows: &[Row],
    candidates: &[usize],
) -> Result<Vec<usize>> {
    let mut doomed = Vec::new();
    let fast = cd.fast_filter.as_ref().and_then(|ff| ff.usable(ctx));
    for chunk in candidates.chunks(BATCH_ROWS) {
        for &i in chunk {
            let sr = [rows[i].as_slice()];
            let matches = match (fast, &cd.filter) {
                (Some(cj), _) => cj.iter().all(|c| c.keeps(&sr, ctx.params)),
                (None, Some(f)) => eval_p(ctx, &sr, f)?.is_truthy(),
                (None, None) => true,
            };
            if matches {
                doomed.push(i);
            }
        }
        tick(&ctx.stats.batches_vectorized);
        ctx.stats
            .rows_batched
            .fetch_add(chunk.len() as u64, AtomicOrdering::Relaxed);
    }
    Ok(doomed)
}

/// Evaluate a compiled VALUES list into source rows.
pub(crate) fn eval_insert_rows(ctx: &QueryCtx<'_>, ci: &CompiledInsert) -> Result<Vec<Row>> {
    let mut acc = Vec::with_capacity(ci.rows.len());
    for exprs in &ci.rows {
        let mut row = Vec::with_capacity(exprs.len());
        for e in exprs {
            row.push(eval_p(ctx, &[], e)?);
        }
        acc.push(row);
    }
    if !ci.rows.is_empty() {
        tick(&ctx.stats.batches_vectorized);
        ctx.stats
            .rows_batched
            .fetch_add(ci.rows.len() as u64, AtomicOrdering::Relaxed);
    }
    Ok(acc)
}
