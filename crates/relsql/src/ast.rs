//! Abstract syntax tree for the Transact-SQL subset.

use crate::value::{DataType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    DropTable {
        name: String,
    },
    /// `ALTER TABLE t ADD col type [null]` — used by the codegen of Figure 11
    /// to add the `vNo` column to shadow tables.
    AlterTableAdd {
        table: String,
        column: ColumnDef,
    },
    Insert {
        table: String,
        /// Explicit column list, or `None` for positional insert.
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        selection: Option<Expr>,
    },
    Delete {
        table: String,
        selection: Option<Expr>,
    },
    Select(SelectStmt),
    /// Native trigger: Sybase semantics — one per (table, operation), and a
    /// new definition silently overwrites the old one (§2.2 of the paper).
    CreateTrigger {
        name: String,
        table: String,
        operation: TriggerOp,
        body: Vec<Stmt>,
        /// Original source text of the body (persisted in the catalog).
        body_src: String,
    },
    DropTrigger {
        name: String,
    },
    CreateProcedure {
        name: String,
        body: Vec<Stmt>,
        body_src: String,
    },
    DropProcedure {
        name: String,
    },
    Execute {
        name: String,
    },
    Print(Expr),
    BeginTran,
    Commit,
    Rollback,
    /// `IF expr statement [ELSE statement]` — minimal T-SQL control flow.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    /// `WHILE expr statement`.
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    /// `BEGIN stmts END` block for IF/WHILE bodies.
    Block(Vec<Stmt>),
    /// `TRUNCATE TABLE t` — delete all rows quickly (no triggers fire, as in
    /// Sybase).
    Truncate {
        table: String,
    },
    /// `CREATE [UNIQUE] [HASH] INDEX name ON table (column)` — secondary
    /// index. Default kind is ordered (BTree: equality + range); `HASH`
    /// selects an equality-only hash index.
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
        hash: bool,
    },
    /// `DROP INDEX name`.
    DropIndex {
        name: String,
    },
}

/// Source of rows for an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

/// Which DML operation a trigger watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerOp {
    Insert,
    Update,
    Delete,
}

impl TriggerOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            TriggerOp::Insert => "insert",
            TriggerOp::Update => "update",
            TriggerOp::Delete => "delete",
        }
    }

    /// Parse from a keyword (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("insert") {
            Some(TriggerOp::Insert)
        } else if s.eq_ignore_ascii_case("update") {
            Some(TriggerOp::Update)
        } else if s.eq_ignore_ascii_case("delete") {
            Some(TriggerOp::Delete)
        } else {
            None
        }
    }
}

impl std::fmt::Display for TriggerOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A column definition in CREATE TABLE / ALTER TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

/// A SELECT statement (optionally `SELECT ... INTO newtable`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    /// `SELECT ... INTO t` creates `t` from the result (Figure 11 uses
    /// `select * into shadow from stock where 1=2`).
    pub into: Option<String>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
}

impl SelectStmt {
    /// An empty SELECT scaffold.
    pub fn new(projection: Vec<SelectItem>) -> Self {
        SelectStmt {
            distinct: false,
            projection,
            into: None,
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
        }
    }
}

/// One item in a projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM (comma joins only, per the paper's generated
/// SQL in Figure 14).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Full (possibly dotted) table name.
    pub name: String,
    pub alias: Option<String>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Bound parameter produced by the statement-plan cache: the i-th
    /// literal masked out of the batch text. Evaluates against
    /// `QueryCtx::params`, never written by the parser for raw literals.
    Param(usize),
    /// Column reference, optionally qualified by a (possibly dotted) table
    /// name or alias.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Function call: scalar (`getdate()`, `syb_sendmsg(...)`) or aggregate
    /// (`count`, `sum`, `avg`, `min`, `max`).
    Function {
        name: String,
        args: Vec<Expr>,
        /// `count(*)` marker.
        star: bool,
        /// `count(distinct col)` marker — only meaningful on aggregates.
        distinct: bool,
    },
    IsNull {
        operand: Box<Expr>,
        negated: bool,
    },
    InList {
        operand: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        operand: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        operand: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `EXISTS (select ...)` — true when the subquery returns any row.
    Exists(Box<SelectStmt>),
    /// `(select ...)` in scalar position — must return at most one row of
    /// one column; empty result evaluates to NULL.
    Subquery(Box<SelectStmt>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl Expr {
    /// Build a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Build a qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Build a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if this expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { operand, .. } => operand.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { operand, .. } => operand.contains_aggregate(),
            Expr::InList { operand, list, .. } => {
                operand.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                operand, low, high, ..
            } => {
                operand.contains_aggregate()
                    || low.contains_aggregate()
                    || high.contains_aggregate()
            }
            Expr::Like {
                operand, pattern, ..
            } => operand.contains_aggregate() || pattern.contains_aggregate(),
            _ => false,
        }
    }
}

/// True for the aggregate function names the engine supports.
pub fn is_aggregate_name(name: &str) -> bool {
    ["count", "sum", "avg", "min", "max"]
        .iter()
        .any(|a| name.eq_ignore_ascii_case(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_op_roundtrip() {
        for op in [TriggerOp::Insert, TriggerOp::Update, TriggerOp::Delete] {
            assert_eq!(TriggerOp::parse(op.as_str()), Some(op));
            assert_eq!(TriggerOp::parse(&op.as_str().to_uppercase()), Some(op));
        }
        assert_eq!(TriggerOp::parse("select"), None);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![],
            star: true,
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(agg),
            right: Box::new(Expr::lit(3i64)),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
        let scalar = Expr::Function {
            name: "getdate".into(),
            args: vec![],
            star: false,
            distinct: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn expr_builders() {
        assert_eq!(
            Expr::qcol("t", "a"),
            Expr::Column {
                qualifier: Some("t".into()),
                name: "a".into()
            }
        );
        assert_eq!(Expr::lit(5i64), Expr::Literal(Value::Int(5)));
    }
}
