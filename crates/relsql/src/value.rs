//! Runtime values and column data types.
//!
//! The engine supports the scalar types the paper's generated SQL touches:
//! `int`, `float`, `varchar(n)`, `text`, and `datetime` (Figures 5-7, 17).
//! Datetimes are stored as microseconds on the engine's logical clock so
//! every run is deterministic.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// Bounded string (`varchar(n)`); values longer than `n` are truncated,
    /// matching Sybase's silent-truncation default.
    Varchar(usize),
    /// Unbounded string (`text`).
    Text,
    /// Microseconds on the engine clock (`datetime`).
    DateTime,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("int"),
            DataType::Float => f.write_str("float"),
            DataType::Varchar(n) => write!(f, "varchar({n})"),
            DataType::Text => f.write_str("text"),
            DataType::DateTime => f.write_str("datetime"),
        }
    }
}

/// A runtime scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    DateTime(i64),
}

impl Value {
    /// SQL three-valued-logic truthiness: NULL is not true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::DateTime(_) => true,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The natural type of this value, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
            Value::DateTime(_) => Some(DataType::DateTime),
        }
    }

    /// Coerce this value to fit a column of type `ty`.
    ///
    /// Follows Sybase's permissive conversions: int↔float, anything→string
    /// by formatting, numeric strings→numbers, and silent varchar truncation.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Int) => Ok(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Int(i), DataType::DateTime) => Ok(Value::DateTime(*i)),
            (Value::Float(f), DataType::Float) => Ok(Value::Float(*f)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Str(s), DataType::Text) => Ok(Value::Str(s.clone())),
            (Value::Str(s), DataType::Varchar(n)) => {
                let mut s = s.clone();
                if s.len() > n {
                    // Truncate on a char boundary at or below the byte limit.
                    let mut cut = n;
                    while !s.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    s.truncate(cut);
                }
                Ok(Value::Str(s))
            }
            (Value::Str(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::type_err(format!("cannot convert '{s}' to int"))),
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::type_err(format!("cannot convert '{s}' to float"))),
            (Value::DateTime(t), DataType::DateTime) => Ok(Value::DateTime(*t)),
            (Value::DateTime(t), DataType::Int) => Ok(Value::Int(*t)),
            (v, DataType::Varchar(n)) => Value::Str(v.to_string()).coerce_to(DataType::Varchar(n)),
            (v, DataType::Text) => Ok(Value::Str(v.to_string())),
            (v, ty) => Err(Error::type_err(format!("cannot convert {v} to {ty}",))),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown) or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::DateTime(a), Value::DateTime(b)) => Some(a.cmp(b)),
            (Value::DateTime(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::DateTime(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and GROUP BY grouping: NULLs sort
    /// first, then by type class, then by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::DateTime(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match class(self).cmp(&class(other)) {
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                ord => ord,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::DateTime(t) => write!(f, "dt:{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(2).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
        assert!(Value::DateTime(0).is_truthy());
    }

    #[test]
    fn coerce_int_float() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.9).coerce_to(DataType::Int).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn coerce_string_numeric() {
        assert_eq!(
            Value::Str(" 42 ".into()).coerce_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert!(Value::Str("abc".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(
            Value::Str("2.5".into()).coerce_to(DataType::Float).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn varchar_truncation_is_silent() {
        let v = Value::Str("abcdefgh".into())
            .coerce_to(DataType::Varchar(3))
            .unwrap();
        assert_eq!(v, Value::Str("abc".into()));
    }

    #[test]
    fn varchar_truncation_respects_char_boundary() {
        let v = Value::Str("héllo".into())
            .coerce_to(DataType::Varchar(2))
            .unwrap();
        // 'é' is two bytes starting at index 1; cut backs off to 1.
        assert_eq!(v, Value::Str("h".into()));
    }

    #[test]
    fn null_coerces_to_anything() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Varchar(5),
            DataType::DateTime,
        ] {
            assert_eq!(Value::Null.coerce_to(ty).unwrap(), Value::Null);
        }
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn datetime_compares_with_int() {
        assert_eq!(
            Value::DateTime(5).sql_cmp(&Value::Int(5)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::DateTime(9).to_string(), "dt:9");
    }

    #[test]
    fn datatype_display() {
        assert_eq!(DataType::Varchar(30).to_string(), "varchar(30)");
        assert_eq!(DataType::DateTime.to_string(), "datetime");
    }
}
