//! Write-ahead log and snapshot codec for the durability subsystem.
//!
//! The WAL is a *logical* log: each record carries one committed statement
//! batch verbatim (plus the session identity and the logical-clock reading
//! at execution start), and recovery replays the batches through the
//! ordinary engine. Because the engine is deterministic — `getdate()` runs
//! on the logical clock, which each record re-seeds, and `syb_sendmsg` is a
//! no-op while no sink is registered — replay reproduces the exact
//! committed state, including trigger effects, shadow-table rows and
//! version-counter bumps, without a physical page log.
//!
//! ## Record framing
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [body...]
//! body = [seq: u64] [clock: i64] [db: str] [user: str] [sql: bytes]
//! str  = [len: u32 LE] [utf8 bytes]
//! ```
//!
//! `crc32` covers the body (polynomial 0xEDB88320, the usual zlib CRC).
//! Sequence numbers are strictly increasing and never reset, so a
//! *duplicated* tail frame (a storage stack retrying a completed write) is
//! recognized and skipped, while a *gap* in sequence numbers means a record
//! vanished in the middle of the log — real corruption.
//!
//! ## Tail classification
//!
//! A record that fails to frame (short read, impossible length, bad CRC)
//! ends the scan. If no well-formed record follows the failure point the
//! log simply stopped mid-write — a torn tail, the expected shape of a
//! crash, and the bytes before it are the committed prefix. If a valid
//! record *does* follow, bytes were damaged in the middle of the log and
//! recovery must fail loudly rather than silently drop committed work.

use std::sync::Arc;

use crate::catalog::{Database, ProcedureDef, TriggerDef};
use crate::error::{Error, Result};
use crate::eval::SessionCtx;
use crate::index::{IndexDef, IndexKind};
use crate::parser::parse_script;
use crate::table::{Column, Row, Schema, Table};
use crate::value::{DataType, Value};

/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "relsql.wal";
/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// When commits become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before acknowledging every commit (group commit lets one
    /// fsync cover a burst of queued commits).
    Always,
    /// fsync once every N records; a crash can lose up to N-1 acked
    /// commits.
    EveryN(u64),
    /// Never fsync from the commit path; durability rides on OS writeback
    /// and checkpoints.
    Off,
}

/// Durability tuning for a [`crate::server::SqlServer`] opened over storage.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint once the WAL grows past this many bytes
    /// (0 disables auto-checkpointing; explicit checkpoints still work).
    pub checkpoint_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_bytes: 4 * 1024 * 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (no external dependencies)
// ---------------------------------------------------------------------------

/// Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    /// Logical-clock reading when the batch started executing; replay
    /// re-seeds the clock so `getdate()` reproduces identical timestamps.
    pub clock: i64,
    pub db: String,
    pub user: String,
    pub sql: String,
    /// Byte range of the frame within the log.
    pub start: u64,
    pub end: u64,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

/// Encode one record as a framed WAL entry.
pub fn encode_record(seq: u64, clock: i64, session: &SessionCtx, sql: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(sql.len() + 64);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&clock.to_le_bytes());
    put_str(&mut body, &session.database);
    put_str(&mut body, &session.user);
    body.extend_from_slice(sql.as_bytes());
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Try to decode one frame starting at `offset`. `None` means the bytes do
/// not form a complete, checksum-valid record there.
fn decode_frame(bytes: &[u8], offset: usize) -> Option<WalRecord> {
    let mut r = Reader::new(&bytes[offset..]);
    let len = r.u32()? as usize;
    // Bodies are at least seq + clock + two empty strings.
    if len < 24 {
        return None;
    }
    let crc = r.u32()?;
    let body = r.take(len)?;
    if crc32(body) != crc {
        return None;
    }
    let mut b = Reader::new(body);
    let seq = b.u64()?;
    let clock = b.i64()?;
    let db = b.str()?;
    let user = b.str()?;
    let sql = String::from_utf8(b.rest().to_vec()).ok()?;
    Some(WalRecord {
        seq,
        clock,
        db,
        user,
        sql,
        start: offset as u64,
        end: (offset + 8 + len) as u64,
    })
}

/// How the scan of a log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a valid record.
    Clean,
    /// The log stops mid-record at `at` — the expected crash boundary; the
    /// bytes before it are the committed prefix.
    Torn { at: u64 },
    /// A record at `at` is damaged but valid records follow it: committed
    /// work would be lost by trimming, so recovery must fail loudly.
    Corrupt { at: u64 },
}

/// Result of scanning a WAL byte image.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Accepted records, in order (duplicated frames skipped).
    pub records: Vec<WalRecord>,
    pub tail: WalTail,
    /// Bytes of the valid prefix (including skipped duplicate frames).
    pub valid_len: u64,
    /// Duplicated tail frames recognized by sequence number and skipped.
    pub duplicates_skipped: u64,
}

/// Scan a WAL image, accepting the longest valid prefix and classifying
/// whatever follows it (see the module docs for torn vs. corrupt).
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut offset = 0usize;
    let mut duplicates = 0u64;
    let mut last_seq: Option<u64> = None;
    let tail = loop {
        if offset == bytes.len() {
            break WalTail::Clean;
        }
        match decode_frame(bytes, offset) {
            Some(rec) => {
                let next = rec.end as usize;
                match last_seq {
                    Some(prev) if rec.seq <= prev => {
                        // A retried write must reproduce the frame it
                        // duplicates byte-for-byte (the encoding is a pure
                        // function of the fields, so field equality is byte
                        // equality). A checksum-valid frame with a stale seq
                        // but *different* content is damage, not a retry.
                        let matches_accepted = records
                            .iter()
                            .rev()
                            .find(|p| p.seq == rec.seq)
                            .is_some_and(|p| {
                                p.clock == rec.clock
                                    && p.db == rec.db
                                    && p.user == rec.user
                                    && p.sql == rec.sql
                            });
                        if !matches_accepted {
                            break WalTail::Corrupt { at: offset as u64 };
                        }
                        duplicates += 1;
                    }
                    Some(prev) if rec.seq > prev + 1 => {
                        // A record vanished in the middle: loud corruption.
                        break WalTail::Corrupt { at: offset as u64 };
                    }
                    _ => {
                        last_seq = Some(rec.seq);
                        records.push(rec);
                    }
                }
                offset = next;
            }
            None => {
                // No frame here. If any well-formed record exists beyond
                // this point the damage is in the *middle* of the log.
                let resync = (offset + 1..bytes.len().saturating_sub(8))
                    .any(|o| decode_frame(bytes, o).is_some());
                break if resync {
                    WalTail::Corrupt { at: offset as u64 }
                } else {
                    WalTail::Torn { at: offset as u64 }
                };
            }
        }
    };
    WalScan {
        records,
        tail,
        valid_len: offset as u64,
        duplicates_skipped: duplicates,
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

const SNAP_MAGIC: &[u8; 8] = b"RSQLSNP2";

fn corrupt(msg: impl Into<String>) -> Error {
    Error::Io {
        msg: format!("snapshot corrupt: {}", msg.into()),
    }
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        // Bit-exact float round-trip; a textual dump would lose precision.
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::DateTime(t) => {
            buf.push(4);
            buf.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    let tag = r.take(1).ok_or_else(|| corrupt("value tag"))?[0];
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(r.i64().ok_or_else(|| corrupt("int value"))?),
        2 => Value::Float(f64::from_bits(
            r.u64().ok_or_else(|| corrupt("float value"))?,
        )),
        3 => Value::Str(r.str().ok_or_else(|| corrupt("str value"))?),
        4 => Value::DateTime(r.i64().ok_or_else(|| corrupt("datetime value"))?),
        t => return Err(corrupt(format!("unknown value tag {t}"))),
    })
}

fn put_type(buf: &mut Vec<u8>, t: DataType) {
    match t {
        DataType::Int => buf.push(0),
        DataType::Float => buf.push(1),
        DataType::Varchar(n) => {
            buf.push(2);
            buf.extend_from_slice(&(n as u32).to_le_bytes());
        }
        DataType::Text => buf.push(3),
        DataType::DateTime => buf.push(4),
    }
}

fn get_type(r: &mut Reader<'_>) -> Result<DataType> {
    let tag = r.take(1).ok_or_else(|| corrupt("type tag"))?[0];
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Varchar(r.u32().ok_or_else(|| corrupt("varchar len"))? as usize),
        3 => DataType::Text,
        4 => DataType::DateTime,
        t => return Err(corrupt(format!("unknown type tag {t}"))),
    })
}

/// Serialize the full catalog plus the logical-clock reading and the
/// sequence number of the last WAL record whose effects the snapshot
/// contains (`0` = none). Recovery skips WAL records with `seq <=
/// last_seq`, which is what makes the checkpoint's two disk steps
/// (replace snapshot, then truncate WAL) safe to interrupt: a crash
/// between them leaves the new snapshot plus the full old log, and
/// without the high-water mark every record would replay *twice*.
/// Tables, triggers and procedures are emitted in sorted order so
/// identical states produce identical bytes.
pub fn encode_snapshot(db: &Database, clock: i64, last_seq: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&clock.to_le_bytes());
    buf.extend_from_slice(&last_seq.to_le_bytes());

    let names = db.table_names();
    buf.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in &names {
        let t = db
            .table(&crate::catalog::name_key(name))
            .expect("name came from the catalog");
        put_str(&mut buf, &t.name);
        buf.extend_from_slice(&(t.schema.len() as u32).to_le_bytes());
        for col in &t.schema.columns {
            put_str(&mut buf, &col.name);
            put_type(&mut buf, col.data_type);
            buf.push(col.nullable as u8);
        }
        let rows = t.rows();
        buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for row in rows.iter() {
            for v in row {
                put_value(&mut buf, v);
            }
        }
        drop(rows);
        let mut defs = t.index_defs();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        buf.extend_from_slice(&(defs.len() as u32).to_le_bytes());
        for d in defs {
            put_str(&mut buf, &d.name);
            put_str(&mut buf, &d.column);
            buf.push(d.unique as u8);
            buf.push(matches!(d.kind, IndexKind::Hash) as u8);
        }
    }

    let triggers = db.trigger_defs();
    buf.extend_from_slice(&(triggers.len() as u32).to_le_bytes());
    for t in triggers {
        put_str(&mut buf, &t.name);
        put_str(&mut buf, &t.table_key);
        buf.push(match t.operation {
            crate::ast::TriggerOp::Insert => 0,
            crate::ast::TriggerOp::Update => 1,
            crate::ast::TriggerOp::Delete => 2,
        });
        put_str(&mut buf, &t.body_src);
    }

    let procedures = db.procedure_defs();
    buf.extend_from_slice(&(procedures.len() as u32).to_le_bytes());
    for p in procedures {
        put_str(&mut buf, &p.name);
        put_str(&mut buf, &p.body_src);
    }
    buf
}

/// Rebuild a catalog (plus the clock reading and the last-applied WAL
/// sequence number) from snapshot bytes. Trigger and procedure bodies are
/// re-parsed from their persisted source.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Database, i64, u64)> {
    let mut r = Reader::new(bytes);
    if r.take(8) != Some(SNAP_MAGIC.as_slice()) {
        return Err(corrupt("bad magic"));
    }
    let clock = r.i64().ok_or_else(|| corrupt("clock"))?;
    let last_seq = r.u64().ok_or_else(|| corrupt("last seq"))?;
    let mut db = Database::new();

    let n_tables = r.u32().ok_or_else(|| corrupt("table count"))?;
    let mut pending_indexes: Vec<(String, IndexDef)> = Vec::new();
    for _ in 0..n_tables {
        let name = r.str().ok_or_else(|| corrupt("table name"))?;
        let n_cols = r.u32().ok_or_else(|| corrupt("column count"))?;
        let mut columns = Vec::with_capacity(n_cols as usize);
        for _ in 0..n_cols {
            let col_name = r.str().ok_or_else(|| corrupt("column name"))?;
            let data_type = get_type(&mut r)?;
            let nullable = r.take(1).ok_or_else(|| corrupt("nullable flag"))?[0] != 0;
            columns.push(Column::new(col_name, data_type, nullable));
        }
        let n_rows = r.u64().ok_or_else(|| corrupt("row count"))?;
        let mut rows: Vec<Row> = Vec::with_capacity(n_rows.min(1 << 20) as usize);
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(columns.len());
            for _ in 0..columns.len() {
                row.push(get_value(&mut r)?);
            }
            rows.push(row);
        }
        let n_idx = r.u32().ok_or_else(|| corrupt("index count"))?;
        for _ in 0..n_idx {
            let idx_name = r.str().ok_or_else(|| corrupt("index name"))?;
            let column = r.str().ok_or_else(|| corrupt("index column"))?;
            let unique = r.take(1).ok_or_else(|| corrupt("index unique"))?[0] != 0;
            let hash = r.take(1).ok_or_else(|| corrupt("index kind"))?[0] != 0;
            pending_indexes.push((
                name.clone(),
                IndexDef {
                    name: idx_name,
                    column,
                    unique,
                    kind: if hash {
                        IndexKind::Hash
                    } else {
                        IndexKind::Ordered
                    },
                },
            ));
        }
        db.create_table(Table::with_rows(name, Schema::new(columns), rows))
            .map_err(|e| corrupt(format!("duplicate table: {e}")))?;
    }
    for (table, def) in pending_indexes {
        db.create_index(&table, def, None)
            .map_err(|e| corrupt(format!("index rebuild: {e}")))?;
    }

    let n_triggers = r.u32().ok_or_else(|| corrupt("trigger count"))?;
    for _ in 0..n_triggers {
        let name = r.str().ok_or_else(|| corrupt("trigger name"))?;
        let table_key = r.str().ok_or_else(|| corrupt("trigger table"))?;
        let op = match r.take(1).ok_or_else(|| corrupt("trigger op"))?[0] {
            0 => crate::ast::TriggerOp::Insert,
            1 => crate::ast::TriggerOp::Update,
            2 => crate::ast::TriggerOp::Delete,
            t => return Err(corrupt(format!("unknown trigger op {t}"))),
        };
        let body_src = r.str().ok_or_else(|| corrupt("trigger body"))?;
        let body = parse_script(&body_src)
            .map_err(|e| corrupt(format!("trigger '{name}' body unparsable: {e}")))?;
        db.create_trigger(TriggerDef {
            name,
            table_key,
            operation: op,
            body,
            body_src,
        })
        .map_err(|e| corrupt(format!("trigger rebuild: {e}")))?;
    }

    let n_procs = r.u32().ok_or_else(|| corrupt("procedure count"))?;
    for _ in 0..n_procs {
        let name = r.str().ok_or_else(|| corrupt("procedure name"))?;
        let body_src = r.str().ok_or_else(|| corrupt("procedure body"))?;
        let body = parse_script(&body_src)
            .map_err(|e| corrupt(format!("procedure '{name}' body unparsable: {e}")))?;
        db.create_procedure(ProcedureDef {
            name,
            body,
            body_src,
        })
        .map_err(|e| corrupt(format!("procedure rebuild: {e}")))?;
    }
    if r.pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((db, clock, last_seq))
}

// ---------------------------------------------------------------------------
// The log writer (group commit)
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::storage::Storage;

/// Cumulative durability counters, surfaced through `ServerStats`.
#[derive(Debug, Default)]
pub struct WalCounters {
    pub records: AtomicU64,
    pub bytes: AtomicU64,
    pub fsyncs: AtomicU64,
    pub group_commits: AtomicU64,
    pub checkpoints: AtomicU64,
    pub replayed: AtomicU64,
    pub torn_tail: AtomicU64,
}

struct WalState {
    next_seq: u64,
    /// Bytes in the current log (valid prefix only).
    len: u64,
    bytes_since_checkpoint: u64,
}

/// The append/commit side of the WAL. Appends happen while the server
/// holds its exclusive schedule lock (so log order *is* execution order);
/// the durability wait happens after the lock is released, which is what
/// lets one fsync absorb a burst of queued commits (group commit).
pub struct Wal {
    storage: Arc<dyn Storage>,
    config: DurabilityConfig,
    state: Mutex<WalState>,
    /// Highest sequence number appended / made durable.
    appended_seq: AtomicU64,
    durable_seq: AtomicU64,
    fsync_lock: Mutex<()>,
    /// Set on the first storage error; the server degrades to read-only.
    read_only: AtomicBool,
    pub counters: WalCounters,
}

impl Wal {
    pub(crate) fn new(
        storage: Arc<dyn Storage>,
        config: DurabilityConfig,
        next_seq: u64,
        len: u64,
    ) -> Self {
        Wal {
            storage,
            config,
            state: Mutex::new(WalState {
                next_seq,
                len,
                bytes_since_checkpoint: len,
            }),
            appended_seq: AtomicU64::new(next_seq.saturating_sub(1)),
            durable_seq: AtomicU64::new(next_seq.saturating_sub(1)),
            fsync_lock: Mutex::new(()),
            read_only: AtomicBool::new(false),
            counters: WalCounters::default(),
        }
    }

    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// Sequence number of the last appended record (0 = none yet). Under
    /// the exclusive schedule lock every appended record has also been
    /// executed, so this is the high-water mark a checkpoint snapshot must
    /// carry for recovery to skip already-applied WAL records.
    pub(crate) fn last_seq(&self) -> u64 {
        self.appended_seq.load(Ordering::SeqCst)
    }

    /// True once a storage error has poisoned the log.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    fn poison(&self, e: Error) -> Error {
        self.read_only.store(true, Ordering::SeqCst);
        e
    }

    /// Append one batch record. Returns its sequence number.
    pub(crate) fn append(&self, clock: i64, session: &SessionCtx, sql: &str) -> Result<u64> {
        if self.is_read_only() {
            return Err(Error::Io {
                msg: "server is read-only after a WAL write failure".into(),
            });
        }
        let mut state = self.state.lock();
        let seq = state.next_seq;
        let frame = encode_record(seq, clock, session, sql);
        self.storage
            .append(WAL_FILE, &frame)
            .map_err(|e| self.poison(e))?;
        state.next_seq += 1;
        state.len += frame.len() as u64;
        state.bytes_since_checkpoint += frame.len() as u64;
        self.appended_seq.store(seq, Ordering::SeqCst);
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(seq)
    }

    /// Wait (per policy) until the record `seq` is durable. Called after
    /// the schedule lock is released so commits can share fsyncs.
    pub(crate) fn commit(&self, seq: u64) -> Result<()> {
        match self.config.fsync {
            FsyncPolicy::Off => Ok(()),
            FsyncPolicy::EveryN(n) => {
                if n > 0 && seq.is_multiple_of(n) {
                    self.fsync_to(seq)?;
                }
                Ok(())
            }
            FsyncPolicy::Always => self.fsync_to(seq),
        }
    }

    fn fsync_to(&self, seq: u64) -> Result<()> {
        if self.durable_seq.load(Ordering::SeqCst) >= seq {
            return Ok(()); // a neighbour's fsync already covered us
        }
        let _guard = self.fsync_lock.lock();
        if self.durable_seq.load(Ordering::SeqCst) >= seq {
            self.counters.group_commits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let target = self.appended_seq.load(Ordering::SeqCst);
        self.storage.sync(WAL_FILE).map_err(|e| self.poison(e))?;
        let prev = self.durable_seq.swap(target, Ordering::SeqCst);
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        if target.saturating_sub(prev) > 1 {
            self.counters.group_commits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Should the server take an automatic checkpoint now?
    pub(crate) fn wants_checkpoint(&self) -> bool {
        self.config.checkpoint_bytes > 0
            && !self.is_read_only()
            && self.state.lock().bytes_since_checkpoint >= self.config.checkpoint_bytes
    }

    /// Write a snapshot and truncate the log. The caller must have the
    /// engine quiesced (exclusive schedule lock) so `snapshot` is a
    /// consistent image of everything the log contains.
    pub(crate) fn checkpoint(&self, snapshot: &[u8]) -> Result<()> {
        if self.is_read_only() {
            return Err(Error::Io {
                msg: "server is read-only after a WAL write failure".into(),
            });
        }
        let mut state = self.state.lock();
        self.storage
            .replace(SNAPSHOT_FILE, snapshot)
            .map_err(|e| self.poison(e))?;
        self.storage.reset(WAL_FILE).map_err(|e| self.poison(e))?;
        state.len = 0;
        state.bytes_since_checkpoint = 0;
        // Everything executed so far is durable via the snapshot, so any
        // in-flight commit waits can return without touching the disk.
        self.durable_seq
            .store(self.appended_seq.load(Ordering::SeqCst), Ordering::SeqCst);
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current log length in bytes (valid prefix).
    pub fn len(&self) -> u64 {
        self.state.lock().len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    fn rec(seq: u64, sql: &str) -> Vec<u8> {
        encode_record(seq, 1000 + seq as i64, &SessionCtx::new("db", "u"), sql)
    }

    #[test]
    fn record_roundtrip() {
        let frame = rec(7, "insert t values (1)");
        let r = decode_frame(&frame, 0).unwrap();
        assert_eq!(r.seq, 7);
        assert_eq!(r.clock, 1007);
        assert_eq!(r.db, "db");
        assert_eq!(r.user, "u");
        assert_eq!(r.sql, "insert t values (1)");
        assert_eq!(r.end, frame.len() as u64);
    }

    #[test]
    fn scan_accepts_clean_log() {
        let mut log = rec(1, "a");
        log.extend(rec(2, "b"));
        log.extend(rec(3, "c"));
        let scan = scan_wal(&log);
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, log.len() as u64);
        assert_eq!(scan.duplicates_skipped, 0);
    }

    #[test]
    fn scan_classifies_torn_tail_at_every_cut() {
        let mut log = rec(1, "insert t values (1)");
        let first = log.len();
        log.extend(rec(2, "insert t values (2)"));
        for k in first + 1..log.len() {
            let scan = scan_wal(&log[..k]);
            assert_eq!(scan.records.len(), 1, "cut at {k}");
            assert!(
                matches!(scan.tail, WalTail::Torn { at } if at == first as u64),
                "cut at {k}: {:?}",
                scan.tail
            );
        }
    }

    #[test]
    fn scan_skips_duplicated_tail_frames() {
        let mut log = rec(1, "a");
        let f2 = rec(2, "b");
        log.extend(&f2);
        log.extend(&f2); // storage stack retried the completed write
        let scan = scan_wal(&log);
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.duplicates_skipped, 1);
        assert_eq!(scan.valid_len, log.len() as u64);
    }

    #[test]
    fn scan_flags_mid_log_corruption() {
        let mut log = rec(1, "insert t values (1)");
        let first = log.len();
        log.extend(rec(2, "insert t values (2)"));
        log.extend(rec(3, "insert t values (3)"));
        let mut damaged = log.clone();
        damaged[first + 12] ^= 0xFF; // inside record 2's body
        let scan = scan_wal(&damaged);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, WalTail::Corrupt { at } if at == first as u64));
    }

    #[test]
    fn scan_flags_sequence_gaps() {
        let mut log = rec(1, "a");
        log.extend(rec(3, "c")); // record 2 vanished entirely
        let scan = scan_wal(&log);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn scan_rejects_divergent_stale_seq_frames() {
        // A frame with a stale seq that does NOT byte-match the accepted
        // record it claims to duplicate is corruption, not a retried write.
        let mut log = rec(1, "a");
        log.extend(rec(2, "b"));
        let divergent_at = log.len();
        log.extend(rec(2, "something else entirely"));
        let scan = scan_wal(&log);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.duplicates_skipped, 0);
        assert!(
            matches!(scan.tail, WalTail::Corrupt { at } if at == divergent_at as u64),
            "{:?}",
            scan.tail
        );
    }

    #[test]
    fn scan_rejects_stale_seq_below_the_log_start() {
        // A log that starts at seq 10 (post-checkpoint) cannot verify a
        // frame claiming seq 3 against anything: treat it as damage.
        let mut log = rec(10, "a");
        log.extend(rec(3, "ghost"));
        let scan = scan_wal(&log);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn snapshot_roundtrips_catalog_and_clock() {
        use crate::engine::Engine;
        let engine = Engine::new();
        let s = SessionCtx::new("db", "u");
        engine
            .execute(
                "create table t (a int, b float, c varchar(5), d text, e datetime)\n\
                 insert t values (1, 1.5, 'abcdefgh', 'x', getdate())\n\
                 insert t values (2, -0.0, null, null, null)\n\
                 create unique hash index ix_a on t (a)\n\
                 go\n\
                 create trigger trg on t for insert as print 'hi'\n\
                 go\n\
                 create procedure p as print 'proc'",
                &s,
            )
            .unwrap();
        let bytes = {
            let db = engine.database();
            encode_snapshot(&db, 12345, 42)
        };
        let (restored, clock, last_seq) = decode_snapshot(&bytes).unwrap();
        assert_eq!(clock, 12345);
        assert_eq!(last_seq, 42, "WAL high-water mark round-trips");
        let db = engine.database();
        assert_eq!(restored.table_names(), db.table_names());
        let (a, b) = (restored.table("t").unwrap(), db.table("t").unwrap());
        assert_eq!(a, b, "rows and schema survive bit-exactly");
        assert_eq!(a.index_defs(), b.index_defs());
        assert_eq!(restored.trigger("trg").unwrap().body_src, "print 'hi'");
        assert!(!restored.trigger("trg").unwrap().body.is_empty());
        assert_eq!(
            restored.procedure("p", None).unwrap().body_src,
            "print 'proc'"
        );
        assert_eq!(restored.index_table_key("ix_a"), Some("t"));
        // Determinism: identical states encode to identical bytes.
        assert_eq!(bytes, encode_snapshot(&db, 12345, 42));
    }

    #[test]
    fn snapshot_decode_fails_loudly_on_damage() {
        use crate::engine::Engine;
        let engine = Engine::new();
        let s = SessionCtx::new("db", "u");
        engine.execute("create table t (a int)", &s).unwrap();
        let bytes = encode_snapshot(&engine.database(), 1, 0);
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_snapshot(&bad), Err(Error::Io { .. })));
    }
}
