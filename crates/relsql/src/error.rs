//! Error types for the relational engine.

use std::fmt;

/// All errors the engine can produce, from lexing through execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error with position information.
    Lex { pos: usize, msg: String },
    /// Syntax error produced by the parser.
    Parse { msg: String },
    /// A referenced object (table, column, procedure, trigger) does not exist.
    NotFound { kind: ObjectKind, name: String },
    /// An object with this name already exists.
    AlreadyExists { kind: ObjectKind, name: String },
    /// Type mismatch or unsupported coercion during evaluation.
    Type { msg: String },
    /// Arity / column-count mismatches and similar shape errors.
    Shape { msg: String },
    /// Constraint violation (e.g. NOT NULL).
    Constraint { msg: String },
    /// Trigger recursion exceeded the engine's nesting limit.
    TriggerDepth { limit: usize },
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// Attempted transaction operation in an invalid state.
    Transaction { msg: String },
    /// Catch-all execution error.
    Execution { msg: String },
    /// Storage-layer failure (WAL append/fsync, snapshot read/write).
    Io { msg: String },
}

/// The kinds of schema objects the engine manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    Column,
    Trigger,
    Procedure,
    Database,
    Function,
    Index,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Table => "table",
            ObjectKind::Column => "column",
            ObjectKind::Trigger => "trigger",
            ObjectKind::Procedure => "procedure",
            ObjectKind::Database => "database",
            ObjectKind::Function => "function",
            ObjectKind::Index => "index",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            Error::Parse { msg } => write!(f, "syntax error: {msg}"),
            Error::NotFound { kind, name } => write!(f, "{kind} '{name}' not found"),
            Error::AlreadyExists { kind, name } => write!(f, "{kind} '{name}' already exists"),
            Error::Type { msg } => write!(f, "type error: {msg}"),
            Error::Shape { msg } => write!(f, "shape error: {msg}"),
            Error::Constraint { msg } => write!(f, "constraint violation: {msg}"),
            Error::TriggerDepth { limit } => {
                write!(f, "trigger nesting exceeded limit of {limit}")
            }
            Error::DivisionByZero => f.write_str("division by zero"),
            Error::Transaction { msg } => write!(f, "transaction error: {msg}"),
            Error::Execution { msg } => write!(f, "execution error: {msg}"),
            Error::Io { msg } => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Shorthand for a parse error.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse { msg: msg.into() }
    }

    /// Shorthand for an execution error.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Execution { msg: msg.into() }
    }

    /// Shorthand for a type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        Error::Type { msg: msg.into() }
    }

    /// Shorthand for a storage-layer error.
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io { msg: msg.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::Lex {
                    pos: 3,
                    msg: "bad char".into(),
                },
                "lex error at byte 3: bad char",
            ),
            (Error::parse("oops"), "syntax error: oops"),
            (
                Error::NotFound {
                    kind: ObjectKind::Table,
                    name: "t".into(),
                },
                "table 't' not found",
            ),
            (
                Error::AlreadyExists {
                    kind: ObjectKind::Trigger,
                    name: "tr".into(),
                },
                "trigger 'tr' already exists",
            ),
            (Error::type_err("bad"), "type error: bad"),
            (Error::Shape { msg: "cols".into() }, "shape error: cols"),
            (
                Error::Constraint { msg: "nn".into() },
                "constraint violation: nn",
            ),
            (
                Error::TriggerDepth { limit: 16 },
                "trigger nesting exceeded limit of 16",
            ),
            (Error::DivisionByZero, "division by zero"),
            (
                Error::Transaction {
                    msg: "no tx".into(),
                },
                "transaction error: no tx",
            ),
            (Error::exec("boom"), "execution error: boom"),
            (Error::io("disk gone"), "io error: disk gone"),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn object_kind_display() {
        assert_eq!(ObjectKind::Database.to_string(), "database");
        assert_eq!(ObjectKind::Function.to_string(), "function");
        assert_eq!(ObjectKind::Column.to_string(), "column");
        assert_eq!(ObjectKind::Procedure.to_string(), "procedure");
    }
}
