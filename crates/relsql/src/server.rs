//! The server layer: thread-safe sessions over a shared engine, with a
//! per-table lock scheduler and a statement-plan cache.
//!
//! This plays the role of Sybase's Open Server / TDS stack: clients (and the
//! ECA Agent's internal threads) hold [`Session`]s that submit language
//! batches and get tabular results back. The [`SqlEndpoint`] trait is the
//! seam the agent's Gateway Open Server is generic over.
//!
//! ## Scheduling model
//!
//! Earlier versions serialized every batch through one `Mutex<Engine>`. The
//! server now schedules batches by their *table footprint*
//! ([`crate::footprint::analyze_batch`]):
//!
//! 1. Every batch first takes the global `schedule` lock in **read** mode,
//!    which freezes the catalog (DDL needs the write side), making the
//!    footprint analysis and the trigger set stable for the batch's
//!    duration.
//! 2. Batches whose footprint is a concrete table set acquire those tables'
//!    locks from the [`LockManager`] in one atomic all-or-nothing step
//!    (no hold-and-wait, hence no deadlock) and run concurrently with any
//!    batch touching disjoint tables. Because a DML batch's footprint
//!    includes every table its native triggers touch — the shadow
//!    `_inserted`/`_deleted` tables and the `_ver` version counters —
//!    same-event batches stay strictly serial, preserving Sybase trigger
//!    firing order and vNo sequencing.
//! 3. DDL, transaction control, and anything the analysis cannot resolve
//!    run under the **write** side of `schedule`: alone, after all in-flight
//!    readers drain — exactly the old fully-serialized behaviour.
//!
//! ## Plan cache
//!
//! [`PlanCache`] memoizes `parse_script` output keyed on the batch's token
//! shape: literals are masked to parameters, so `insert t values (1)` and
//! `insert t values (2)` share one parsed plan and bind their literals at
//! execution time ([`crate::ast::Expr::Param`]). Batches containing
//! plan-shape-sensitive keywords (DDL, transactions, `ORDER BY` ordinals,
//! `SELECT INTO`) fall back to exact-text entries. The cache is invalidated
//! (epoch bump) whenever a batch mutates the catalog.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::ast::Stmt;
use crate::clock::LogicalClock;
use crate::engine::{BatchResult, Engine, EngineConfig};
use crate::error::Result;
use crate::eval::SessionCtx;
use crate::footprint::{analyze_batch, Footprint};
use crate::lexer::{split_batches, tokenize, Token, TokenKind};
use crate::notify::NotificationSink;
use crate::parser::{parse_script, parse_script_with_tokens};
use crate::value::Value;

/// Anything that can execute SQL on behalf of a session: a real server, the
/// ECA Agent (which proxies to one), or a test double.
pub trait SqlEndpoint: Send + Sync {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult>;
}

// ---------------------------------------------------------------------------
// Per-table lock manager
// ---------------------------------------------------------------------------

/// Grants all-or-nothing groups of per-table locks.
///
/// A batch declares its full footprint up front and blocks until *every*
/// table in it is free, then takes them all under one mutex acquisition.
/// Because no waiter ever holds part of its group while waiting for the
/// rest, the classic hold-and-wait deadlock condition cannot arise,
/// regardless of acquisition order (the `BTreeSet` footprint additionally
/// gives a canonical order for anyone reasoning about the schedule).
struct LockManager {
    held: Mutex<HashSet<String>>,
    freed: Condvar,
    /// Number of acquisitions that had to block at least once.
    waits: AtomicU64,
}

impl LockManager {
    fn new() -> Arc<Self> {
        Arc::new(LockManager {
            held: Mutex::new(HashSet::new()),
            freed: Condvar::new(),
            waits: AtomicU64::new(0),
        })
    }

    fn acquire(self: &Arc<Self>, tables: BTreeSet<String>) -> TableLocks {
        let mut held = self.held.lock();
        let mut counted = false;
        while tables.iter().any(|t| held.contains(t)) {
            if !counted {
                self.waits.fetch_add(1, Ordering::Relaxed);
                counted = true;
            }
            self.freed.wait(&mut held);
        }
        for t in &tables {
            held.insert(t.clone());
        }
        drop(held);
        TableLocks {
            mgr: Arc::clone(self),
            tables,
        }
    }
}

/// RAII group of table locks; releasing wakes all waiters so they can
/// re-check their (possibly overlapping) footprints.
struct TableLocks {
    mgr: Arc<LockManager>,
    tables: BTreeSet<String>,
}

impl Drop for TableLocks {
    fn drop(&mut self) {
        let mut held = self.mgr.held.lock();
        for t in &self.tables {
            held.remove(t);
        }
        drop(held);
        self.mgr.freed.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Statement-plan cache
// ---------------------------------------------------------------------------

/// Keywords that make a batch's plan shape depend on literal values or on
/// the catalog in ways masking would corrupt: DDL bodies are sliced from the
/// source text, `varchar(N)` and `ORDER BY <ordinal>` consume integer
/// tokens structurally, and transaction control must never share a plan
/// entry with anything. Such batches are cached by exact text instead.
const BARRIER_KEYWORDS: &[&str] = &[
    "create", "drop", "alter", "truncate", "begin", "commit", "rollback", "order", "into",
];

struct CachedPlan {
    stmts: Arc<Vec<Stmt>>,
    epoch: u64,
    last_used: u64,
}

/// LRU cache of parsed batch plans with epoch-based DDL invalidation.
struct PlanCache {
    entries: Mutex<HashMap<String, CachedPlan>>,
    epoch: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

/// A planned batch: the (possibly shared) parsed statements plus the literal
/// values masked out of this particular batch text, to be bound as
/// parameters at execution time.
struct Planned {
    stmts: Arc<Vec<Stmt>>,
    params: Vec<Value>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Drop every cached plan (logically): entries from earlier epochs are
    /// treated as misses and replaced on next use.
    fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn lookup(&self, key: &str) -> Option<Arc<Vec<Stmt>>> {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.stmts))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: String, stmts: Arc<Vec<Stmt>>) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(n) LRU eviction — the cache is small and eviction rare.
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(
            key,
            CachedPlan {
                stmts,
                epoch,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Parse `batch` through the cache. Parse errors propagate and are never
    /// cached.
    fn plan(&self, batch: &str) -> Result<Planned> {
        let Ok(tokens) = tokenize(batch) else {
            // Let the parser surface the lexer's error uncached.
            return parse_script(batch).map(|s| Planned {
                stmts: Arc::new(s),
                params: Vec::new(),
            });
        };
        let barrier = tokens.iter().any(|t| {
            matches!(&t.kind, TokenKind::Ident(s)
                if BARRIER_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)))
        });
        if !barrier {
            let (key, masked, params) = mask(batch, &tokens);
            if let Some(stmts) = self.lookup(&key) {
                return Ok(Planned { stmts, params });
            }
            if let Ok(stmts) = parse_script_with_tokens(batch, masked) {
                let stmts = Arc::new(stmts);
                self.insert(key, Arc::clone(&stmts));
                return Ok(Planned { stmts, params });
            }
            // Masked parse failed (a literal was structural after all):
            // count the lookup back out and fall through to the exact path.
            self.misses.fetch_sub(1, Ordering::Relaxed);
        }
        let key = format!("={batch}");
        if let Some(stmts) = self.lookup(&key) {
            return Ok(Planned {
                stmts,
                params: Vec::new(),
            });
        }
        let stmts = Arc::new(parse_script(batch)?);
        self.insert(key, Arc::clone(&stmts));
        Ok(Planned {
            stmts,
            params: Vec::new(),
        })
    }
}

/// Mask literal tokens to parameters, producing the cache key, the masked
/// token stream, and the extracted parameter values (in token order).
fn mask(batch: &str, tokens: &[Token]) -> (String, Vec<Token>, Vec<Value>) {
    let mut params = Vec::new();
    let mut masked = Vec::with_capacity(tokens.len());
    let mut key = String::with_capacity(batch.len().min(256) + 1);
    key.push('?'); // namespace masked keys away from "=<text>" exact keys
    for t in tokens {
        let kind = match &t.kind {
            TokenKind::Int(v) => {
                params.push(Value::Int(*v));
                TokenKind::Param(params.len() - 1)
            }
            TokenKind::Float(v) => {
                params.push(Value::Float(*v));
                TokenKind::Param(params.len() - 1)
            }
            TokenKind::Str(s) => {
                params.push(Value::Str(s.clone()));
                TokenKind::Param(params.len() - 1)
            }
            other => other.clone(),
        };
        push_key_fragment(&mut key, &kind);
        masked.push(Token { kind, pos: t.pos });
    }
    (key, masked, params)
}

fn push_key_fragment(key: &mut String, kind: &TokenKind) {
    match kind {
        TokenKind::Ident(s) => {
            for ch in s.chars() {
                key.push(ch.to_ascii_lowercase());
            }
        }
        TokenKind::Param(_) => key.push('?'),
        TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
            unreachable!("literals are masked before key rendering")
        }
        TokenKind::LParen => key.push('('),
        TokenKind::RParen => key.push(')'),
        TokenKind::Comma => key.push(','),
        TokenKind::Dot => key.push('.'),
        TokenKind::Semi => key.push(';'),
        TokenKind::Star => key.push('*'),
        TokenKind::Plus => key.push('+'),
        TokenKind::Minus => key.push('-'),
        TokenKind::Slash => key.push('/'),
        TokenKind::Percent => key.push('%'),
        TokenKind::Eq => key.push('='),
        TokenKind::Neq => key.push_str("!="),
        TokenKind::Lt => key.push('<'),
        TokenKind::Le => key.push_str("<="),
        TokenKind::Gt => key.push('>'),
        TokenKind::Ge => key.push_str(">="),
        TokenKind::Caret => key.push('^'),
        TokenKind::Pipe => key.push('|'),
        TokenKind::LBracket => key.push('['),
        TokenKind::RBracket => key.push(']'),
        TokenKind::DoubleColon => key.push_str("::"),
        TokenKind::Colon => key.push(':'),
        TokenKind::Eof => {}
    }
    key.push(' ');
}

/// Does this batch mutate the catalog (or restore an older one), requiring
/// plan-cache invalidation?
fn mutates_catalog(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::CreateTable { .. }
        | Stmt::DropTable { .. }
        | Stmt::AlterTableAdd { .. }
        | Stmt::CreateTrigger { .. }
        | Stmt::DropTrigger { .. }
        | Stmt::CreateProcedure { .. }
        | Stmt::DropProcedure { .. }
        | Stmt::CreateIndex { .. }
        | Stmt::DropIndex { .. }
        | Stmt::Rollback => true,
        Stmt::Select(sel) => sel.into.is_some(),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            mutates_catalog(std::slice::from_ref(then_branch))
                || else_branch
                    .as_deref()
                    .is_some_and(|e| mutates_catalog(std::slice::from_ref(e)))
        }
        Stmt::While { body, .. } => mutates_catalog(std::slice::from_ref(body)),
        Stmt::Block(inner) => mutates_catalog(inner),
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A thread-safe SQL server wrapping one shared [`Engine`].
///
/// Batches on disjoint table footprints execute in parallel; DDL and
/// transactions run exclusively (see the module docs for the full
/// scheduling model).
pub struct SqlServer {
    engine: Engine,
    clock: Arc<LogicalClock>,
    /// Read side: a footprint-scheduled batch (stable catalog). Write side:
    /// an exclusive batch (DDL / transactions / unresolvable footprint).
    schedule: RwLock<()>,
    locks: Arc<LockManager>,
    plans: PlanCache,
    /// Sessions handed out so far; doubles as the session id source.
    sessions_opened: AtomicU64,
    /// Statement batches executed (all sessions, including internal ones).
    statements: AtomicU64,
    batches_parallel: AtomicU64,
    batches_exclusive: AtomicU64,
    /// Footprint-scheduled batches currently inside the engine.
    inflight: AtomicU64,
    /// High-water mark of `inflight`.
    inflight_peak: AtomicU64,
}

/// Aggregate session-level counters for one [`SqlServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub sessions_opened: u64,
    pub statements: u64,
    /// Plan-cache hits (batch reused a memoized parse).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (batch was parsed from scratch).
    pub plan_cache_misses: u64,
    /// Lock-group acquisitions that had to block on a busy table.
    pub lock_waits: u64,
    /// Batches scheduled concurrently under per-table locks.
    pub batches_parallel: u64,
    /// Batches that ran exclusively (DDL, transactions, unresolvable).
    pub batches_exclusive: u64,
    /// Highest number of footprint-scheduled batches observed executing
    /// simultaneously. Values ≥ 2 prove the scheduler genuinely overlapped
    /// disjoint-table work — evidence independent of wall-clock speedup,
    /// which a single-CPU host cannot express.
    pub batches_inflight_peak: u64,
    /// FROM-slot or DML table accesses served through a secondary index.
    pub index_hits: u64,
    /// FROM-slot or DML table accesses that fell back to a full scan.
    pub index_misses: u64,
    /// Candidate rows visited by scans and index probes combined. Flat
    /// growth under a growing table is the signature of indexed access.
    pub rows_scanned: u64,
}

impl SqlServer {
    pub fn new() -> Arc<Self> {
        Self::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Arc<Self> {
        let engine = Engine::with_config(config);
        let clock = engine.clock();
        Arc::new(SqlServer {
            engine,
            clock,
            schedule: RwLock::new(()),
            locks: LockManager::new(),
            plans: PlanCache::new(1024),
            sessions_opened: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            batches_parallel: AtomicU64::new(0),
            batches_exclusive: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
        })
    }

    /// Register the notification sink used by `syb_sendmsg()`.
    pub fn set_sink(&self, sink: Arc<dyn NotificationSink>) {
        self.engine.set_sink(sink);
    }

    /// The engine's logical clock (shared, lock-free).
    pub fn clock(&self) -> Arc<LogicalClock> {
        Arc::clone(&self.clock)
    }

    /// Open a session with the given database/user identity. Each session
    /// gets a server-unique id, usable as a wire-protocol session handle.
    pub fn session(self: &Arc<Self>, database: &str, user: &str) -> Session {
        let id = self.sessions_opened.fetch_add(1, Ordering::Relaxed) + 1;
        Session {
            server: Arc::clone(self),
            ctx: SessionCtx::new(database, user),
            id,
        }
    }

    /// Aggregate session counters.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plan_cache_hits: self.plans.hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plans.misses.load(Ordering::Relaxed),
            lock_waits: self.locks.waits.load(Ordering::Relaxed),
            batches_parallel: self.batches_parallel.load(Ordering::Relaxed),
            batches_exclusive: self.batches_exclusive.load(Ordering::Relaxed),
            batches_inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            index_hits: self.engine.scan_stats().hits(),
            index_misses: self.engine.scan_stats().misses(),
            rows_scanned: self.engine.scan_stats().scanned(),
        }
    }

    /// Run a closure with read access to the engine (for introspection).
    pub fn inspect<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.engine)
    }

    /// Schedule and run one planned batch.
    fn run_batch(
        &self,
        planned: &Planned,
        session: &SessionCtx,
        out: &mut BatchResult,
    ) -> Result<()> {
        let sched = self.schedule.read();
        // An open transaction owns the whole database snapshot, so anything
        // running inside it must serialize; the footprint otherwise decides.
        let footprint = if self.engine.in_tx() {
            Footprint::Exclusive
        } else {
            let db = self.engine.database();
            analyze_batch(&db, &planned.stmts, session)
        };
        match footprint {
            Footprint::Exclusive => {
                drop(sched);
                let _excl = self.schedule.write();
                self.batches_exclusive.fetch_add(1, Ordering::Relaxed);
                let r = self
                    .engine
                    .run_stmts(&planned.stmts, &planned.params, session, out);
                if mutates_catalog(&planned.stmts) {
                    self.plans.invalidate();
                }
                r
            }
            Footprint::Tables(tables) => {
                self.batches_parallel.fetch_add(1, Ordering::Relaxed);
                let _locks = self.locks.acquire(tables);
                let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
                self.inflight_peak.fetch_max(now, Ordering::Relaxed);
                let r = self
                    .engine
                    .run_stmts(&planned.stmts, &planned.params, session, out);
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                r
            }
        }
    }
}

impl SqlEndpoint for SqlServer {
    fn execute(&self, sql: &str, session: &SessionCtx) -> Result<BatchResult> {
        self.statements.fetch_add(1, Ordering::Relaxed);
        let mut out = BatchResult::default();
        for batch in split_batches(sql) {
            let planned = self.plans.plan(batch)?;
            if planned.stmts.is_empty() {
                continue;
            }
            self.run_batch(&planned, session, &mut out)?;
        }
        Ok(out)
    }
}

/// A client connection bound to a database/user identity.
#[derive(Clone)]
pub struct Session {
    server: Arc<SqlServer>,
    ctx: SessionCtx,
    id: u64,
}

impl Session {
    pub fn execute(&self, sql: &str) -> Result<BatchResult> {
        self.server.execute(sql, &self.ctx)
    }

    pub fn ctx(&self) -> &SessionCtx {
        &self.ctx
    }

    /// Server-unique session id (1-based, in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn server(&self) -> &Arc<SqlServer> {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn sessions_share_one_engine() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let s2 = server.session("db", "bob");
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (42)").unwrap();
        let r = s1.execute("select a from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
    }

    #[test]
    fn sessions_have_distinct_identity() {
        let server = SqlServer::new();
        let s1 = server.session("db", "alice");
        let r = s1.execute("select user_name()").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Str("alice".into())));
    }

    #[test]
    fn concurrent_sessions_are_serialized_safely() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let session = server.session("db", &format!("u{i}"));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    session.execute("insert t values (1)").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = server
            .session("db", "u")
            .execute("select count(*) from t")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(400)));
    }

    #[test]
    fn session_ids_and_stats_track_usage() {
        let server = SqlServer::new();
        let s1 = server.session("db", "a");
        let s2 = server.session("db", "b");
        assert_eq!(s1.id(), 1);
        assert_eq!(s2.id(), 2);
        s1.execute("create table t (a int)").unwrap();
        s2.execute("insert t values (1)").unwrap();
        let stats = server.server_stats();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.statements, 2);
    }

    #[test]
    fn inspect_gives_catalog_access() {
        let server = SqlServer::new();
        server
            .session("db", "u")
            .execute("create table t (a int)")
            .unwrap();
        let n = server.inspect(|e| e.database().table_count());
        assert_eq!(n, 1);
    }

    #[test]
    fn plan_cache_hits_on_repeated_statement_shapes() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (k int, v varchar(10))").unwrap();
        let before = server.server_stats();
        for i in 0..20 {
            s.execute(&format!("insert t values ({i}, 'v{i}')"))
                .unwrap();
            s.execute(&format!("select v from t where k = {i}"))
                .unwrap();
        }
        let after = server.server_stats();
        // First insert and first select miss; the remaining 38 hit.
        assert_eq!(after.plan_cache_misses - before.plan_cache_misses, 2);
        assert_eq!(after.plan_cache_hits - before.plan_cache_hits, 38);
        // Literals were rebound per execution, not frozen into the plan.
        let r = s.execute("select v from t where k = 17").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Str("v17".into())));
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn plan_cache_invalidated_by_ddl() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("insert t values (2)").unwrap();
        // DDL bumps the epoch: the previously hot plan must re-parse.
        s.execute("create table t2 (a int)").unwrap();
        let warm = server.server_stats();
        s.execute("insert t values (3)").unwrap();
        let cold = server.server_stats();
        assert_eq!(cold.plan_cache_misses - warm.plan_cache_misses, 1);
        assert_eq!(cold.plan_cache_hits, warm.plan_cache_hits);
        // And the re-parsed plan still binds fresh literals.
        s.execute("insert t values (4)").unwrap();
        let r = s.execute("select sum(a) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(10)));
    }

    #[test]
    fn scheduler_classifies_parallel_and_exclusive_batches() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        let after_ddl = server.server_stats();
        assert_eq!(after_ddl.batches_exclusive, 1);
        assert_eq!(after_ddl.batches_parallel, 0);
        s.execute("insert t values (1)").unwrap();
        s.execute("select a from t").unwrap();
        let after_dml = server.server_stats();
        assert_eq!(after_dml.batches_exclusive, 1);
        assert_eq!(after_dml.batches_parallel, 2);
    }

    #[test]
    fn transactions_escalate_to_exclusive() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (1)").unwrap();
        s.execute("begin tran").unwrap();
        // Inside the transaction even plain DML runs exclusively.
        let before = server.server_stats();
        s.execute("insert t values (2)").unwrap();
        let after = server.server_stats();
        assert_eq!(after.batches_exclusive - before.batches_exclusive, 1);
        assert_eq!(after.batches_parallel, before.batches_parallel);
        s.execute("rollback").unwrap();
        let r = s.execute("select count(*) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn disjoint_tables_make_progress_concurrently() {
        let server = SqlServer::new();
        let setup = server.session("db", "u");
        for i in 0..4 {
            setup
                .execute(&format!("create table t{i} (a int)"))
                .unwrap();
        }
        let mut handles = Vec::new();
        for i in 0..4 {
            let session = server.session("db", "u");
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    session
                        .execute(&format!("insert t{i} values ({j})"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            let r = setup
                .execute(&format!("select count(*) from t{i}"))
                .unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(50)), "table t{i}");
        }
        let stats = server.server_stats();
        assert_eq!(stats.batches_parallel, 4 * 50 + 4);
    }

    #[test]
    fn inflight_peak_proves_batches_overlap_inside_the_engine() {
        use crate::notify::{Datagram, NotificationSink};
        use std::sync::mpsc;

        // A sink that parks the sending batch mid-execution until released,
        // holding it *inside* the engine while another disjoint batch runs —
        // deterministic overlap evidence even on a single-CPU host.
        struct ParkSink {
            entered: mpsc::Sender<()>,
            release: Mutex<mpsc::Receiver<()>>,
        }
        impl NotificationSink for ParkSink {
            fn send(&self, _d: Datagram) {
                self.entered.send(()).unwrap();
                self.release.lock().recv().unwrap();
            }
        }

        let server = SqlServer::new();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        server.set_sink(Arc::new(ParkSink {
            entered: entered_tx,
            release: Mutex::new(release_rx),
        }));
        let s = server.session("db", "u");
        s.execute("create table a (n int)").unwrap();
        s.execute("create table b (n int)").unwrap();
        s.execute(
            "create trigger tra on a for insert as \
             select syb_sendmsg('10.0.0.1', 10011, 'parked') from a",
        )
        .unwrap();
        let parked = {
            let session = server.session("db", "u");
            std::thread::spawn(move || session.execute("insert a values (1)").unwrap())
        };
        entered_rx.recv().unwrap(); // batch on `a` is now inside the engine
        s.execute("insert b values (2)").unwrap();
        release_tx.send(()).unwrap();
        parked.join().unwrap();
        assert!(
            server.server_stats().batches_inflight_peak >= 2,
            "disjoint batch on b should have run while the batch on a was parked"
        );
    }

    #[test]
    fn same_table_batches_serialize_on_table_locks() {
        let server = SqlServer::new();
        let s = server.session("db", "u");
        s.execute("create table t (a int)").unwrap();
        s.execute("insert t values (0)").unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let session = server.session("db", "u");
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    session.execute("update t set a = a + 1").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every update saw a consistent row: increments never lost.
        let r = s.execute("select max(a) from t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(100)));
    }
}
